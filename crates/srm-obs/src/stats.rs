//! An in-memory aggregating recorder that turns the event stream into
//! the numbers the run manifest needs.
//!
//! [`StatsCollector`] is the bridge between tracing and metrics: the
//! CLI tees it alongside the JSONL/progress sinks, then reads the
//! aggregates back out when assembling the `--metrics-out` manifest.
//! Fault counters are derived from `chain-report` and `cell-failure`
//! events — the same post-assembly summaries the engine's own
//! `ChainReport`/`ExperimentResults::fault_counters` are built from —
//! so manifest totals provably match the engine's counters.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::checkpoint::ChainCheckpoint;
use crate::event::{AcceptStat, Event};
use crate::recorder::{Counter, FixedHistogram, Recorder};

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One parameter's final convergence diagnostics, as collected from
/// `diagnostic` events.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosticStat {
    /// Parameter name.
    pub parameter: String,
    /// Potential scale reduction factor.
    pub psrf: f64,
    /// Geweke z-score.
    pub geweke_z: f64,
    /// Effective sample size.
    pub ess: f64,
}

#[derive(Debug, Default)]
struct Inner {
    phase_ms: Vec<(String, f64)>,
    fault_counts: BTreeMap<String, u64>,
    report_retries: u64,
    chain_accept: Vec<(usize, Vec<AcceptStat>)>,
    chain_reports: Vec<(usize, bool, u64, Option<String>, f64)>,
    diagnostics: Vec<DiagnosticStat>,
    waic: Option<(String, f64, f64)>,
    checkpoints: BTreeMap<usize, ChainCheckpoint>,
}

/// Aggregates the event stream into manifest-ready statistics.
#[derive(Debug)]
pub struct StatsCollector {
    inner: Mutex<Inner>,
    retries_seen: Counter,
    faults_injected: Counter,
    panics_contained: Counter,
    events_seen: Counter,
    checkpoints_seen: Counter,
    cell_wall_ms: FixedHistogram,
}

impl Default for StatsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            retries_seen: Counter::new(),
            faults_injected: Counter::new(),
            panics_contained: Counter::new(),
            events_seen: Counter::new(),
            checkpoints_seen: Counter::new(),
            // Cell wall times from ~1 ms to ~100 s.
            cell_wall_ms: FixedHistogram::exponential(1.0, 10.0, 6),
        }
    }

    /// Per-phase wall times `(phase, total_ms)`, summed over repeats
    /// in first-seen order.
    pub fn phase_ms(&self) -> Vec<(String, f64)> {
        lock_ignoring_poison(&self.inner).phase_ms.clone()
    }

    /// Total wall time attributed to `phase`, in milliseconds.
    pub fn phase_total_ms(&self, phase: &str) -> f64 {
        lock_ignoring_poison(&self.inner)
            .phase_ms
            .iter()
            .find(|(name, _)| name == phase)
            .map_or(0.0, |(_, ms)| *ms)
    }

    /// Fault counters `(kind, count)` sorted by kind, counted from
    /// post-assembly `chain-report` and `cell-failure` events.
    pub fn fault_counters(&self) -> Vec<(String, u64)> {
        lock_ignoring_poison(&self.inner)
            .fault_counts
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Total retries across all reported chains.
    pub fn retries_total(&self) -> u64 {
        lock_ignoring_poison(&self.inner).report_retries
    }

    /// Live `retry` events observed (equals [`Self::retries_total`]
    /// for successful runs; may exceed it when a chain is abandoned).
    pub fn retries_seen(&self) -> u64 {
        self.retries_seen.get()
    }

    /// `fault-injected` events observed.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.get()
    }

    /// `chain-panicked` events observed.
    pub fn panics_contained(&self) -> u64 {
        self.panics_contained.get()
    }

    /// Every event seen, of any kind.
    pub fn events_seen(&self) -> u64 {
        self.events_seen.get()
    }

    /// Per-chain acceptance statistics from `chain-done` events,
    /// sorted by chain index.
    pub fn chain_accept(&self) -> Vec<(usize, Vec<AcceptStat>)> {
        let mut out = lock_ignoring_poison(&self.inner).chain_accept.clone();
        out.sort_by_key(|(chain, _)| *chain);
        out
    }

    /// Per-chain report tuples
    /// `(chain, recovered, retries, fault, wall_ms)` from
    /// `chain-report` events, sorted by chain index.
    pub fn chain_reports(&self) -> Vec<(usize, bool, u64, Option<String>, f64)> {
        let mut out = lock_ignoring_poison(&self.inner).chain_reports.clone();
        out.sort_by_key(|(chain, ..)| *chain);
        out
    }

    /// Final diagnostics from `diagnostic` events.
    pub fn diagnostics(&self) -> Vec<DiagnosticStat> {
        lock_ignoring_poison(&self.inner).diagnostics.clone()
    }

    /// Last `waic` event seen: `(model, total, p_waic)`.
    pub fn waic(&self) -> Option<(String, f64, f64)> {
        lock_ignoring_poison(&self.inner).waic.clone()
    }

    /// Histogram snapshot of experiment cell wall times (ms).
    pub fn cell_wall_ms(&self) -> &FixedHistogram {
        &self.cell_wall_ms
    }

    /// `diagnostic-checkpoint` events observed.
    pub fn checkpoints_seen(&self) -> u64 {
        self.checkpoints_seen.get()
    }

    /// The latest checkpoint of each chain, sorted by chain index.
    pub fn latest_checkpoints(&self) -> Vec<ChainCheckpoint> {
        lock_ignoring_poison(&self.inner)
            .checkpoints
            .values()
            .cloned()
            .collect()
    }

    /// Total sweeps completed across chains, as witnessed by the
    /// latest checkpoint of each (0 when checkpoints are disabled).
    pub fn sweeps_completed(&self) -> u64 {
        lock_ignoring_poison(&self.inner)
            .checkpoints
            .values()
            .map(|c| c.sweep as u64 + 1)
            .sum()
    }
}

impl Recorder for StatsCollector {
    fn enabled(&self) -> bool {
        true
    }

    // Default sweep_stride of usize::MAX: the collector aggregates
    // from chain/phase summaries, not per-sweep samples.

    fn record(&self, event: &Event) {
        self.events_seen.incr();
        match event {
            Event::PhaseEnd { phase, wall_ms } => {
                let mut inner = lock_ignoring_poison(&self.inner);
                match inner.phase_ms.iter_mut().find(|(name, _)| name == phase) {
                    Some((_, total)) => *total += wall_ms,
                    None => inner.phase_ms.push((phase.to_string(), *wall_ms)),
                }
            }
            Event::Retry { .. } => self.retries_seen.incr(),
            Event::FaultInjected { .. } => self.faults_injected.incr(),
            Event::ChainPanicked { .. } => self.panics_contained.incr(),
            Event::ChainDone { chain, accept, .. } => {
                let mut inner = lock_ignoring_poison(&self.inner);
                inner.chain_accept.push((*chain, accept.clone()));
            }
            Event::ChainReport {
                chain,
                recovered,
                retries,
                fault,
                wall_ms,
            } => {
                let mut inner = lock_ignoring_poison(&self.inner);
                inner.report_retries += retries;
                if let Some(kind) = fault {
                    *inner.fault_counts.entry(kind.clone()).or_insert(0) += 1;
                }
                inner
                    .chain_reports
                    .push((*chain, *recovered, *retries, fault.clone(), *wall_ms));
            }
            Event::CellEnd { wall_ms, .. } => {
                self.cell_wall_ms.observe(*wall_ms);
            }
            Event::CellFailure { kind, .. } => {
                let mut inner = lock_ignoring_poison(&self.inner);
                *inner.fault_counts.entry(kind.clone()).or_insert(0) += 1;
            }
            Event::Diagnostic {
                parameter,
                psrf,
                geweke_z,
                ess,
            } => {
                let mut inner = lock_ignoring_poison(&self.inner);
                inner.diagnostics.push(DiagnosticStat {
                    parameter: parameter.clone(),
                    psrf: *psrf,
                    geweke_z: *geweke_z,
                    ess: *ess,
                });
            }
            Event::Waic {
                model,
                total,
                p_waic,
                ..
            } => {
                let mut inner = lock_ignoring_poison(&self.inner);
                inner.waic = Some((model.clone(), *total, *p_waic));
            }
            Event::DiagnosticCheckpoint { checkpoint } => {
                self.checkpoints_seen.incr();
                let mut inner = lock_ignoring_poison(&self.inner);
                // Per-chain sweeps are monotone, so "last write wins"
                // keeps the latest snapshot per chain.
                inner
                    .checkpoints
                    .insert(checkpoint.chain, checkpoint.clone());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_phase_times_by_name() {
        let stats = StatsCollector::new();
        stats.record(&Event::PhaseEnd {
            phase: "sampling",
            wall_ms: 10.0,
        });
        stats.record(&Event::PhaseEnd {
            phase: "waic",
            wall_ms: 2.0,
        });
        stats.record(&Event::PhaseEnd {
            phase: "sampling",
            wall_ms: 5.0,
        });
        assert_eq!(stats.phase_total_ms("sampling"), 15.0);
        assert_eq!(stats.phase_total_ms("waic"), 2.0);
        assert_eq!(stats.phase_total_ms("absent"), 0.0);
        assert_eq!(stats.phase_ms()[0].0, "sampling");
    }

    #[test]
    fn counts_faults_from_reports_and_cell_failures() {
        let stats = StatsCollector::new();
        stats.record(&Event::ChainReport {
            chain: 0,
            recovered: true,
            retries: 2,
            fault: Some("nan-rate".into()),
            wall_ms: 8.0,
        });
        stats.record(&Event::ChainReport {
            chain: 1,
            recovered: false,
            retries: 0,
            fault: None,
            wall_ms: 3.5,
        });
        stats.record(&Event::CellFailure {
            prior: "poisson".into(),
            model: "model1".into(),
            day: 10,
            kind: "nan-rate".into(),
        });
        stats.record(&Event::CellFailure {
            prior: "poisson".into(),
            model: "model2".into(),
            day: 10,
            kind: "panic".into(),
        });
        assert_eq!(
            stats.fault_counters(),
            vec![("nan-rate".to_string(), 2), ("panic".to_string(), 1)]
        );
        assert_eq!(stats.retries_total(), 2);
        let reports = stats.chain_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].4, 8.0);
        assert_eq!(reports[1].4, 3.5);
    }

    #[test]
    fn live_counters_track_injections_and_retries() {
        let stats = StatsCollector::new();
        stats.record(&Event::FaultInjected {
            chain: 0,
            sweep: 3,
            kind: "panic".into(),
        });
        stats.record(&Event::Retry {
            chain: 0,
            sweep: 3,
            retries: 1,
        });
        stats.record(&Event::Retry {
            chain: 0,
            sweep: 9,
            retries: 2,
        });
        stats.record(&Event::ChainPanicked {
            chain: 1,
            detail: "x".into(),
        });
        assert_eq!(stats.faults_injected(), 1);
        assert_eq!(stats.retries_seen(), 2);
        assert_eq!(stats.panics_contained(), 1);
        assert_eq!(stats.events_seen(), 4);
    }

    #[test]
    fn collects_accept_diagnostics_and_waic() {
        let stats = StatsCollector::new();
        stats.record(&Event::ChainDone {
            chain: 1,
            retries: 0,
            accept: vec![AcceptStat {
                parameter: "zeta0".into(),
                steps: 4,
                accepted: 1,
            }],
        });
        stats.record(&Event::ChainDone {
            chain: 0,
            retries: 0,
            accept: vec![],
        });
        stats.record(&Event::Diagnostic {
            parameter: "residual".into(),
            psrf: 1.02,
            geweke_z: -0.4,
            ess: 800.0,
        });
        stats.record(&Event::Waic {
            model: "model2".into(),
            total: 190.0,
            p_waic: 2.5,
            draws: 100,
        });
        let accept = stats.chain_accept();
        assert_eq!(accept[0].0, 0);
        assert_eq!(accept[1].1[0].accepted, 1);
        assert_eq!(stats.diagnostics()[0].parameter, "residual");
        assert_eq!(stats.waic().unwrap().0, "model2");
    }

    #[test]
    fn keeps_latest_checkpoint_per_chain_and_counts_sweeps() {
        fn checkpoint(chain: usize, sweep: usize) -> ChainCheckpoint {
            ChainCheckpoint {
                chain,
                sweep,
                kept: sweep / 2,
                wall_ms: sweep as f64,
                params: vec![],
                accept: vec![],
            }
        }
        let stats = StatsCollector::new();
        assert_eq!(stats.sweeps_completed(), 0);
        stats.record(&Event::DiagnosticCheckpoint {
            checkpoint: checkpoint(0, 49),
        });
        stats.record(&Event::DiagnosticCheckpoint {
            checkpoint: checkpoint(1, 49),
        });
        stats.record(&Event::DiagnosticCheckpoint {
            checkpoint: checkpoint(0, 99),
        });
        assert_eq!(stats.checkpoints_seen(), 3);
        let latest = stats.latest_checkpoints();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[0].sweep, 99);
        assert_eq!(latest[1].sweep, 49);
        assert_eq!(stats.sweeps_completed(), 150);
    }

    #[test]
    fn cell_wall_times_feed_the_histogram() {
        let stats = StatsCollector::new();
        stats.record(&Event::CellEnd {
            prior: "poisson".into(),
            model: "model1".into(),
            day: 5,
            wall_ms: 42.0,
        });
        assert_eq!(stats.cell_wall_ms().count(), 1);
    }
}
