//! 128-bit request-correlation identifiers.
//!
//! A [`TraceId`] follows one request across every layer of the
//! workspace: the HTTP accept loop mints one (honouring an inbound
//! `x-srm-trace-id` header), threads it through the job spec, the
//! engine run, every trace event the run emits, the WAL ops that
//! persist it, and the access-log line that closes the request. The
//! CLI mints ids the same way for one-shot runs, so `srm trace grep
//! --trace-id` works on any trace this workspace produces.
//!
//! Derivation is deterministic: an id is a mix of the request's
//! content hash (FNV-1a over the body, or the dataset hash for CLI
//! runs) and a per-boot nonce. Same content in the same process boot
//! yields the same id — correlation never perturbs the run and never
//! consumes sampler randomness.

use std::sync::OnceLock;

/// Name of the HTTP header that carries an inbound trace id.
pub const TRACE_HEADER: &str = "x-srm-trace-id";

/// A 128-bit correlation id, canonically rendered as 32 lowercase hex
/// digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u128);

/// SplitMix64 finalizer: a cheap, well-mixed 64→64 bijection.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceId {
    /// Wraps a raw 128-bit value.
    #[must_use]
    pub const fn from_u128(raw: u128) -> Self {
        Self(raw)
    }

    /// The raw 128-bit value.
    #[must_use]
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// Derives an id from a content hash and a nonce. Deterministic:
    /// the same `(content_hash, nonce)` pair always yields the same
    /// id, and both halves are independently mixed so ids from nearby
    /// hashes do not cluster.
    #[must_use]
    pub fn derive(content_hash: u64, nonce: u64) -> Self {
        let hi = mix64(content_hash ^ nonce.rotate_left(32));
        let lo = mix64(nonce ^ content_hash.rotate_left(17) ^ 0x5851_f42d_4c95_7f2d);
        Self((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Parses 1–32 hex digits (either case). Returns `None` for an
    /// empty string, a string longer than 32 digits, or any non-hex
    /// character — callers mint a fresh id instead of guessing.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        if text.is_empty() || text.len() > 32 {
            return None;
        }
        let mut value: u128 = 0;
        for c in text.chars() {
            value = (value << 4) | u128::from(c.to_digit(16)?);
        }
        Some(Self(value))
    }

    /// The canonical form: 32 lowercase hex digits, zero-padded.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The per-boot nonce mixed into derived ids: computed once per
/// process from the wall clock and the pid, so two boots serving the
/// same content still mint distinct ids.
#[must_use]
pub fn boot_nonce() -> u64 {
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x1234_5678_9abc_def0);
        mix64(nanos ^ u64::from(std::process::id()).rotate_left(48))
    })
}

/// The process-wide default id for producers that have no request
/// context yet (e.g. a sink created before the dataset is loaded):
/// derived from content hash 0 and the boot nonce.
#[must_use]
pub fn process_trace_id() -> TraceId {
    TraceId::derive(0, boot_nonce())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_32_lowercase_hex_digits() {
        let id = TraceId::from_u128(0xABCD);
        assert_eq!(id.to_hex(), format!("{}abcd", "0".repeat(28)));
        assert_eq!(id.to_hex().len(), 32);
        assert_eq!(id.to_string(), id.to_hex());
    }

    #[test]
    fn parse_accepts_short_and_full_ids_and_round_trips() {
        assert_eq!(TraceId::parse("ff"), Some(TraceId::from_u128(0xff)));
        assert_eq!(TraceId::parse("FF"), Some(TraceId::from_u128(0xff)));
        let full = TraceId::derive(42, 7);
        assert_eq!(TraceId::parse(&full.to_hex()), Some(full));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("   "), None);
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse(&"a".repeat(33)), None);
        assert_eq!(TraceId::parse("12-34"), None);
    }

    #[test]
    fn derive_is_deterministic_and_sensitive_to_both_inputs() {
        let a = TraceId::derive(1, 2);
        assert_eq!(a, TraceId::derive(1, 2));
        assert_ne!(a, TraceId::derive(2, 2));
        assert_ne!(a, TraceId::derive(1, 3));
        assert_ne!(a.as_u128(), 0);
    }

    #[test]
    fn boot_nonce_is_stable_within_a_process() {
        assert_eq!(boot_nonce(), boot_nonce());
        assert_eq!(process_trace_id(), process_trace_id());
    }
}
