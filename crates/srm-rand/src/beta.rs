//! Beta distribution (ratio-of-gammas sampling).

use crate::error::{require, DistributionError};
use crate::gamma::Gamma;
use crate::{Distribution, Rng};
use srm_math::incbeta::{inc_beta_reg, inv_inc_beta_reg};

/// Beta distribution with shape parameters `a, b > 0`.
///
/// The β0 conditional of the negative-binomial Gibbs sweep is an exact
/// Beta draw (`Beta(α0 + 1, N + 1)` under the uniform hyper-prior).
///
/// # Examples
///
/// ```
/// use srm_rand::{Beta, Distribution, SplitMix64};
/// let b = Beta::new(2.0, 5.0).unwrap();
/// let mut rng = SplitMix64::seed_from(6);
/// let x = b.sample(&mut rng);
/// assert!((0.0..=1.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Creates a beta distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless both shapes are finite and positive.
    pub fn new(a: f64, b: f64) -> Result<Self, DistributionError> {
        require(a.is_finite() && a > 0.0, "a", a, "must be > 0")?;
        require(b.is_finite() && b > 0.0, "b", b, "must be > 0")?;
        Ok(Self { a, b })
    }

    /// First shape parameter.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Second shape parameter.
    #[must_use]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Mean `a/(a+b)`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }

    /// Variance `ab/((a+b)²(a+b+1))`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let s = self.a + self.b;
        self.a * self.b / (s * s * (s + 1.0))
    }

    /// CDF `I_x(a, b)`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            inc_beta_reg(self.a, self.b, x)
        }
    }

    /// Quantile function (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        inv_inc_beta_reg(self.a, self.b, p)
    }
}

impl Distribution for Beta {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // X = G_a/(G_a + G_b) with independent standard gammas.
        // Shapes were validated positive at construction.
        let ga = Gamma::new(self.a, 1.0).unwrap_or_else(|_| unreachable!());
        let gb = Gamma::new(self.b, 1.0).unwrap_or_else(|_| unreachable!());
        let x = ga.sample(rng);
        let y = gb.sample(rng);
        // Both draws are strictly positive, so the ratio is in (0, 1).
        x / (x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn rejects_bad_shapes() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
        assert!(Beta::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn empirical_moments() {
        let d = Beta::new(2.0, 5.0).unwrap();
        let mut rng = SplitMix64::seed_from(21);
        let n = 200_000;
        let xs = d.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 0.005, "mean = {mean}");
        assert!((var - d.variance()).abs() < 0.002, "var = {var}");
    }

    #[test]
    fn symmetric_case_centred() {
        let d = Beta::new(3.0, 3.0).unwrap();
        let mut rng = SplitMix64::seed_from(22);
        let n = 100_000;
        let mean = d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005);
    }

    #[test]
    fn uniform_special_case() {
        // Beta(1, 1) = Uniform(0, 1): quartile counts should be even.
        let d = Beta::new(1.0, 1.0).unwrap();
        let mut rng = SplitMix64::seed_from(23);
        let n = 100_000;
        let below_quarter = d
            .sample_n(&mut rng, n)
            .into_iter()
            .filter(|&x| x < 0.25)
            .count() as f64
            / n as f64;
        assert!((below_quarter - 0.25).abs() < 0.01);
    }

    #[test]
    fn samples_in_open_unit_interval() {
        let d = Beta::new(0.4, 0.7).unwrap();
        let mut rng = SplitMix64::seed_from(24);
        for _ in 0..20_000 {
            let x = d.sample(&mut rng);
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn quantile_round_trip() {
        let d = Beta::new(4.0, 2.0).unwrap();
        for &p in &[0.05, 0.3, 0.5, 0.95] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn cdf_empirical_agreement() {
        let d = Beta::new(2.5, 1.5).unwrap();
        let mut rng = SplitMix64::seed_from(25);
        let n = 100_000;
        let t = 0.6;
        let below = d
            .sample_n(&mut rng, n)
            .into_iter()
            .filter(|&x| x <= t)
            .count() as f64
            / n as f64;
        assert!((below - d.cdf(t)).abs() < 0.01);
    }
}
