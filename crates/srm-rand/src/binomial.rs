//! Binomial distribution.
//!
//! The workload generator simulates the paper's detection process —
//! every remaining bug is caught with probability `p_i` on day `i` —
//! which is exactly repeated Binomial thinning. Small cases use CDF
//! inversion; large `n` recurses through the beta order-statistic
//! split, which reduces `n` geometrically while staying exact.

use crate::beta::Beta;
use crate::error::{require, DistributionError};
use crate::{Distribution, Rng};
use srm_math::special::ln_binomial;

/// Binomial distribution counting successes among `n` trials with
/// success probability `p`.
///
/// # Examples
///
/// ```
/// use srm_rand::{Binomial, Distribution, SplitMix64};
/// let b = Binomial::new(20, 0.25).unwrap();
/// let mut rng = SplitMix64::seed_from(8);
/// assert!(b.sample(&mut rng) <= 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

/// Below this trial count the sampler uses direct inversion.
const INVERSION_LIMIT: u64 = 64;

impl Binomial {
    /// Creates a binomial distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `p ∈ [0, 1]`. (`n = 0` is allowed: the
    /// distribution is the point mass at 0.)
    pub fn new(n: u64, p: f64) -> Result<Self, DistributionError> {
        require(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p",
            p,
            "must be in [0, 1]",
        )?;
        Ok(Self { n, p })
    }

    /// Number of trials.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Natural log of the p.m.f. at `k` (`-inf` outside `0..=n`).
    #[must_use]
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        // Handle the degenerate endpoints without 0·ln 0 = NaN.
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_binomial(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    /// Sequential CDF inversion, O(np) expected — used for small `n`.
    fn sample_inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
        // Work on the smaller tail for speed.
        if p > 0.5 {
            return n - Self::sample_inversion(n, 1.0 - p, rng);
        }
        if p == 0.0 {
            return 0;
        }
        let q = 1.0 - p;
        let s = p / q;
        let mut pmf = q.powi(n as i32);
        let mut cdf = pmf;
        let mut k = 0u64;
        let u = rng.next_f64();
        while u > cdf && k < n {
            k += 1;
            pmf *= s * (n - k + 1) as f64 / k as f64;
            cdf += pmf;
        }
        k
    }

    /// Beta order-statistic split: with `m = 1 + n/2`, the `m`-th
    /// smallest of `n` uniforms is `Beta(m, n + 1 − m)`; conditioning
    /// on it lands the problem on a binomial with roughly half the
    /// trials. Exact, O(log n) beta draws.
    fn sample_split<R: Rng + ?Sized>(mut n: u64, mut p: f64, rng: &mut R) -> u64 {
        let mut acc = 0u64;
        loop {
            if p <= 0.0 {
                return acc;
            }
            if p >= 1.0 {
                return acc + n;
            }
            if n <= INVERSION_LIMIT {
                return acc + Self::sample_inversion(n, p, rng);
            }
            let m = 1 + n / 2;
            // Both shapes are positive integers, so `new` cannot fail.
            let x = Beta::new(m as f64, (n + 1 - m) as f64)
                .unwrap_or_else(|_| unreachable!())
                .sample(rng);
            if x <= p {
                // m of the uniforms are below x ≤ p: all successes.
                acc += m;
                p = (p - x) / (1.0 - x);
                n -= m;
            } else {
                // The top n − m + 1 uniforms are above x > p: failures.
                p /= x;
                n = m - 1;
            }
        }
    }
}

impl Distribution for Binomial {
    type Value = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        Self::sample_split(self.n, self.p, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn empirical(n: u64, p: f64, seed: u64, draws: usize) -> (f64, f64) {
        let b = Binomial::new(n, p).unwrap();
        let mut rng = SplitMix64::seed_from(seed);
        let xs = b.sample_n(&mut rng, draws);
        let m = xs.iter().map(|&x| x as f64).sum::<f64>() / draws as f64;
        let v = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / draws as f64;
        (m, v)
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = SplitMix64::seed_from(33);
        let zero = Binomial::new(0, 0.5).unwrap();
        assert_eq!(zero.sample(&mut rng), 0);
        let never = Binomial::new(50, 0.0).unwrap();
        assert_eq!(never.sample(&mut rng), 0);
        let always = Binomial::new(50, 1.0).unwrap();
        assert_eq!(always.sample(&mut rng), 50);
    }

    #[test]
    fn moments_small_n() {
        let (m, v) = empirical(20, 0.3, 34, 200_000);
        assert!((m - 6.0).abs() < 0.03, "mean = {m}");
        assert!((v - 4.2).abs() < 0.1, "var = {v}");
    }

    #[test]
    fn moments_large_n_split_path() {
        let (m, v) = empirical(10_000, 0.37, 35, 50_000);
        assert!((m - 3_700.0).abs() < 1.5, "mean = {m}");
        assert!((v - 2_331.0).abs() < 60.0, "var = {v}");
    }

    #[test]
    fn moments_high_p() {
        let (m, v) = empirical(100, 0.9, 36, 100_000);
        assert!((m - 90.0).abs() < 0.1, "mean = {m}");
        assert!((v - 9.0).abs() < 0.3, "var = {v}");
    }

    #[test]
    fn samples_never_exceed_n() {
        let b = Binomial::new(500, 0.95).unwrap();
        let mut rng = SplitMix64::seed_from(37);
        for _ in 0..20_000 {
            assert!(b.sample(&mut rng) <= 500);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(30, 0.42).unwrap();
        let total: f64 = (0..=30).map(|k| b.ln_pmf(k).exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_degenerate_endpoints() {
        let b = Binomial::new(5, 0.0).unwrap();
        assert_eq!(b.ln_pmf(0), 0.0);
        assert_eq!(b.ln_pmf(1), f64::NEG_INFINITY);
        let b = Binomial::new(5, 1.0).unwrap();
        assert_eq!(b.ln_pmf(5), 0.0);
        assert_eq!(b.ln_pmf(4), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_matches_empirical_frequencies() {
        let b = Binomial::new(12, 0.55).unwrap();
        let mut rng = SplitMix64::seed_from(38);
        let n = 300_000;
        let mut hist = [0usize; 13];
        for x in b.sample_n(&mut rng, n) {
            hist[x as usize] += 1;
        }
        for k in 0..=12u64 {
            let expected = b.ln_pmf(k).exp();
            let observed = hist[k as usize] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "k = {k}: obs {observed} vs exp {expected}"
            );
        }
    }

    #[test]
    fn split_and_inversion_agree_in_distribution() {
        // Same (n, p) straddling the split threshold: compare means.
        let (m_small, _) = empirical(INVERSION_LIMIT, 0.4, 39, 100_000);
        let (m_large, _) = empirical(INVERSION_LIMIT + 1, 0.4, 40, 100_000);
        assert!((m_small - 0.4 * INVERSION_LIMIT as f64).abs() < 0.1);
        assert!((m_large - 0.4 * (INVERSION_LIMIT + 1) as f64).abs() < 0.1);
    }
}
