//! Categorical distribution via Walker/Vose alias tables.
//!
//! Posterior-mode extraction and the synthetic multi-dataset generator
//! repeatedly draw from fixed finite distributions; the alias method
//! makes each draw O(1) after O(n) setup.

use crate::error::DistributionError;
use crate::{Distribution, Rng};

/// Categorical distribution over `0..n` built from non-negative
/// weights (not necessarily normalised).
///
/// # Examples
///
/// ```
/// use srm_rand::{Categorical, Distribution, SplitMix64};
/// let c = Categorical::new(&[1.0, 2.0, 7.0]).unwrap();
/// let mut rng = SplitMix64::seed_from(11);
/// let idx = c.sample(&mut rng);
/// assert!(idx < 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>, // scaled acceptance probabilities
    alias: Vec<usize>,
    weights: Vec<f64>, // normalised input weights (for pmf queries)
}

impl Categorical {
    /// Builds the alias table from `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::DegenerateWeights`] if `weights`
    /// is empty or sums to zero, and
    /// [`DistributionError::InvalidParameter`] if any weight is
    /// negative or non-finite.
    pub fn new(weights: &[f64]) -> Result<Self, DistributionError> {
        if weights.is_empty() {
            return Err(DistributionError::DegenerateWeights);
        }
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(DistributionError::InvalidParameter {
                    name: "weights",
                    value: w,
                    constraint: "must be finite and >= 0",
                });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistributionError::DegenerateWeights);
        }
        let n = weights.len();
        let normalised: Vec<f64> = weights.iter().map(|w| w / total).collect();

        // Vose's stable alias construction.
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = normalised.iter().map(|w| w * n as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in large.iter().chain(small.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }

        Ok(Self {
            prob,
            alias,
            weights: normalised,
        })
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalised probability of category `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn pmf(&self, i: usize) -> f64 {
        self.weights[i]
    }
}

impl Distribution for Categorical {
    type Value = usize;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(
            Categorical::new(&[]),
            Err(DistributionError::DegenerateWeights)
        );
        assert_eq!(
            Categorical::new(&[0.0, 0.0]),
            Err(DistributionError::DegenerateWeights)
        );
        assert!(Categorical::new(&[1.0, -0.5]).is_err());
        assert!(Categorical::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn single_category_always_chosen() {
        let c = Categorical::new(&[3.0]).unwrap();
        let mut rng = SplitMix64::seed_from(49);
        for _ in 0..100 {
            assert_eq!(c.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let c = Categorical::new(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = SplitMix64::seed_from(50);
        for _ in 0..50_000 {
            let i = c.sample(&mut rng);
            assert!(i == 1 || i == 3, "drew zero-weight category {i}");
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let c = Categorical::new(&weights).unwrap();
        let mut rng = SplitMix64::seed_from(51);
        let n = 400_000;
        let mut hist = [0usize; 4];
        for _ in 0..n {
            hist[c.sample(&mut rng)] += 1;
        }
        for (i, &h) in hist.iter().enumerate() {
            let expected = weights[i] / 10.0;
            let observed = h as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "i = {i}: obs {observed} vs exp {expected}"
            );
        }
    }

    #[test]
    fn pmf_is_normalised_input() {
        let c = Categorical::new(&[2.0, 6.0]).unwrap();
        assert!((c.pmf(0) - 0.25).abs() < 1e-15);
        assert!((c.pmf(1) - 0.75).abs() < 1e-15);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn highly_skewed_weights() {
        let c = Categorical::new(&[1e-12, 1.0]).unwrap();
        let mut rng = SplitMix64::seed_from(52);
        let zeros = (0..100_000).filter(|_| c.sample(&mut rng) == 0).count();
        assert!(zeros < 5, "zeros = {zeros}");
    }
}
