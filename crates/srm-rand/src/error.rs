//! Validation errors for distribution constructors.

/// Error returned when a distribution is constructed with invalid
/// parameters.
///
/// # Examples
///
/// ```
/// use srm_rand::{Gamma, DistributionError};
/// let err = Gamma::new(-1.0, 1.0).unwrap_err();
/// assert!(matches!(err, DistributionError::InvalidParameter { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionError {
    /// A parameter was outside its admissible range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value (as `f64` for uniform reporting).
        value: f64,
        /// Human-readable constraint, e.g. `"must be > 0"`.
        constraint: &'static str,
    },
    /// A weight vector was empty or summed to zero.
    DegenerateWeights,
}

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter `{name}` = {value} {constraint}"),
            Self::DegenerateWeights => write!(f, "weights are empty or sum to zero"),
        }
    }
}

impl std::error::Error for DistributionError {}

pub(crate) fn require(
    ok: bool,
    name: &'static str,
    value: f64,
    constraint: &'static str,
) -> Result<(), DistributionError> {
    if ok {
        Ok(())
    } else {
        Err(DistributionError::InvalidParameter {
            name,
            value,
            constraint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DistributionError::InvalidParameter {
            name: "shape",
            value: -2.0,
            constraint: "must be > 0",
        };
        let s = e.to_string();
        assert!(s.contains("shape") && s.contains("-2") && s.contains("> 0"));
        assert!(!DistributionError::DegenerateWeights.to_string().is_empty());
    }

    #[test]
    fn require_passes_and_fails() {
        assert!(require(true, "x", 1.0, "ok").is_ok());
        assert!(require(false, "x", 1.0, "bad").is_err());
    }
}
