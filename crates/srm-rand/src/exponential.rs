//! Exponential distribution (inverse-CDF sampling).

use crate::error::{require, DistributionError};
use crate::{Distribution, Rng};

/// Exponential distribution with rate `λ > 0` (mean `1/λ`).
///
/// Exponential draws power the slice sampler's vertical step
/// (`ln u ~ −Exp(1)`).
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, Exponential, SplitMix64};
/// let e = Exponential::new(2.0).unwrap();
/// let mut rng = SplitMix64::seed_from(3);
/// assert!(e.sample(&mut rng) >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns an error unless `rate > 0` and finite.
    pub fn new(rate: f64) -> Result<Self, DistributionError> {
        require(rate.is_finite() && rate > 0.0, "rate", rate, "must be > 0")?;
        Ok(Self { rate })
    }

    /// The rate parameter `λ`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean `1/λ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Variance `1/λ²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    /// CDF `1 − e^{−λx}` (0 for negative `x`).
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }
}

impl Distribution for Exponential {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -rng.next_open_f64().ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn rejects_nonpositive_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn empirical_mean_and_variance() {
        let e = Exponential::new(0.5).unwrap();
        let mut rng = SplitMix64::seed_from(10);
        let n = 200_000;
        let xs = e.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.03, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn samples_nonnegative() {
        let e = Exponential::new(3.0).unwrap();
        let mut rng = SplitMix64::seed_from(11);
        for _ in 0..10_000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn cdf_matches_empirical_fraction() {
        let e = Exponential::new(1.5).unwrap();
        let mut rng = SplitMix64::seed_from(12);
        let n = 100_000;
        let threshold = 0.8;
        let below = e
            .sample_n(&mut rng, n)
            .into_iter()
            .filter(|&x| x <= threshold)
            .count();
        let frac = below as f64 / n as f64;
        assert!((frac - e.cdf(threshold)).abs() < 0.01);
    }

    #[test]
    fn cdf_edges() {
        let e = Exponential::new(1.0).unwrap();
        assert_eq!(e.cdf(-1.0), 0.0);
        assert!(e.cdf(100.0) > 1.0 - 1e-12);
    }
}
