//! Gamma distribution (Marsaglia–Tsang squeeze method).

use crate::error::{require, DistributionError};
use crate::normal::Normal;
use crate::{Distribution, Rng};
use srm_math::incgamma::inc_gamma_p;
use srm_math::special::ln_gamma;

/// Gamma distribution with shape `k > 0` and scale `θ > 0`
/// (density `x^{k−1} e^{−x/θ} / (Γ(k) θ^k)`, mean `kθ`).
///
/// The λ0 conditional of the Poisson-prior Gibbs sweep and the mixing
/// distribution of the negative binomial are both Gammas.
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, Gamma, SplitMix64};
/// let g = Gamma::new(2.0, 3.0).unwrap();
/// assert_eq!(g.mean(), 6.0);
/// let mut rng = SplitMix64::seed_from(5);
/// assert!(g.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistributionError> {
        require(
            shape.is_finite() && shape > 0.0,
            "shape",
            shape,
            "must be > 0",
        )?;
        require(
            scale.is_finite() && scale > 0.0,
            "scale",
            scale,
            "must be > 0",
        )?;
        Ok(Self { shape, scale })
    }

    /// Shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean `kθ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Variance `kθ²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// CDF `P(k, x/θ)` via the regularised incomplete gamma.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            inc_gamma_p(self.shape, x / self.scale)
        }
    }

    /// Natural log of the density at `x` (`-inf` for `x <= 0`).
    #[must_use]
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }

    /// Draws from the *standard* gamma (scale 1) with shape `>= 1`
    /// using Marsaglia–Tsang.
    fn sample_standard_ge1<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        debug_assert!(shape >= 1.0);
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = Normal::standard();
        loop {
            let x = normal.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.next_open_f64();
            // Squeeze test, then the full acceptance test.
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution for Gamma {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let std = if self.shape >= 1.0 {
            Self::sample_standard_ge1(self.shape, rng)
        } else {
            // Boost for shape < 1: G(a) = G(a+1) · U^{1/a}.
            let g = Self::sample_standard_ge1(self.shape + 1.0, rng);
            let u = rng.next_open_f64();
            g * u.powf(1.0 / self.shape)
        };
        std * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn moments(shape: f64, scale: f64, seed: u64, n: usize) -> (f64, f64) {
        let g = Gamma::new(shape, scale).unwrap();
        let mut rng = SplitMix64::seed_from(seed);
        let xs = g.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-2.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn moments_large_shape() {
        let (mean, var) = moments(9.0, 0.5, 16, 200_000);
        assert!((mean - 4.5).abs() < 0.02, "mean = {mean}");
        assert!((var - 2.25).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn moments_shape_one_is_exponential() {
        let (mean, var) = moments(1.0, 2.0, 17, 200_000);
        assert!((mean - 2.0).abs() < 0.03, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.25, "var = {var}");
    }

    #[test]
    fn moments_small_shape() {
        let (mean, var) = moments(0.3, 1.0, 18, 300_000);
        assert!((mean - 0.3).abs() < 0.01, "mean = {mean}");
        assert!((var - 0.3).abs() < 0.04, "var = {var}");
    }

    #[test]
    fn samples_positive() {
        let g = Gamma::new(0.1, 1.0).unwrap();
        let mut rng = SplitMix64::seed_from(19);
        for _ in 0..20_000 {
            assert!(g.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn cdf_empirical_agreement() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        let mut rng = SplitMix64::seed_from(20);
        let n = 100_000;
        let t = 5.0;
        let below = g
            .sample_n(&mut rng, n)
            .into_iter()
            .filter(|&x| x <= t)
            .count() as f64
            / n as f64;
        assert!((below - g.cdf(t)).abs() < 0.01);
    }

    #[test]
    fn ln_pdf_integrates_to_one() {
        let g = Gamma::new(2.5, 1.3).unwrap();
        let total = srm_math::quadrature::integrate(|x| g.ln_pdf(x).exp(), 1e-9, 60.0, 1e-10);
        assert!((total - 1.0).abs() < 1e-6, "total = {total}");
    }

    #[test]
    fn ln_pdf_outside_support() {
        let g = Gamma::new(2.0, 1.0).unwrap();
        assert_eq!(g.ln_pdf(0.0), f64::NEG_INFINITY);
        assert_eq!(g.ln_pdf(-1.0), f64::NEG_INFINITY);
    }
}
