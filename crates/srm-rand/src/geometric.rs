//! Geometric distribution (number of failures before the first
//! success).

use crate::error::{require, DistributionError};
use crate::{Distribution, Rng};

/// Geometric distribution on `{0, 1, 2, …}` with success probability
/// `p ∈ (0, 1]`: `P(K = k) = p (1 − p)^k`.
///
/// Used by the synthetic workload generator to model per-bug dormancy
/// (days until a bug first becomes detectable).
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, Geometric, SplitMix64};
/// let g = Geometric::new(0.25).unwrap();
/// assert_eq!(g.mean(), 3.0);
/// let mut rng = SplitMix64::seed_from(10);
/// let _k = g.sample(&mut rng);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `p ∈ (0, 1]`.
    pub fn new(p: f64) -> Result<Self, DistributionError> {
        require(
            p.is_finite() && p > 0.0 && p <= 1.0,
            "p",
            p,
            "must be in (0, 1]",
        )?;
        Ok(Self { p })
    }

    /// Success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `(1−p)/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }

    /// Variance `(1−p)/p²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }

    /// Natural log of the p.m.f. at `k`.
    #[must_use]
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.p == 1.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        self.p.ln() + k as f64 * (1.0 - self.p).ln()
    }
}

impl Distribution for Geometric {
    type Value = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inverse CDF: K = floor(ln U / ln(1 − p)).
        let u = rng.next_open_f64();
        let k = (u.ln() / (1.0 - self.p).ln()).floor();
        if k < 0.0 {
            0
        } else {
            k as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn rejects_bad_probability() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
    }

    #[test]
    fn certain_success_is_zero() {
        let g = Geometric::new(1.0).unwrap();
        let mut rng = SplitMix64::seed_from(46);
        for _ in 0..50 {
            assert_eq!(g.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empirical_moments() {
        let g = Geometric::new(0.2).unwrap();
        let mut rng = SplitMix64::seed_from(47);
        let n = 200_000;
        let xs = g.sample_n(&mut rng, n);
        let m = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let v = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - 4.0).abs() < 0.05, "mean = {m}");
        assert!((v - 20.0).abs() < 0.6, "var = {v}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let g = Geometric::new(0.3).unwrap();
        let total: f64 = (0..200).map(|k| g.ln_pmf(k).exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memorylessness() {
        // P(K >= a + b | K >= a) = P(K >= b), checked empirically.
        let g = Geometric::new(0.25).unwrap();
        let mut rng = SplitMix64::seed_from(48);
        let n = 300_000;
        let xs = g.sample_n(&mut rng, n);
        let ge = |t: u64| xs.iter().filter(|&&x| x >= t).count() as f64;
        let cond = ge(5) / ge(2);
        let marginal = ge(3) / n as f64;
        assert!((cond - marginal).abs() < 0.01, "{cond} vs {marginal}");
    }
}
