//! Seedable pseudo-random number generation and distribution sampling
//! for the `srm-bayes` workspace.
//!
//! The Gibbs sampler must be bit-reproducible: the paper's experiments
//! are re-run from fixed seeds, and CI asserts on posterior summaries.
//! We therefore implement the PRNGs and every sampler ourselves rather
//! than depending on an external crate whose stream may change between
//! versions.
//!
//! * [`rng`] — the [`Rng`] trait and the SplitMix64, xoshiro256\*\*
//!   and PCG64 generators (with jump/stream splitting for parallel
//!   chains).
//! * Continuous samplers: [`Uniform`], [`Exponential`], [`Normal`],
//!   [`Gamma`], [`Beta`], [`TruncatedGamma`].
//! * Discrete samplers: [`Poisson`], [`Binomial`], [`NegativeBinomial`],
//!   [`Geometric`], [`Categorical`] (Vose alias method), [`UniformInt`].
//!
//! Every sampler implements the [`Distribution`] trait and exposes its
//! analytic `mean`/`variance` so tests can verify the stream against
//! closed forms.
//!
//! # Examples
//!
//! ```
//! use srm_rand::{Distribution, Gamma, SplitMix64};
//!
//! let mut rng = SplitMix64::seed_from(42);
//! let gamma = Gamma::new(3.0, 2.0).unwrap();
//! let draw = gamma.sample(&mut rng);
//! assert!(draw > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beta;
pub mod binomial;
pub mod categorical;
pub mod error;
pub mod exponential;
pub mod gamma;
pub mod geometric;
pub mod negbinom;
pub mod normal;
pub mod poisson;
pub mod rng;
pub mod truncated;
pub mod uniform;

pub use beta::Beta;
pub use binomial::Binomial;
pub use categorical::Categorical;
pub use error::DistributionError;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use geometric::Geometric;
pub use negbinom::NegativeBinomial;
pub use normal::Normal;
pub use poisson::Poisson;
pub use rng::{Pcg64, Rng, SplitMix64, Xoshiro256StarStar};
pub use truncated::TruncatedGamma;
pub use uniform::{Uniform, UniformInt};

/// A sampleable probability distribution.
///
/// Implementors are cheap, validated value types; sampling borrows the
/// RNG mutably so a single generator threads through a whole MCMC
/// sweep.
pub trait Distribution {
    /// The sample type (`f64` for continuous, `u64` for counts, …).
    type Value;

    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Draws `n` samples into a fresh vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Self::Value> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}
