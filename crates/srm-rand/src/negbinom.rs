//! Negative binomial distribution (gamma–Poisson mixture).
//!
//! Parametrised as the paper's Proposition 2: success probability
//! `beta` and (real) size `r`, with p.m.f.
//! `P(K = k) = C(k + r − 1, k) · beta^r · (1 − beta)^k`, mean
//! `r (1 − beta) / beta`. The corrected posterior of the residual bug
//! count under the NB prior is exactly this distribution.

use crate::error::{require, DistributionError};
use crate::gamma::Gamma;
use crate::poisson::Poisson;
use crate::{Distribution, Rng};
use srm_math::special::ln_nb_coeff;

/// Negative binomial distribution with real size `r > 0` and success
/// probability `beta ∈ (0, 1]`.
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, NegativeBinomial, SplitMix64};
/// let nb = NegativeBinomial::new(3.0, 0.4).unwrap();
/// assert!((nb.mean() - 4.5).abs() < 1e-12);
/// let mut rng = SplitMix64::seed_from(9);
/// let _k = nb.sample(&mut rng);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeBinomial {
    r: f64,
    beta: f64,
}

impl NegativeBinomial {
    /// Creates a negative binomial distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `r > 0` and `beta ∈ (0, 1]`. `beta = 1`
    /// gives the point mass at zero (the fully collapsed posterior
    /// after long zero-count virtual testing).
    pub fn new(r: f64, beta: f64) -> Result<Self, DistributionError> {
        require(r.is_finite() && r > 0.0, "r", r, "must be > 0")?;
        require(
            beta.is_finite() && beta > 0.0 && beta <= 1.0,
            "beta",
            beta,
            "must be in (0, 1]",
        )?;
        Ok(Self { r, beta })
    }

    /// Size parameter `r`.
    #[must_use]
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Success probability `beta`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Mean `r(1−beta)/beta`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.r * (1.0 - self.beta) / self.beta
    }

    /// Variance `r(1−beta)/beta²` — always over-dispersed relative to
    /// a Poisson with the same mean.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.r * (1.0 - self.beta) / (self.beta * self.beta)
    }

    /// Natural log of the p.m.f. at `k`.
    #[must_use]
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.beta == 1.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_nb_coeff(self.r, k) + self.r * self.beta.ln() + k as f64 * (1.0 - self.beta).ln()
    }

    /// CDF `P(X <= k)` via the incomplete-beta identity
    /// `P(X <= k) = I_{beta}(r, k + 1)`.
    #[must_use]
    pub fn cdf(&self, k: u64) -> f64 {
        if self.beta >= 1.0 {
            return 1.0;
        }
        srm_math::inc_beta_reg(self.r, k as f64 + 1.0, self.beta)
    }

    /// Smallest `k` with `P(X <= k) >= p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
        if self.beta >= 1.0 {
            return 0;
        }
        let mut hi = (self.mean() + 10.0 * self.variance().sqrt()).max(4.0) as u64;
        while self.cdf(hi) < p {
            hi = hi * 2 + 1;
        }
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= p {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

impl Distribution for NegativeBinomial {
    type Value = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.beta >= 1.0 {
            return 0;
        }
        // λ ~ Gamma(r, (1 − beta)/beta), K | λ ~ Poisson(λ).
        let scale = (1.0 - self.beta) / self.beta;
        // r was validated positive at construction and beta < 1.0
        // here, so the scale is positive and `new` cannot fail.
        let lambda = Gamma::new(self.r, scale)
            .unwrap_or_else(|_| unreachable!())
            .sample(rng);
        if lambda <= 0.0 {
            return 0;
        }
        match Poisson::new(lambda) {
            Ok(p) => p.sample(rng),
            Err(_) => 0, // λ underflowed to 0: the mixture mass is at 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn empirical(r: f64, beta: f64, seed: u64, n: usize) -> (f64, f64) {
        let d = NegativeBinomial::new(r, beta).unwrap();
        let mut rng = SplitMix64::seed_from(seed);
        let xs = d.sample_n(&mut rng, n);
        let m = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let v = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n as f64;
        (m, v)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(NegativeBinomial::new(0.0, 0.5).is_err());
        assert!(NegativeBinomial::new(1.0, 0.0).is_err());
        assert!(NegativeBinomial::new(1.0, 1.5).is_err());
        assert!(NegativeBinomial::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn beta_one_is_point_mass_at_zero() {
        let d = NegativeBinomial::new(5.0, 1.0).unwrap();
        let mut rng = SplitMix64::seed_from(41);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
        assert_eq!(d.ln_pmf(0), 0.0);
        assert_eq!(d.ln_pmf(1), f64::NEG_INFINITY);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn moments_integer_size() {
        let (m, v) = empirical(5.0, 0.5, 42, 200_000);
        assert!((m - 5.0).abs() < 0.05, "mean = {m}");
        assert!((v - 10.0).abs() < 0.3, "var = {v}");
    }

    #[test]
    fn moments_real_size() {
        let d = NegativeBinomial::new(2.7, 0.3).unwrap();
        let (m, v) = empirical(2.7, 0.3, 43, 200_000);
        assert!((m - d.mean()).abs() < 0.1, "mean = {m} vs {}", d.mean());
        assert!(
            (v - d.variance()).abs() < 1.5,
            "var = {v} vs {}",
            d.variance()
        );
    }

    #[test]
    fn overdispersion_relative_to_poisson() {
        let (m, v) = empirical(3.0, 0.2, 44, 100_000);
        assert!(v > m, "NB must be over-dispersed: var {v} <= mean {m}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = NegativeBinomial::new(2.5, 0.45).unwrap();
        let total: f64 = (0..500).map(|k| d.ln_pmf(k).exp()).sum();
        assert!((total - 1.0).abs() < 1e-10, "total = {total}");
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let d = NegativeBinomial::new(3.3, 0.4).unwrap();
        let mut acc = 0.0;
        for k in 0..40u64 {
            acc += d.ln_pmf(k).exp();
            assert!((d.cdf(k) - acc).abs() < 1e-10, "k = {k}");
        }
    }

    #[test]
    fn quantile_is_cdf_inverse() {
        let d = NegativeBinomial::new(2.5, 0.3).unwrap();
        for &p in &[0.05, 0.5, 0.95, 0.999] {
            let k = d.quantile(p);
            assert!(d.cdf(k) >= p);
            if k > 0 {
                assert!(d.cdf(k - 1) < p);
            }
        }
        // Degenerate point mass.
        assert_eq!(NegativeBinomial::new(2.0, 1.0).unwrap().quantile(0.9), 0);
    }

    #[test]
    fn geometric_special_case() {
        // r = 1 is the geometric distribution: P(0) = beta.
        let d = NegativeBinomial::new(1.0, 0.35).unwrap();
        assert!((d.ln_pmf(0).exp() - 0.35).abs() < 1e-12);
        assert!((d.ln_pmf(3).exp() - 0.35 * 0.65f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn pmf_matches_empirical_frequencies() {
        let d = NegativeBinomial::new(4.0, 0.6).unwrap();
        let mut rng = SplitMix64::seed_from(45);
        let n = 300_000;
        let mut hist = vec![0usize; 40];
        for x in d.sample_n(&mut rng, n) {
            if (x as usize) < hist.len() {
                hist[x as usize] += 1;
            }
        }
        for k in 0..10u64 {
            let expected = d.ln_pmf(k).exp();
            let observed = hist[k as usize] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "k = {k}: obs {observed} vs exp {expected}"
            );
        }
    }
}
