//! Normal distribution (Marsaglia polar method).

use crate::error::{require, DistributionError};
use crate::{Distribution, Rng};

/// Normal distribution with mean `μ` and standard deviation `σ > 0`.
///
/// Sampling uses the Marsaglia polar transform; the spare variate is
/// intentionally *not* cached so that `sample` stays `&self` and each
/// draw's RNG consumption is independent of call history (important
/// for reproducible parallel chains).
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, Normal, SplitMix64};
/// let n = Normal::new(10.0, 2.0).unwrap();
/// let mut rng = SplitMix64::seed_from(4);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `sd > 0` and both parameters are finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self, DistributionError> {
        require(mean.is_finite(), "mean", mean, "must be finite")?;
        require(sd.is_finite() && sd > 0.0, "sd", sd, "must be > 0")?;
        Ok(Self { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// Mean `μ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation `σ`.
    #[must_use]
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Variance `σ²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    /// CDF via [`srm_math::norm_cdf`].
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        srm_math::norm_cdf((x - self.mean) / self.sd)
    }
}

impl Distribution for Normal {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar: accept (u, v) in the unit disc, transform.
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.sd * u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn empirical_moments() {
        let d = Normal::new(5.0, 3.0).unwrap();
        let mut rng = SplitMix64::seed_from(13);
        let n = 200_000;
        let xs = d.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.03, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn standard_normal_tail_fractions() {
        let d = Normal::standard();
        let mut rng = SplitMix64::seed_from(14);
        let n = 200_000;
        let beyond_2sd = d
            .sample_n(&mut rng, n)
            .into_iter()
            .filter(|x| x.abs() > 2.0)
            .count() as f64
            / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((beyond_2sd - 0.0455).abs() < 0.004, "frac = {beyond_2sd}");
    }

    #[test]
    fn skewness_near_zero() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut rng = SplitMix64::seed_from(15);
        let n = 100_000;
        let xs = d.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let sd = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        let skew = xs.iter().map(|x| ((x - mean) / sd).powi(3)).sum::<f64>() / n as f64;
        assert!(skew.abs() < 0.05, "skew = {skew}");
    }

    #[test]
    fn cdf_median() {
        let d = Normal::new(7.0, 2.5).unwrap();
        assert!((d.cdf(7.0) - 0.5).abs() < 1e-12);
    }
}
