//! Poisson distribution.
//!
//! Sampling uses multiplicative inversion for small means and
//! Hörmann's PTRS transformed-rejection for large means, so draws stay
//! exact and O(1) even when the posterior residual mean is in the
//! thousands (model3's NB case reaches ~8 500).

use crate::error::{require, DistributionError};
use crate::{Distribution, Rng};
use srm_math::special::ln_factorial;

/// Poisson distribution with mean `λ > 0`.
///
/// This is the Prop. 1 posterior of the residual bug count under the
/// Poisson prior: `R ~ Poisson(λ0 Π q_i)`.
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, Poisson, SplitMix64};
/// let p = Poisson::new(4.2).unwrap();
/// let mut rng = SplitMix64::seed_from(7);
/// let k = p.sample(&mut rng);
/// assert!(k < 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

/// Mean threshold above which PTRS replaces inversion.
const PTRS_THRESHOLD: f64 = 10.0;

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns an error unless `mean > 0` and finite. (A zero-mean
    /// Poisson is the degenerate point mass at 0; model code handles
    /// that case without constructing a sampler.)
    pub fn new(mean: f64) -> Result<Self, DistributionError> {
        require(mean.is_finite() && mean > 0.0, "mean", mean, "must be > 0")?;
        Ok(Self { mean })
    }

    /// The mean `λ` (also the variance).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The variance (equal to the mean).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.mean
    }

    /// Natural log of the p.m.f. at `k`.
    #[must_use]
    pub fn ln_pmf(&self, k: u64) -> f64 {
        k as f64 * self.mean.ln() - self.mean - ln_factorial(k)
    }

    /// CDF `P(X <= k)` via the incomplete-gamma identity
    /// `P(X <= k) = Q(k + 1, λ)`.
    #[must_use]
    pub fn cdf(&self, k: u64) -> f64 {
        srm_math::inc_gamma_q(k as f64 + 1.0, self.mean)
    }

    /// Smallest `k` with `P(X <= k) >= p` (bisection over the
    /// incomplete-gamma CDF, O(log) CDF evaluations).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
        // Bracket using the normal approximation, then bisect.
        let guess = self.mean + srm_math::norm_quantile(p) * self.mean.sqrt();
        let mut hi = guess.max(1.0) as u64 + 2;
        while self.cdf(hi) < p {
            hi = hi * 2 + 1;
        }
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= p {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Multiplicative inversion (Knuth), exact for small `λ`.
    fn sample_inversion<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let limit = (-self.mean).exp();
        let mut product = rng.next_open_f64();
        let mut count = 0u64;
        while product > limit {
            product *= rng.next_open_f64();
            count += 1;
        }
        count
    }

    /// Hörmann's PTRS (transformed rejection with squeeze), exact for
    /// `λ ≥ 10`.
    fn sample_ptrs<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mu = self.mean;
        let b = 0.931 + 2.53 * mu.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
        let v_r = 0.927_7 - 3.622_4 / (b - 2.0);
        loop {
            let u = rng.next_f64() - 0.5;
            let v = rng.next_open_f64();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + mu + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let ln_accept = k * mu.ln() - mu - ln_factorial(k as u64);
            if (v * inv_alpha / (a / (us * us) + b)).ln() <= ln_accept {
                return k as u64;
            }
        }
    }
}

impl Distribution for Poisson {
    type Value = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean < PTRS_THRESHOLD {
            self.sample_inversion(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn empirical(mean: f64, seed: u64, n: usize) -> (f64, f64) {
        let p = Poisson::new(mean).unwrap();
        let mut rng = SplitMix64::seed_from(seed);
        let xs = p.sample_n(&mut rng, n);
        let m = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let v = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n as f64;
        (m, v)
    }

    #[test]
    fn rejects_bad_mean() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn moments_small_mean() {
        let (m, v) = empirical(0.7, 26, 200_000);
        assert!((m - 0.7).abs() < 0.01, "mean = {m}");
        assert!((v - 0.7).abs() < 0.02, "var = {v}");
    }

    #[test]
    fn moments_medium_mean() {
        let (m, v) = empirical(8.0, 27, 200_000);
        assert!((m - 8.0).abs() < 0.05, "mean = {m}");
        assert!((v - 8.0).abs() < 0.2, "var = {v}");
    }

    #[test]
    fn moments_large_mean_ptrs() {
        let (m, v) = empirical(1_000.0, 28, 200_000);
        assert!((m - 1_000.0).abs() < 0.5, "mean = {m}");
        assert!((v - 1_000.0).abs() < 20.0, "var = {v}");
    }

    #[test]
    fn moments_at_threshold_boundary() {
        // Just below and just above the inversion/PTRS switch.
        let (m_lo, _) = empirical(9.9, 29, 100_000);
        let (m_hi, _) = empirical(10.1, 30, 100_000);
        assert!((m_lo - 9.9).abs() < 0.1);
        assert!((m_hi - 10.1).abs() < 0.1);
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(6.0).unwrap();
        let total: f64 = (0..200).map(|k| p.ln_pmf(k).exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let p = Poisson::new(4.3).unwrap();
        let mut acc = 0.0;
        for k in 0..25u64 {
            acc += p.ln_pmf(k).exp();
            assert!((p.cdf(k) - acc).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn quantile_is_cdf_inverse() {
        for &mean in &[0.5f64, 7.0, 300.0] {
            let d = Poisson::new(mean).unwrap();
            for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
                let k = d.quantile(p);
                assert!(d.cdf(k) >= p, "mean {mean} p {p}");
                if k > 0 {
                    assert!(d.cdf(k - 1) < p, "mean {mean} p {p}");
                }
            }
        }
    }

    #[test]
    fn pmf_matches_empirical_frequencies() {
        let p = Poisson::new(3.0).unwrap();
        let mut rng = SplitMix64::seed_from(31);
        let n = 300_000;
        let mut hist = vec![0usize; 32];
        for x in p.sample_n(&mut rng, n) {
            if (x as usize) < hist.len() {
                hist[x as usize] += 1;
            }
        }
        for k in 0..12u64 {
            let expected = p.ln_pmf(k).exp();
            let observed = hist[k as usize] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "k = {k}: obs {observed} vs exp {expected}"
            );
        }
    }

    #[test]
    fn ptrs_pmf_agreement_at_large_mean() {
        let p = Poisson::new(50.0).unwrap();
        let mut rng = SplitMix64::seed_from(32);
        let n = 300_000;
        let mut around_mean = 0usize;
        for x in p.sample_n(&mut rng, n) {
            if (43..=57).contains(&x) {
                around_mean += 1;
            }
        }
        // P(43 ≤ X ≤ 57) for Poisson(50).
        let expected: f64 = (43..=57).map(|k| p.ln_pmf(k).exp()).sum();
        let observed = around_mean as f64 / n as f64;
        assert!((observed - expected).abs() < 0.005);
    }
}
