//! Pseudo-random number generator cores.
//!
//! Three generators are provided:
//!
//! * [`SplitMix64`] — tiny, fast, used for seeding and tests;
//! * [`Xoshiro256StarStar`] — the workhorse for MCMC chains, with the
//!   standard `jump()` (2^128 steps) so parallel chains draw from
//!   provably non-overlapping subsequences;
//! * [`Pcg64`] — an independent family used by the workload generator,
//!   so synthetic-data streams can never collide with sampler streams.
//!
//! All are deterministic across platforms: they use only wrapping
//! integer arithmetic.

/// A source of uniformly distributed 64-bit words.
///
/// The provided combinators derive floats and bounded integers from the
/// raw stream; implementors only supply [`Rng::next_u64`].
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in the half-open interval `[0, 1)` with 53-bit
    /// resolution.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits — the weakest bits of many generators
        // are the low ones.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)`; never returns an
    /// exact 0, so it is safe to take logarithms of the result.
    fn next_open_f64(&mut self) -> f64 {
        loop {
            let v = self.next_f64();
            if v > 0.0 {
                return v;
            }
        }
    }

    /// Uniform integer in `[0, bound)` by Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire's multiply-shift with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let threshold = bound.wrapping_neg() % bound;
            while l < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A Bernoulli trial with success probability `p` (clamped to
    /// `[0, 1]`).
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 (Steele, Lea & Flood): a 64-bit state generator used to
/// expand seeds and in throwaway contexts.
///
/// # Examples
///
/// ```
/// use srm_rand::{Rng, SplitMix64};
/// let mut a = SplitMix64::seed_from(7);
/// let mut b = SplitMix64::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed is valid.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* 1.0 (Blackman & Vigna): 256-bit state, period
/// 2^256 − 1, with a `jump()` advancing 2^128 steps for parallel
/// streams.
///
/// # Examples
///
/// ```
/// use srm_rand::{Rng, Xoshiro256StarStar};
/// let mut rng = Xoshiro256StarStar::seed_from(123);
/// let mut other = rng.clone();
/// other.jump();
/// assert_ne!(rng.next_u64(), other.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator, expanding the seed through SplitMix64 as
    /// the authors recommend. Any seed is valid (the expansion cannot
    /// produce the all-zero state).
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15; // unreachable, but stay safe
        }
        Self { s }
    }

    /// Advances the state by 2^128 steps in O(1) word operations —
    /// equivalent to that many `next_u64` calls. Chain `i` of a
    /// parallel run uses `i` jumps from a common seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_6F22_9FCD_339D,
            0x3982_3B1F_6E80_24BD,
        ];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, &s) in acc.iter_mut().zip(&self.s) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Returns the `index`-th jumped stream from this generator's
    /// current state, leaving `self` untouched.
    #[must_use]
    pub fn split_stream(&self, index: u64) -> Self {
        let mut out = self.clone();
        for _ in 0..=index {
            out.jump();
        }
        out
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// PCG64 (XSL-RR 128/64, O'Neill): independent family used for data
/// generation so workload streams never alias MCMC streams.
///
/// # Examples
///
/// ```
/// use srm_rand::{Pcg64, Rng};
/// let mut rng = Pcg64::seed_from(99);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

const PCG_MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Creates a generator on the default stream.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        Self::seed_stream(seed, 0)
    }

    /// Creates a generator on a specific stream; distinct streams are
    /// statistically independent sequences.
    #[must_use]
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::seed_from(seed ^ stream.rotate_left(32));
        let seed128 = ((sm.next_u64() as u128) << 64) | sm.next_u64() as u128;
        let inc = (((stream as u128) << 64) | sm.next_u64() as u128) | 1;
        let mut rng = Self {
            state: 0,
            increment: inc,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(seed128);
        rng.step();
        rng
    }

    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.increment);
    }
}

impl Rng for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.step();
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the published splitmix64.c.
        let mut rng = SplitMix64::seed_from(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::seed_from(1);
        let mut b = Xoshiro256StarStar::seed_from(1);
        let mut c = Xoshiro256StarStar::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn jump_streams_do_not_collide() {
        let base = Xoshiro256StarStar::seed_from(42);
        let mut s0 = base.split_stream(0);
        let mut s1 = base.split_stream(1);
        let v0: Vec<u64> = (0..64).map(|_| s0.next_u64()).collect();
        let v1: Vec<u64> = (0..64).map(|_| s1.next_u64()).collect();
        assert_ne!(v0, v1);
        // No shared element in a short window (overwhelmingly likely
        // for independent streams; deterministic given the seed).
        for x in &v0 {
            assert!(!v1.contains(x));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_open_f64_never_zero() {
        let mut rng = SplitMix64::seed_from(3);
        for _ in 0..10_000 {
            assert!(rng.next_open_f64() > 0.0);
        }
    }

    #[test]
    fn next_below_unbiased_range() {
        let mut rng = Xoshiro256StarStar::seed_from(11);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.next_below(7) as usize] += 1;
        }
        let expected = n as f64 / 7.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "bucket {i}: {c}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_bound_panics() {
        let mut rng = SplitMix64::seed_from(0);
        let _ = rng.next_below(0);
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg64::seed_stream(5, 0);
        let mut b = Pcg64::seed_stream(5, 1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniformity_of_mean_xoshiro() {
        let mut rng = Xoshiro256StarStar::seed_from(1234);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        // sd of the mean is 1/sqrt(12 n) ≈ 0.00065.
        assert!((mean - 0.5).abs() < 0.004, "mean = {mean}");
    }

    #[test]
    fn rng_trait_object_safe_via_mut_ref() {
        fn takes_dyn(rng: &mut dyn Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = SplitMix64::seed_from(9);
        let _ = takes_dyn(&mut rng);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SplitMix64::seed_from(21);
        for _ in 0..100 {
            assert!(!rng.next_bool(0.0));
            assert!(rng.next_bool(1.0));
        }
    }
}
