//! Truncated distributions.
//!
//! The Poisson-prior Gibbs sweep draws `λ0 | N ~ Gamma(N + 1, 1)`
//! *truncated to `(0, λ_max)`* (the uniform hyper-prior support).
//! Rejection from the untruncated gamma is used while the acceptance
//! region keeps reasonable mass; otherwise the draw falls back to
//! exact inverse-CDF sampling through the regularised incomplete
//! gamma, so the sampler never loops unboundedly when `λ_max` cuts
//! deep into the distribution's body.

use crate::error::{require, DistributionError};
use crate::gamma::Gamma;
use crate::{Distribution, Rng};
use srm_math::incgamma::{inc_gamma_p, inv_inc_gamma_p};

/// Gamma distribution truncated to `(0, upper)`.
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, SplitMix64, TruncatedGamma};
/// let tg = TruncatedGamma::new(5.0, 1.0, 3.0).unwrap();
/// let mut rng = SplitMix64::seed_from(12);
/// let x = tg.sample(&mut rng);
/// assert!(x > 0.0 && x <= 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedGamma {
    inner: Gamma,
    upper: f64,
    /// `P(shape, upper/scale)` — the mass the truncation keeps.
    kept_mass: f64,
}

/// Below this kept mass the sampler switches from rejection to
/// inverse-CDF.
const REJECTION_MASS_FLOOR: f64 = 0.1;

impl TruncatedGamma {
    /// Creates a gamma distribution truncated above at `upper`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `shape > 0`, `scale > 0` and
    /// `upper > 0`.
    pub fn new(shape: f64, scale: f64, upper: f64) -> Result<Self, DistributionError> {
        let inner = Gamma::new(shape, scale)?;
        require(
            upper.is_finite() && upper > 0.0,
            "upper",
            upper,
            "must be > 0",
        )?;
        let kept_mass = inc_gamma_p(shape, upper / scale);
        Ok(Self {
            inner,
            upper,
            kept_mass,
        })
    }

    /// The truncation point.
    #[must_use]
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// The untruncated base distribution.
    #[must_use]
    pub fn base(&self) -> &Gamma {
        &self.inner
    }

    /// Probability mass the base gamma places below `upper`.
    #[must_use]
    pub fn kept_mass(&self) -> f64 {
        self.kept_mass
    }

    /// Truncated CDF.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= self.upper {
            1.0
        } else {
            self.inner.cdf(x) / self.kept_mass
        }
    }
}

impl Distribution for TruncatedGamma {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.kept_mass >= REJECTION_MASS_FLOOR {
            // Rejection: expected iterations = 1/kept_mass <= 10.
            loop {
                let x = self.inner.sample(rng);
                if x < self.upper {
                    return x;
                }
            }
        }
        // Inverse-CDF through the regularised incomplete gamma.
        let u = rng.next_open_f64() * self.kept_mass;
        let x = inv_inc_gamma_p(self.inner.shape(), u) * self.inner.scale();
        // Guard the boundary against inverse round-off.
        x.min(self.upper * (1.0 - 1e-15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn rejects_bad_upper() {
        assert!(TruncatedGamma::new(2.0, 1.0, 0.0).is_err());
        assert!(TruncatedGamma::new(2.0, 1.0, -1.0).is_err());
        assert!(TruncatedGamma::new(-1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn samples_respect_truncation_rejection_path() {
        // upper well above the mean: high kept mass → rejection path.
        let tg = TruncatedGamma::new(3.0, 1.0, 10.0).unwrap();
        assert!(tg.kept_mass() > 0.9);
        let mut rng = SplitMix64::seed_from(53);
        for _ in 0..20_000 {
            let x = tg.sample(&mut rng);
            assert!(x > 0.0 && x < 10.0);
        }
    }

    #[test]
    fn samples_respect_truncation_inverse_path() {
        // upper deep in the lower tail: tiny kept mass → inverse CDF.
        let tg = TruncatedGamma::new(100.0, 1.0, 50.0).unwrap();
        assert!(tg.kept_mass() < REJECTION_MASS_FLOOR);
        let mut rng = SplitMix64::seed_from(54);
        for _ in 0..5_000 {
            let x = tg.sample(&mut rng);
            assert!(x > 0.0 && x <= 50.0, "x = {x}");
        }
    }

    #[test]
    fn truncated_mean_below_untruncated() {
        let tg = TruncatedGamma::new(4.0, 2.0, 6.0).unwrap();
        let mut rng = SplitMix64::seed_from(55);
        let n = 100_000;
        let mean = tg.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!(mean < tg.base().mean());
        // Analytic truncated-gamma mean: kθ · P(k+1, u/θ) / P(k, u/θ).
        let analytic = 4.0 * 2.0 * inc_gamma_p(5.0, 3.0) / inc_gamma_p(4.0, 3.0);
        assert!(
            (mean - analytic).abs() < 0.02,
            "mean = {mean} vs {analytic}"
        );
    }

    #[test]
    fn cdf_normalised() {
        let tg = TruncatedGamma::new(2.0, 1.5, 4.0).unwrap();
        assert_eq!(tg.cdf(0.0), 0.0);
        assert_eq!(tg.cdf(4.0), 1.0);
        assert!(tg.cdf(2.0) > 0.0 && tg.cdf(2.0) < 1.0);
    }

    #[test]
    fn loose_truncation_matches_base_distribution() {
        // upper so large that the truncation is inert.
        let tg = TruncatedGamma::new(2.0, 1.0, 1e6).unwrap();
        let mut rng = SplitMix64::seed_from(56);
        let n = 100_000;
        let mean = tg.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.03);
    }
}
