//! Uniform distributions over real intervals and integer ranges.

use crate::error::{require, DistributionError};
use crate::{Distribution, Rng};

/// Continuous uniform distribution on `[low, high)`.
///
/// This is the hyper-prior of every parameter in the paper's Gibbs
/// schemes (Eqs. (14)–(22)).
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, SplitMix64, Uniform};
/// let u = Uniform::new(2.0, 5.0).unwrap();
/// let mut rng = SplitMix64::seed_from(1);
/// let x = u.sample(&mut rng);
/// assert!((2.0..5.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `low < high` and both are finite.
    pub fn new(low: f64, high: f64) -> Result<Self, DistributionError> {
        require(low.is_finite(), "low", low, "must be finite")?;
        require(high.is_finite(), "high", high, "must be finite")?;
        require(low < high, "low", low, "must be strictly below `high`")?;
        Ok(Self { low, high })
    }

    /// The standard uniform on `[0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            low: 0.0,
            high: 1.0,
        }
    }

    /// Lower bound.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Mean `(low + high)/2`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    /// Variance `(high − low)²/12`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }

    /// Density at `x`.
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        if x >= self.low && x < self.high {
            1.0 / (self.high - self.low)
        } else {
            0.0
        }
    }
}

impl Distribution for Uniform {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + (self.high - self.low) * rng.next_f64()
    }
}

/// Discrete uniform distribution on the integers `low..=high`.
///
/// # Examples
///
/// ```
/// use srm_rand::{Distribution, SplitMix64, UniformInt};
/// let d = UniformInt::new(1, 6).unwrap();
/// let mut rng = SplitMix64::seed_from(2);
/// let roll = d.sample(&mut rng);
/// assert!((1..=6).contains(&roll));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UniformInt {
    low: i64,
    high: i64,
}

impl UniformInt {
    /// Creates a uniform distribution on `low..=high`.
    ///
    /// # Errors
    ///
    /// Returns an error if `low > high`.
    pub fn new(low: i64, high: i64) -> Result<Self, DistributionError> {
        require(low <= high, "low", low as f64, "must be <= `high`")?;
        Ok(Self { low, high })
    }

    /// Inclusive lower bound.
    #[must_use]
    pub fn low(&self) -> i64 {
        self.low
    }

    /// Inclusive upper bound.
    #[must_use]
    pub fn high(&self) -> i64 {
        self.high
    }
}

impl Distribution for UniformInt {
    type Value = i64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let span = (self.high - self.low) as u64 + 1;
        self.low + rng.next_below(span) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn rejects_bad_interval() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn samples_stay_in_range() {
        let u = Uniform::new(-3.0, 7.0).unwrap();
        let mut rng = SplitMix64::seed_from(5);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn empirical_moments_match() {
        let u = Uniform::new(2.0, 10.0).unwrap();
        let mut rng = SplitMix64::seed_from(6);
        let n = 100_000;
        let xs = u.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - u.mean()).abs() < 0.05);
        assert!((var - u.variance()).abs() < 0.15);
    }

    #[test]
    fn pdf_support() {
        let u = Uniform::new(0.0, 2.0).unwrap();
        assert_eq!(u.pdf(1.0), 0.5);
        assert_eq!(u.pdf(-0.1), 0.0);
        assert_eq!(u.pdf(2.0), 0.0);
    }

    #[test]
    fn uniform_int_covers_all_values() {
        let d = UniformInt::new(-2, 2).unwrap();
        let mut rng = SplitMix64::seed_from(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(d.sample(&mut rng));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn uniform_int_single_point() {
        let d = UniformInt::new(4, 4).unwrap();
        let mut rng = SplitMix64::seed_from(9);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 4);
        }
    }

    #[test]
    fn uniform_int_rejects_inverted() {
        assert!(UniformInt::new(3, 2).is_err());
    }
}
