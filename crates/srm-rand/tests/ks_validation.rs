//! Kolmogorov–Smirnov validation of every continuous sampler against
//! its analytic CDF, and chi-square validation of the discrete ones —
//! sharper than moment checks because the whole distribution shape is
//! tested.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use srm_math::stats::{chi2_gof, ks_p_value, ks_statistic};
use srm_rand::{
    Beta, Distribution, Exponential, Gamma, NegativeBinomial, Normal, Poisson, SplitMix64,
    TruncatedGamma, Uniform, Xoshiro256StarStar,
};

const N: usize = 20_000;
/// With a fixed seed the test is deterministic; the threshold only
/// needs to avoid the p ≈ 0 region that indicates a real bug.
const P_FLOOR: f64 = 0.001;

fn ks_check<D, F>(name: &str, dist: &D, cdf: F, seed: u64)
where
    D: Distribution<Value = f64>,
    F: Fn(f64) -> f64,
{
    let mut rng = Xoshiro256StarStar::seed_from(seed);
    let sample = dist.sample_n(&mut rng, N);
    let d = ks_statistic(&sample, cdf);
    let p = ks_p_value(d, N);
    assert!(p > P_FLOOR, "{name}: KS D = {d:.5}, p = {p:.2e}");
}

#[test]
fn uniform_passes_ks() {
    let u = Uniform::new(-2.0, 3.0).unwrap();
    ks_check(
        "uniform(-2,3)",
        &u,
        |x| ((x + 2.0) / 5.0).clamp(0.0, 1.0),
        9_001,
    );
}

#[test]
fn exponential_passes_ks() {
    let e = Exponential::new(1.7).unwrap();
    ks_check("exp(1.7)", &e, |x| e.cdf(x), 9_002);
}

#[test]
fn normal_passes_ks() {
    let n = Normal::new(4.0, 2.5).unwrap();
    ks_check("normal(4,2.5)", &n, |x| n.cdf(x), 9_003);
}

#[test]
fn gamma_passes_ks_across_shapes() {
    for (i, &shape) in [0.4, 1.0, 3.5, 40.0].iter().enumerate() {
        let g = Gamma::new(shape, 1.3).unwrap();
        ks_check(
            &format!("gamma({shape},1.3)"),
            &g,
            |x| g.cdf(x),
            9_010 + i as u64,
        );
    }
}

#[test]
fn beta_passes_ks_across_shapes() {
    for (i, &(a, b)) in [(0.5, 0.5), (2.0, 5.0), (7.0, 3.0)].iter().enumerate() {
        let d = Beta::new(a, b).unwrap();
        ks_check(
            &format!("beta({a},{b})"),
            &d,
            |x| d.cdf(x),
            9_020 + i as u64,
        );
    }
}

#[test]
fn truncated_gamma_passes_ks_both_paths() {
    // Rejection path (high kept mass).
    let tg = TruncatedGamma::new(3.0, 1.0, 8.0).unwrap();
    ks_check("trunc-gamma rejection", &tg, |x| tg.cdf(x), 9_030);
    // Inverse-CDF path (tiny kept mass).
    let tg = TruncatedGamma::new(100.0, 1.0, 85.0).unwrap();
    assert!(tg.kept_mass() < 0.1);
    ks_check("trunc-gamma inverse", &tg, |x| tg.cdf(x), 9_031);
}

fn chi2_check_discrete<D>(name: &str, dist: &D, ln_pmf: impl Fn(u64) -> f64, seed: u64)
where
    D: Distribution<Value = u64>,
{
    let mut rng = SplitMix64::seed_from(seed);
    let sample = dist.sample_n(&mut rng, N);
    // Bucket the support, merging the tail so expected counts >= 5.
    let max = *sample.iter().max().unwrap();
    let mut observed = vec![0.0f64; (max + 2) as usize];
    for &x in &sample {
        observed[x as usize] += 1.0;
    }
    let expected: Vec<f64> = (0..observed.len() as u64)
        .map(|k| ln_pmf(k).exp() * N as f64)
        .collect();
    // Merge cells from the right until all expected >= 5.
    let mut obs_cells: Vec<f64> = Vec::new();
    let mut exp_cells: Vec<f64> = Vec::new();
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (o, e) in observed.into_iter().zip(expected) {
        acc_o += o;
        acc_e += e;
        if acc_e >= 5.0 {
            obs_cells.push(acc_o);
            exp_cells.push(acc_e);
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 && !exp_cells.is_empty() {
        *obs_cells.last_mut().unwrap() += acc_o;
        *exp_cells.last_mut().unwrap() += acc_e;
    }
    // Account for unbucketed tail mass beyond the sample max.
    let total_expected: f64 = exp_cells.iter().sum();
    let deficit = N as f64 - total_expected;
    if deficit > 0.0 {
        *exp_cells.last_mut().unwrap() += deficit;
    }
    let (stat, p) = chi2_gof(&obs_cells, &exp_cells, 0);
    assert!(p > P_FLOOR, "{name}: chi2 = {stat:.2}, p = {p:.2e}");
}

#[test]
fn poisson_passes_chi2_both_regimes() {
    let small = Poisson::new(3.5).unwrap();
    chi2_check_discrete("poisson(3.5)", &small, |k| small.ln_pmf(k), 9_040);
    let large = Poisson::new(60.0).unwrap();
    chi2_check_discrete("poisson(60)", &large, |k| large.ln_pmf(k), 9_041);
}

#[test]
fn negative_binomial_passes_chi2() {
    let nb = NegativeBinomial::new(4.5, 0.35).unwrap();
    chi2_check_discrete("nb(4.5,0.35)", &nb, |k| nb.ln_pmf(k), 9_050);
}

#[test]
fn binomial_passes_chi2_both_regimes() {
    use srm_rand::Binomial;
    let small = Binomial::new(30, 0.4).unwrap();
    chi2_check_discrete("binom(30,0.4)", &small, |k| small.ln_pmf(k), 9_060);
    // Beta-splitting path.
    let large = Binomial::new(500, 0.12).unwrap();
    chi2_check_discrete("binom(500,0.12)", &large, |k| large.ln_pmf(k), 9_061);
}
