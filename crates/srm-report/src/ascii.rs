//! Simple ASCII charts (Fig. 1: daily bars + cumulative line).

use std::fmt::Write as _;

/// Renders a vertical-bar chart of non-negative integer series
/// (e.g. daily bug counts), `height` rows tall.
///
/// # Panics
///
/// Panics if `values` is empty or `height == 0`.
///
/// # Examples
///
/// ```
/// let chart = srm_report::ascii::bar_chart(&[0, 2, 5, 1], 5);
/// assert!(chart.contains('#'));
/// ```
#[must_use]
pub fn bar_chart(values: &[u64], height: usize) -> String {
    assert!(!values.is_empty(), "no values to chart");
    assert!(height > 0, "height must be positive");
    // Non-emptiness is asserted just above.
    let max = *values
        .iter()
        .max()
        .unwrap_or_else(|| unreachable!())
        .max(&1);
    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = max as f64 * row as f64 / height as f64;
        let _ = write!(
            out,
            "{:>4} |",
            if row == height {
                max.to_string()
            } else {
                String::new()
            }
        );
        for &v in values {
            out.push(if v as f64 >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = write!(out, "{:>4} +", "0");
    out.push_str(&"-".repeat(values.len()));
    out.push('\n');
    out
}

/// Renders a monotone line chart (e.g. cumulative bug counts) by
/// placing one `*` per column at the scaled height.
///
/// # Panics
///
/// Panics if `values` is empty or `height == 0`.
///
/// # Examples
///
/// ```
/// let chart = srm_report::ascii::line_chart(&[1.0, 2.0, 4.0, 8.0], 6);
/// assert!(chart.contains('*'));
/// ```
#[must_use]
pub fn line_chart(values: &[f64], height: usize) -> String {
    assert!(!values.is_empty(), "no values to chart");
    assert!(height > 0, "height must be positive");
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let levels: Vec<usize> = values
        .iter()
        .map(|&v| (((v - lo) / span) * (height - 1) as f64).round() as usize)
        .collect();
    let mut out = String::new();
    for row in (0..height).rev() {
        let label = if row == height - 1 {
            format!("{hi:>7.1}")
        } else if row == 0 {
            format!("{lo:>7.1}")
        } else {
            " ".repeat(7)
        };
        let _ = write!(out, "{label} |");
        for &lvl in &levels {
            out.push(if lvl == row { '*' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = write!(out, "{} +", " ".repeat(7));
    out.push_str(&"-".repeat(values.len()));
    out.push('\n');
    out
}

/// Renders an MCMC trace plot: the chain is bucketed into `width`
/// column segments; each column shows the segment's min..max span as
/// a vertical bar with the segment mean marked, so mixing problems
/// (drifts, sticky modes) are visible at a glance.
///
/// # Panics
///
/// Panics if `draws` is empty or `height == 0` or `width == 0`.
///
/// # Examples
///
/// ```
/// let draws: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin()).collect();
/// let plot = srm_report::ascii::trace_plot(&draws, 40, 8);
/// assert!(plot.contains('o'));
/// ```
#[must_use]
pub fn trace_plot(draws: &[f64], width: usize, height: usize) -> String {
    assert!(!draws.is_empty(), "no draws to plot");
    assert!(width > 0 && height > 0, "degenerate plot size");
    let width = width.min(draws.len());
    let lo = draws.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = draws.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let level = |v: f64| (((v - lo) / span) * (height - 1) as f64).round() as usize;

    // Per-column min / mean / max.
    let chunk = draws.len().div_ceil(width);
    let columns: Vec<(usize, usize, usize)> = draws
        .chunks(chunk)
        .map(|c| {
            let cmin = c.iter().copied().fold(f64::INFINITY, f64::min);
            let cmax = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let cmean = c.iter().sum::<f64>() / c.len() as f64;
            (level(cmin), level(cmean), level(cmax))
        })
        .collect();

    let mut out = String::new();
    for row in (0..height).rev() {
        let label = if row == height - 1 {
            format!("{hi:>9.2}")
        } else if row == 0 {
            format!("{lo:>9.2}")
        } else {
            " ".repeat(9)
        };
        let _ = write!(out, "{label} |");
        for &(cmin, cmean, cmax) in &columns {
            out.push(if row == cmean {
                'o'
            } else if row >= cmin && row <= cmax {
                '|'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    let _ = write!(out, "{} +", " ".repeat(9));
    out.push_str(&"-".repeat(columns.len()));
    out.push('\n');
    out
}

/// A sparkline: one character per value using eighth-block glyphs.
///
/// # Examples
///
/// ```
/// let s = srm_report::ascii::sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(s.chars().count(), 4);
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_shape() {
        let chart = bar_chart(&[1, 3, 0, 2], 3);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4); // 3 rows + axis
                                    // The tallest bar reaches the top row.
        assert!(lines[0].contains('#'));
        // Zero column never gets a glyph.
        for line in &lines[..3] {
            assert_eq!(line.as_bytes()[6 + 2], b' ', "zero column marked in {line}");
        }
    }

    #[test]
    fn bar_chart_all_zeros() {
        let chart = bar_chart(&[0, 0, 0], 3);
        assert!(!chart.contains('#'));
    }

    #[test]
    fn line_chart_monotone_rises() {
        let values: Vec<f64> = (0..20).map(f64::from).collect();
        let chart = line_chart(&values, 5);
        let lines: Vec<&str> = chart.lines().collect();
        // Top row has the last point, bottom row the first.
        assert!(lines[0].ends_with('*'));
        assert!(lines[4].contains('*'));
        assert!(chart.contains("19.0"));
        assert!(chart.contains("0.0"));
    }

    #[test]
    fn line_chart_constant_series() {
        let chart = line_chart(&[5.0; 10], 4);
        assert_eq!(chart.matches('*').count(), 10);
    }

    #[test]
    fn trace_plot_shape() {
        let draws: Vec<f64> = (0..1000).map(|i| (i as f64 / 40.0).sin() * 3.0).collect();
        let plot = trace_plot(&draws, 60, 10);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(plot.contains('o'));
        assert!(plot.contains('|'));
        // Bounds labels present.
        assert!(plot.contains("3.00") || plot.contains("2.9"));
    }

    #[test]
    fn trace_plot_constant_chain() {
        let plot = trace_plot(&[7.0; 50], 20, 5);
        assert!(plot.matches('o').count() >= 10);
    }

    #[test]
    fn trace_plot_fewer_draws_than_width() {
        let plot = trace_plot(&[1.0, 2.0, 3.0], 50, 4);
        // Width collapses to the number of draws.
        let first_line_len = plot.lines().next().unwrap().len();
        assert!(first_line_len <= 9 + 2 + 3);
    }

    #[test]
    fn sparkline_extremes() {
        let s = sparkline(&[0.0, 7.0]);
        assert_eq!(s.chars().next().unwrap(), '▁');
        assert_eq!(s.chars().last().unwrap(), '█');
        assert_eq!(sparkline(&[]), "");
    }
}
