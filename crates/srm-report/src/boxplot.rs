//! Box-plot statistics and ASCII rendering (Figs. 2–3).

use srm_mcmc::PosteriorSummary;

/// The geometry of one box: five numbers plus Tukey whiskers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Label-free numeric summary.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lower whisker (most extreme draw within 1.5 IQR of q1).
    pub whisker_lo: f64,
    /// Upper whisker (most extreme draw within 1.5 IQR of q3).
    pub whisker_hi: f64,
    /// Mean (plotted as a marker in many box-plot styles).
    pub mean: f64,
}

impl BoxStats {
    /// Computes the box geometry from raw draws.
    ///
    /// # Panics
    ///
    /// Panics on empty input.
    #[must_use]
    pub fn from_draws(draws: &[f64]) -> Self {
        let s = PosteriorSummary::from_draws(draws);
        let (whisker_lo, whisker_hi) = s.whiskers(draws);
        Self {
            q1: s.q1,
            median: s.median,
            q3: s.q3,
            whisker_lo,
            whisker_hi,
            mean: s.mean,
        }
    }
}

/// Renders a group of labelled boxes on a shared horizontal axis.
///
/// Each line shows `|---[  |  ]---|` glyphs: whiskers, box and
/// median, scaled into `width` characters over the global range.
///
/// # Panics
///
/// Panics if `boxes` is empty or `width < 20`.
///
/// # Examples
///
/// ```
/// use srm_report::boxplot::{render_boxes, BoxStats};
/// let a = BoxStats::from_draws(&[1.0, 2.0, 3.0, 4.0, 10.0]);
/// let b = BoxStats::from_draws(&[5.0, 6.0, 7.0, 8.0, 9.0]);
/// let text = render_boxes(&[("a", a), ("b", b)], 60);
/// assert!(text.contains('['));
/// assert!(text.lines().count() >= 3);
/// ```
#[must_use]
pub fn render_boxes(boxes: &[(&str, BoxStats)], width: usize) -> String {
    assert!(!boxes.is_empty(), "no boxes to render");
    assert!(width >= 20, "width too small");

    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, b) in boxes {
        lo = lo.min(b.whisker_lo);
        hi = hi.max(b.whisker_hi);
    }
    if hi <= lo {
        hi = lo + 1.0;
    }
    let span = hi - lo;
    let label_width = boxes.iter().map(|(l, _)| l.len()).max().unwrap_or(4).max(4);
    let scale = |v: f64| -> usize { (((v - lo) / span) * (width - 1) as f64).round() as usize };

    let mut out = String::new();
    for (label, b) in boxes {
        let mut line = vec![b' '; width];
        let wl = scale(b.whisker_lo);
        let wh = scale(b.whisker_hi);
        let q1 = scale(b.q1);
        let q3 = scale(b.q3);
        let med = scale(b.median);
        for cell in line.iter_mut().take(wh.max(wl) + 1).skip(wl) {
            *cell = b'-';
        }
        line[wl] = b'|';
        line[wh] = b'|';
        for cell in line.iter_mut().take(q3.max(q1) + 1).skip(q1.min(q3)) {
            *cell = b'=';
        }
        line[q1] = b'[';
        line[q3.max(q1)] = b']';
        line[med] = b'*';
        // The line buffer only ever holds single-byte ASCII glyphs.
        out.push_str(&format!(
            "{label:label_width$} {}\n",
            String::from_utf8(line).unwrap_or_else(|_| unreachable!())
        ));
    }
    out.push_str(&format!(
        "{:label_width$} {:<.3} .. {:<.3}\n",
        "range", lo, hi
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_order() {
        let draws: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let b = BoxStats::from_draws(&draws);
        assert!(b.whisker_lo <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_hi);
        assert_eq!(b.median, 50.0);
    }

    #[test]
    fn outliers_do_not_stretch_whiskers() {
        let mut draws: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        draws.push(1_000.0);
        let b = BoxStats::from_draws(&draws);
        assert!(b.whisker_hi < 30.0, "whisker_hi = {}", b.whisker_hi);
    }

    #[test]
    fn render_is_aligned_and_bounded() {
        let a = BoxStats::from_draws(&(0..50).map(f64::from).collect::<Vec<_>>());
        let b = BoxStats::from_draws(&(25..100).map(f64::from).collect::<Vec<_>>());
        let text = render_boxes(&[("model0", a), ("model1", b)], 72);
        for line in text.lines() {
            assert!(line.len() <= 72 + 8, "line too long: {line}");
        }
        assert!(text.contains("model0"));
        assert!(text.contains('*'));
    }

    #[test]
    fn degenerate_single_value_box() {
        // All glyphs collapse onto one cell; the median marker wins.
        let b = BoxStats::from_draws(&[5.0; 20]);
        let text = render_boxes(&[("flat", b)], 40);
        assert!(text.contains('*'));
    }

    #[test]
    #[should_panic(expected = "no boxes")]
    fn empty_group_panics() {
        let _ = render_boxes(&[], 40);
    }
}
