//! Reporting: paper-style tables, box-plot statistics and ASCII
//! charts for the figures.
//!
//! * [`tables`] — fixed-width table rendering matching the layout of
//!   the paper's Tables I–V (model columns, `NNdays` row labels,
//!   parenthesised deviations);
//! * [`boxplot`] — the five-number + whiskers geometry behind
//!   Figs. 2–3, with an ASCII renderer;
//! * [`ascii`] — simple line/bar charts for Fig. 1 (daily and
//!   cumulative bug counts).
//!
//! # Examples
//!
//! ```
//! use srm_report::tables::Table;
//!
//! let mut t = Table::new("demo", &["model0", "model1"]);
//! t.row("48days", &[171.812, 168.560]);
//! let text = t.render();
//! assert!(text.contains("48days"));
//! assert!(text.contains("171.812"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod boxplot;
pub mod tables;

pub use boxplot::BoxStats;
pub use tables::Table;
