//! Fixed-width table rendering in the paper's layout.

use std::fmt::Write as _;

/// A cell: a value with an optional parenthesised deviation (the
/// `463.668 (+369.668)` format of Tables II–IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The reported statistic.
    pub value: f64,
    /// Deviation from the ground truth, if reported.
    pub deviation: Option<f64>,
    /// Number of decimal places.
    pub decimals: usize,
}

impl Cell {
    fn render(&self) -> String {
        match self.deviation {
            Some(d) => format!(
                "{:.*} ({}{:.*})",
                self.decimals,
                self.value,
                if d >= 0.0 { "+" } else { "-" },
                self.decimals,
                d.abs()
            ),
            None => format!("{:.*}", self.decimals, self.value),
        }
    }
}

/// A titled table with row labels and model columns.
///
/// # Examples
///
/// ```
/// use srm_report::Table;
/// let mut t = Table::new("Comparison of WAIC", &["model0", "model1"]);
/// t.row("48days", &[171.812, 168.560]);
/// t.row("67days", &[279.330, 255.040]);
/// let s = t.render();
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<Cell>)>,
    decimals: usize,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Self {
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            decimals: 3,
        }
    }

    /// Sets the number of decimals (default 3, matching the paper).
    #[must_use]
    pub fn with_decimals(mut self, decimals: usize) -> Self {
        self.decimals = decimals;
        self
    }

    /// Appends a row of plain values.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn row(&mut self, label: &str, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        let cells = values
            .iter()
            .map(|&v| Cell {
                value: v,
                deviation: None,
                decimals: self.decimals,
            })
            .collect();
        self.rows.push((label.to_owned(), cells));
    }

    /// Appends a row of `(value, deviation)` pairs — the Tables II–IV
    /// format.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn row_with_deviation(&mut self, label: &str, values: &[(f64, f64)]) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        let cells = values
            .iter()
            .map(|&(v, d)| Cell {
                value: v,
                deviation: Some(d),
                decimals: self.decimals,
            })
            .collect();
        self.rows.push((label.to_owned(), cells));
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as fixed-width text.
    #[must_use]
    pub fn render(&self) -> String {
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(_, cells)| cells.iter().map(Cell::render).collect())
            .collect();
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let total: usize = label_width + widths.iter().map(|w| w + 2).sum::<usize>();
        let _ = writeln!(out, "{}", "-".repeat(total));
        let _ = write!(out, "{:label_width$}", "");
        for (name, w) in self.columns.iter().zip(&widths) {
            let _ = write!(out, "  {name:>w$}");
        }
        out.push('\n');
        for ((label, _), row) in self.rows.iter().zip(&rendered) {
            let _ = write!(out, "{label:label_width$}");
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, "  {cell:>w$}");
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut t = srm_report::Table::new("demo", &["a"]);
    /// t.row("r", &[1.0]);
    /// let md = t.to_markdown();
    /// assert!(md.contains("| r |"));
    /// assert!(md.starts_with("**demo**"));
    /// ```
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = write!(out, "| |");
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        out.push('\n');
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            let _ = write!(out, "| {label} |");
            for cell in cells {
                let _ = write!(out, " {} |", cell.render());
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (`label,col1,col2,…`; deviations appended as
    /// `value;deviation` within the cell).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "label");
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label}");
            for cell in cells {
                match cell.deviation {
                    Some(d) => {
                        let _ = write!(
                            out,
                            ",{:.*};{:.*}",
                            cell.decimals, cell.value, cell.decimals, d
                        );
                    }
                    None => {
                        let _ = write!(out, ",{:.*}", cell.decimals, cell.value);
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_like_layout() {
        let mut t = Table::new(
            "TABLE I: Comparison of WAIC (Poisson prior)",
            &["model0", "model1", "model2", "model3", "model4"],
        );
        t.row("48days", &[171.812, 168.560, 171.834, 223.083, 174.228]);
        t.row("146days", &[483.698, 401.167, 483.773, 635.581, 485.625]);
        let s = t.render();
        assert!(s.contains("model3"));
        assert!(s.contains("168.560"));
        assert!(s.contains("146days"));
        // All data lines share the same width.
        let lines: Vec<&str> = s.lines().skip(2).collect();
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    fn deviation_cells_match_paper_format() {
        let mut t = Table::new("TABLE II", &["model1"]);
        t.row_with_deviation("48days", &[(99.550, 5.550)]);
        t.row_with_deviation("67days", &[(80.789, -13.211)]);
        let s = t.render();
        assert!(s.contains("99.550 (+5.550)"), "{s}");
        assert!(s.contains("80.789 (-13.211)"), "{s}");
    }

    #[test]
    fn csv_round_trip_fields() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row("r1", &[1.0, 2.5]);
        t.row_with_deviation("r2", &[(3.0, 1.0), (4.0, -2.0)]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "label,a,b");
        assert_eq!(lines[1], "r1,1.000,2.500");
        assert_eq!(lines[2], "r2,3.000;1.000,4.000;-2.000");
    }

    #[test]
    fn markdown_layout() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row("r1", &[1.0, 2.0]);
        t.row_with_deviation("r2", &[(3.0, -1.0), (4.0, 2.0)]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "**T**");
        assert_eq!(lines[2], "| | a | b |");
        assert_eq!(lines[3], "|---|---|---|");
        assert!(lines[4].starts_with("| r1 |"));
        assert!(lines[5].contains("3.000 (-1.000)"));
    }

    #[test]
    fn decimals_configurable() {
        let mut t = Table::new("x", &["a"]).with_decimals(1);
        t.row("r", &[std::f64::consts::PI]);
        assert!(t.render().contains("3.1"));
        assert!(!t.render().contains("3.14"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row("r", &[1.0]);
    }

    #[test]
    fn emptiness_queries() {
        let t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
