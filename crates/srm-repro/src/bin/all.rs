//! Regenerates every table and figure in one run (the experiment is
//! executed once and shared).
fn main() {
    print!("{}", srm_repro::render_fig1());
    println!();
    let results = srm_repro::run_paper_experiment();
    for prior in ["poisson", "negbinom"] {
        println!("{}", srm_repro::render_table1(&results, prior).render());
    }
    for stat in [
        srm_repro::Statistic::Mean,
        srm_repro::Statistic::Median,
        srm_repro::Statistic::Mode,
        srm_repro::Statistic::Sd,
    ] {
        for prior in ["poisson", "negbinom"] {
            println!(
                "{}",
                srm_repro::render_stat_table(&results, prior, stat).render()
            );
        }
    }
    for prior in ["poisson", "negbinom"] {
        println!("{}", srm_repro::render_boxplot_figure(&results, prior));
    }
    print!("{}", srm_repro::render_convergence_summary(&results));
}
