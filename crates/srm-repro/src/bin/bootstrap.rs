//! Robustness extension: is the WAIC ranking (model1 wins) stable
//! under moving-block bootstrap resampling of the dataset?

use srm_data::bootstrap::BlockBootstrap;
use srm_data::datasets;
use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
use srm_mcmc::runner::McmcConfig;
use srm_model::{DetectionModel, ZetaBounds};
use srm_report::Table;
use srm_select::waic::waic_for;

fn main() {
    let data = datasets::musa_cc96();
    // Long blocks (a quarter of the horizon): the quantity under test
    // is the *ranking given the growth trend*, so the resampling must
    // preserve trend segments. Cube-root blocks would scramble the
    // arrangement into near-exchangeability and test a different null.
    let boot = BlockBootstrap::new(data.len() / 4);
    let replicates = if srm_repro::fast_mode() { 8 } else { 20 };
    let mcmc = McmcConfig {
        chains: 2,
        burn_in: 400,
        samples: 1_000,
        thin: 1,
        seed: srm_repro::seed(),
    };

    let mut wins = vec![0usize; DetectionModel::ALL.len()];
    let mut mean_waic = vec![0.0f64; DetectionModel::ALL.len()];
    for rep in 0..replicates {
        let sample = boot.resample(&data, srm_repro::seed() + 1 + rep as u64);
        let mut best = (usize::MAX, f64::INFINITY);
        for (idx, model) in DetectionModel::ALL.iter().enumerate() {
            let sampler = GibbsSampler::new(
                PriorSpec::Poisson {
                    lambda_max: 2_000.0,
                },
                *model,
                ZetaBounds::default(),
                &sample,
            );
            let waic = waic_for(
                &sampler,
                &McmcConfig {
                    seed: mcmc.seed + rep as u64 * 101,
                    ..mcmc
                },
            )
            .total();
            mean_waic[idx] += waic / replicates as f64;
            if waic < best.1 {
                best = (idx, waic);
            }
        }
        wins[best.0] += 1;
    }

    let mut table = Table::new(
        &format!(
            "Bootstrap stability of the WAIC ranking ({replicates} replicates, block = {})",
            boot.block_len()
        ),
        &["mean WAIC", "wins"],
    );
    for (idx, model) in DetectionModel::ALL.iter().enumerate() {
        table.row(model.name(), &[mean_waic[idx], wins[idx] as f64]);
    }
    println!("{}", table.render());
    println!("Expectation: model1 wins the plurality of replicates and model3 none —");
    println!("the paper's ranking follows the growth shape, which long blocks preserve.");
}
