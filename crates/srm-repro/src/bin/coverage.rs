//! Coverage audit: do the posterior credible intervals of the
//! residual bug count actually contain the true residual? The paper
//! compares point summaries only; this extension quantifies interval
//! calibration per model and prior across the in-data observation
//! points (where a nonzero ground truth exists).

#![allow(clippy::unwrap_used, clippy::expect_used)] // reproduction script

use srm_core::{Fit, FitConfig};
use srm_data::{datasets, ObservationPoint};
use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::PosteriorSummary;
use srm_model::DetectionModel;
use srm_report::Table;

fn main() {
    let data = datasets::musa_cc96();
    let mcmc = srm_repro::mcmc_config();
    // Points with a meaningful (nonzero) true residual.
    let days = [48usize, 67, 86];

    for (label, prior) in [
        (
            "poisson",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
        ),
        ("negbinom", PriorSpec::NegBinomial { alpha_max: 100.0 }),
    ] {
        let mut table = Table::new(
            &format!("95% credible-interval coverage of the true residual — {label} prior"),
            &["truth", "lo", "hi", "covered", "width"],
        );
        for model in DetectionModel::ALL {
            for day in days {
                let point = ObservationPoint::new(day);
                let window = point.window(&data).expect("valid day");
                let truth = point.true_residual(&data);
                let fit = Fit::run(
                    prior,
                    model,
                    &window,
                    &FitConfig {
                        mcmc,
                        ..FitConfig::default()
                    },
                );
                let (lo, hi) = PosteriorSummary::credible_interval(&fit.residual_draws, 0.05);
                let covered = (lo..=hi).contains(&(truth as f64));
                table.row(
                    &format!("{} {day}d", model.name()),
                    &[
                        truth as f64,
                        lo,
                        hi,
                        if covered { 1.0 } else { 0.0 },
                        hi - lo,
                    ],
                );
            }
        }
        println!("{}", table.render());
    }
    println!("Reading: at 48 days most intervals cover; by 67-86 days they all sit");
    println!("ABOVE the truth — every model overestimates mid-test, exactly the");
    println!("overestimation the paper itself flags ('the result tends to");
    println!("overestimate the actual software bug counts', §5.1) and the reason it");
    println!("introduces virtual testing. model1's intervals are an order of");
    println!("magnitude narrower than the rest, so it recovers fastest once the");
    println!("zero-count days arrive.");
}
