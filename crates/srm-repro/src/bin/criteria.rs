//! Model-selection criteria side by side: WAIC (the paper's choice),
//! DIC and IS-LOO for all five detection models under both priors at
//! the 50 % observation point — demonstrating that the paper's
//! model1-wins conclusion is criterion-robust.

#![allow(clippy::unwrap_used, clippy::expect_used)] // reproduction script

use srm_data::datasets;
use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
use srm_mcmc::runner::run_chains_observed;
use srm_model::{DetectionModel, ZetaBounds};
use srm_report::Table;
use srm_select::dic::dic_from_output;
use srm_select::loo::LooAccumulator;
use srm_select::waic::WaicAccumulator;

fn main() {
    let data = datasets::musa_cc96().truncated(48).expect("valid day");
    let mcmc = srm_repro::mcmc_config();

    for (label, prior) in [
        (
            "poisson",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
        ),
        ("negbinom", PriorSpec::NegBinomial { alpha_max: 100.0 }),
    ] {
        let mut table = Table::new(
            &format!("Selection criteria at 48 days — {label} prior"),
            &["WAIC", "-elpd_loo", "DIC", "p_waic", "p_D"],
        );
        for model in DetectionModel::ALL {
            let sampler = GibbsSampler::new(prior, model, ZetaBounds::default(), &data);
            let mut waic_acc = WaicAccumulator::new(&data);
            let mut loo_acc = LooAccumulator::new(&data);
            let output = run_chains_observed(&sampler, &mcmc, &mut |rec| {
                waic_acc.observe(rec);
                loo_acc.observe(rec);
            });
            let waic = waic_acc.finish();
            let loo = loo_acc.finish();
            let dic = dic_from_output(&output, model, &data);
            table.row(
                model.name(),
                &[
                    waic.total(),
                    loo.information_criterion(),
                    dic.value(),
                    waic.p_waic(),
                    dic.p_d,
                ],
            );
        }
        println!("{}", table.render());
    }
    println!("All three criteria are computed from the same posterior draws; the");
    println!("model ranking (model1 best, model3 worst) should agree across them,");
    println!("with WAIC ≈ -elpd_loo (Watanabe's asymptotic equivalence).");
}
