//! Regenerates Fig. 1: the bug-count dataset.
fn main() {
    print!("{}", srm_repro::render_fig1());
}
