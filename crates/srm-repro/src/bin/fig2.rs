//! Regenerates Fig. 2: box plots of the residual-bug posterior under
//! the Poisson prior.
fn main() {
    let results = srm_repro::run_paper_experiment();
    print!("{}", srm_repro::render_boxplot_figure(&results, "poisson"));
}
