//! Regenerates Fig. 3: box plots of the residual-bug posterior under
//! the negative-binomial prior.
fn main() {
    let results = srm_repro::run_paper_experiment();
    print!("{}", srm_repro::render_boxplot_figure(&results, "negbinom"));
}
