//! Extension experiment 3 (the paper's §6: "apply the Jeffreys prior
//! and compare"): fit the WAIC-best model with uniform versus
//! Jeffreys hyper-priors and compare posterior residual summaries and
//! WAIC at each observation point.

#![allow(clippy::unwrap_used, clippy::expect_used)] // reproduction script

use srm_data::{datasets, ObservationPlan};
use srm_mcmc::gibbs::{GibbsSampler, HyperPrior, PriorSpec};
use srm_mcmc::runner::run_chains_observed;
use srm_mcmc::PosteriorSummary;
use srm_model::{DetectionModel, ZetaBounds};
use srm_report::Table;
use srm_select::waic::WaicAccumulator;

fn main() {
    let data = datasets::musa_cc96();
    let plan = ObservationPlan::paper_default(&data);
    let mcmc = srm_repro::mcmc_config();

    for (label, prior) in [
        (
            "poisson",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
        ),
        ("negbinom", PriorSpec::NegBinomial { alpha_max: 100.0 }),
    ] {
        let mut table = Table::new(
            &format!("Uniform vs Jeffreys hyper-priors — model1, {label} prior"),
            &[
                "uniform mean",
                "uniform sd",
                "uniform WAIC",
                "jeffreys mean",
                "jeffreys sd",
                "jeffreys WAIC",
            ],
        );
        for point in plan.points() {
            let window = point.window(&data).expect("valid plan");
            let mut row = Vec::new();
            for hyper in [HyperPrior::Uniform, HyperPrior::Jeffreys] {
                let sampler = GibbsSampler::new(
                    prior,
                    DetectionModel::PadgettSpurrier,
                    ZetaBounds::default(),
                    &window,
                )
                .with_hyper_prior(hyper);
                let mut acc = WaicAccumulator::new(&window);
                let out = run_chains_observed(&sampler, &mcmc, &mut |rec| acc.observe(rec));
                let draws = out.pooled("residual");
                let summary = PosteriorSummary::from_draws(&draws);
                row.push(summary.mean);
                row.push(summary.sd);
                row.push(acc.finish().total());
            }
            table.row(&point.to_string(), &row);
        }
        println!("{}", table.render());
    }
    println!("Expectation: with 48+ informative days the data dominate and both");
    println!("non-informative hyper-priors give practically identical posteriors —");
    println!("the paper's conclusions are not an artefact of the uniform choice.");
}
