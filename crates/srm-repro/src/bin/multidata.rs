//! Extension experiment 1 (the paper's §6 future work): compare the
//! Poisson and negative-binomial priors across several datasets with
//! different growth shapes, using the WAIC-best model1.

#![allow(clippy::unwrap_used, clippy::expect_used)] // reproduction script

use srm_core::multidata::compare_across_datasets;
use srm_core::FitConfig;
use srm_data::datasets;
use srm_mcmc::gibbs::PriorSpec;
use srm_model::DetectionModel;
use srm_report::Table;

fn main() {
    let named = datasets::all_named();
    let named_refs: Vec<(&str, srm_data::BugCountData)> =
        named.iter().map(|(n, d)| (*n, d.clone())).collect();
    let priors = [
        PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        PriorSpec::NegBinomial { alpha_max: 100.0 },
    ];
    let config = FitConfig {
        mcmc: srm_repro::mcmc_config(),
        ..FitConfig::default()
    };
    let results = compare_across_datasets(
        &named_refs,
        &priors,
        DetectionModel::PadgettSpurrier,
        &config,
    );

    let mut table = Table::new(
        "Extension: prior comparison across datasets (model1, 100% observation point)",
        &[
            "total",
            "poisson mean",
            "poisson sd",
            "negbinom mean",
            "negbinom sd",
        ],
    );
    for d in &results.datasets {
        let pois = d.fit("poisson").expect("poisson fitted");
        let nb = d.fit("negbinom").expect("negbinom fitted");
        table.row(
            &d.name,
            &[
                d.total as f64,
                pois.residual.mean,
                pois.residual.sd,
                nb.residual.mean,
                nb.residual.sd,
            ],
        );
    }
    println!("{}", table.render());
    println!(
        "Poisson-prior sd is smaller on {}/{} datasets; mean log sd ratio {:.3} (> 0 favours Poisson).",
        results.sd_wins_of_first_prior(),
        results.datasets.len(),
        results.mean_log_sd_ratio()
    );
    println!("Reading: on clear growth shapes the two priors' sds are near-ties; on");
    println!("ill-identified shapes (plateau, late surge) the NB prior's adaptive");
    println!("shrinkage gives *smaller* sds — the paper's sd headline is a property");
    println!("of the diffuse models on growth data, not a universal dominance.");
}
