//! Posterior predictive checks of the fitted models on the primary
//! dataset: can each (prior, model) reproduce the observable features
//! of the data? Extreme p-values (< 0.025 or > 0.975) flag model
//! misfit the WAIC ranking only shows indirectly.

use srm_core::{posterior_predictive_check, Fit, FitConfig};
use srm_data::datasets;
use srm_mcmc::gibbs::PriorSpec;
use srm_model::DetectionModel;
use srm_report::Table;

fn main() {
    let data = datasets::musa_cc96();
    let mcmc = srm_repro::mcmc_config();
    let n_rep = if srm_repro::fast_mode() { 100 } else { 400 };

    for (label, prior) in [
        (
            "poisson",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
        ),
        ("negbinom", PriorSpec::NegBinomial { alpha_max: 100.0 }),
    ] {
        let mut table = Table::new(
            &format!("Posterior predictive p-values ({n_rep} replicates) — {label} prior"),
            &[
                "total_bugs",
                "max_daily",
                "zero_fraction",
                "dispersion",
                "laplace_trend",
                "first_half_share",
            ],
        );
        for model in DetectionModel::ALL {
            let fit = Fit::run(
                prior,
                model,
                &data,
                &FitConfig {
                    mcmc,
                    ..FitConfig::default()
                },
            );
            let results = posterior_predictive_check(&fit, &data, n_rep, srm_repro::seed() + 17);
            let row: Vec<f64> = results.iter().map(|r| r.p_value).collect();
            table.row(model.name(), &row);
        }
        println!("{}", table.render());
    }
    println!("p-values near 0.5 mean the model reproduces that feature of the data;");
    println!("near 0 or 1 means it cannot. Expect the time-aware models to track the");
    println!("Laplace trend far better than the homogeneous model0.");
}
