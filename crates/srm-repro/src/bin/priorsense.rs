//! Extension experiment 2: sensitivity of WAIC and the posterior
//! residual mean to the hyper-prior upper limits (the quantities the
//! paper tunes by WAIC minimisation).

#![allow(clippy::unwrap_used, clippy::expect_used)] // reproduction script

use srm_data::datasets;
use srm_mcmc::runner::McmcConfig;
use srm_model::DetectionModel;
use srm_report::Table;
use srm_select::grid::GridSearch;

fn main() {
    let data = datasets::musa_cc96().truncated(48).unwrap();
    let base = srm_repro::mcmc_config();
    let search = GridSearch {
        prior_limits: vec![250.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0],
        theta_maxes: vec![1.0, 10.0, 100.0],
        mcmc: McmcConfig {
            chains: 2,
            burn_in: base.burn_in.min(500),
            samples: base.samples.min(1_500),
            thin: 1,
            seed: srm_repro::seed(),
        },
    };

    for (label, poisson) in [("poisson", true), ("negbinom", false)] {
        let result = search.run(poisson, DetectionModel::PadgettSpurrier, &data);
        let mut table = Table::new(
            &format!("Hyper-prior sensitivity at 48 days — {label} prior, model1"),
            &["theta_max", "WAIC total", "T_k", "V_k"],
        );
        for cell in &result.cells {
            table.row(
                &format!("limit={}", cell.prior_limit),
                &[
                    cell.theta_max,
                    cell.waic.total(),
                    cell.waic.learning_loss,
                    cell.waic.functional_variance,
                ],
            );
        }
        println!("{}", table.render());
        println!(
            "best: limit = {}, theta_max = {}, WAIC = {:.3}\n",
            result.best.prior_limit,
            result.best.theta_max,
            result.best.waic.total()
        );
    }
}
