//! Regenerates Table I: WAIC comparison, both priors, 5 models,
//! 9 observation points.
fn main() {
    let results = srm_repro::run_paper_experiment();
    for prior in ["poisson", "negbinom"] {
        println!("{}", srm_repro::render_table1(&results, prior).render());
    }
    print!("{}", srm_repro::render_convergence_summary(&results));
}
