//! Regenerates Table V: posterior sds of the residual bug
//! count, both priors.
fn main() {
    let results = srm_repro::run_paper_experiment();
    for prior in ["poisson", "negbinom"] {
        println!(
            "{}",
            srm_repro::render_stat_table(&results, prior, srm_repro::Statistic::Sd).render()
        );
    }
}
