//! Shared machinery for the table/figure regeneration binaries.
//!
//! Every binary regenerates one artefact of the paper's evaluation
//! (see DESIGN.md's per-experiment index). They share one experiment
//! run: 2 priors × 5 detection models × 9 observation points on the
//! primary dataset.
//!
//! Environment knobs:
//!
//! * `SRM_REPRO_FAST=1` — short MCMC runs (smoke scale) for quick
//!   regeneration;
//! * `SRM_REPRO_SEED=<u64>` — override the base seed (default 2024).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use srm_core::{Experiment, ExperimentCell, ExperimentConfig, ExperimentResults};
use srm_data::{datasets, BugCountData};
use srm_mcmc::runner::McmcConfig;
use srm_model::DetectionModel;
use srm_report::boxplot::{render_boxes, BoxStats};
use srm_report::Table;

/// Statistic selector for Tables II–V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Statistic {
    /// Table II: posterior means.
    Mean,
    /// Table III: posterior medians.
    Median,
    /// Table IV: posterior modes.
    Mode,
    /// Table V: posterior standard deviations.
    Sd,
}

impl Statistic {
    /// The paper's table caption fragment.
    #[must_use]
    pub fn caption(&self) -> &'static str {
        match self {
            Self::Mean => "mean values",
            Self::Median => "medians",
            Self::Mode => "modes",
            Self::Sd => "standard deviations",
        }
    }

    /// Whether the paper prints a deviation column for this
    /// statistic (Tables II–IV do; Table V does not).
    #[must_use]
    pub fn with_deviation(&self) -> bool {
        !matches!(self, Self::Sd)
    }
}

/// Reads the reproduction seed from `SRM_REPRO_SEED` (default 2024).
#[must_use]
pub fn seed() -> u64 {
    std::env::var("SRM_REPRO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024)
}

/// Whether fast (smoke-scale) runs were requested.
#[must_use]
pub fn fast_mode() -> bool {
    std::env::var("SRM_REPRO_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The MCMC scale for the current mode.
#[must_use]
pub fn mcmc_config() -> McmcConfig {
    if fast_mode() {
        McmcConfig {
            chains: 2,
            burn_in: 300,
            samples: 600,
            thin: 1,
            seed: seed(),
        }
    } else {
        McmcConfig {
            chains: 4,
            burn_in: 1_000,
            samples: 4_000,
            thin: 1,
            seed: seed(),
        }
    }
}

/// The primary dataset (Fig. 1).
#[must_use]
pub fn dataset() -> BugCountData {
    datasets::musa_cc96()
}

/// Runs the full paper experiment: 2 priors × 5 models × 9 points.
#[must_use]
pub fn run_paper_experiment() -> ExperimentResults {
    let config = ExperimentConfig::paper_design(mcmc_config());
    Experiment::new(dataset(), config).run()
}

/// Column headers in paper order.
#[must_use]
pub fn model_columns() -> Vec<&'static str> {
    DetectionModel::ALL.iter().map(|m| m.name()).collect()
}

/// Looks up a cell that the full paper design must have produced;
/// rendering a degraded run that dropped cells is a caller error.
fn full_design_cell<'a>(
    results: &'a ExperimentResults,
    prior_label: &str,
    model: DetectionModel,
    day: usize,
) -> &'a ExperimentCell {
    match results.get(prior_label, model, day) {
        Some(cell) => cell,
        None => panic!("missing cell ({prior_label}, {model:?}, day {day}): rendering requires the full design"),
    }
}

/// Renders Table I (WAIC comparison) for one prior family.
#[must_use]
pub fn render_table1(results: &ExperimentResults, prior_label: &str) -> Table {
    let title = format!(
        "TABLE I ({}): Comparison of WAIC — {} prior",
        if prior_label == "poisson" { "i" } else { "ii" },
        prior_label
    );
    let mut table = Table::new(&title, &model_columns());
    for day in results.days() {
        let values: Vec<f64> = DetectionModel::ALL
            .iter()
            .map(|&m| {
                full_design_cell(results, prior_label, m, day)
                    .fit
                    .waic
                    .total()
            })
            .collect();
        table.row(&format!("{day}days"), &values);
    }
    table
}

/// Renders one of Tables II–V for one prior family.
#[must_use]
pub fn render_stat_table(results: &ExperimentResults, prior_label: &str, stat: Statistic) -> Table {
    let title = format!(
        "Comparison of {} of the posterior distributions — {} prior",
        stat.caption(),
        prior_label
    );
    let mut table = Table::new(&title, &model_columns());
    for day in results.days() {
        let mut plain = Vec::new();
        let mut with_dev = Vec::new();
        for &m in &DetectionModel::ALL {
            let cell = full_design_cell(results, prior_label, m, day);
            let value = match stat {
                Statistic::Mean => cell.fit.residual.mean,
                Statistic::Median => cell.fit.residual.median,
                Statistic::Mode => cell.fit.residual.mode,
                Statistic::Sd => cell.fit.residual.sd,
            };
            plain.push(value);
            with_dev.push((value, value - cell.true_residual as f64));
        }
        let label = format!("{day}days");
        if stat.with_deviation() {
            table.row_with_deviation(&label, &with_dev);
        } else {
            table.row(&label, &plain);
        }
    }
    table
}

/// Renders the Fig. 2 / Fig. 3 box plots for one prior family: one
/// group of five model boxes per observation point.
#[must_use]
pub fn render_boxplot_figure(results: &ExperimentResults, prior_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Box plots of posterior distributions of the residual bug count — {prior_label} prior\n\n",
    ));
    for day in results.days() {
        out.push_str(&format!("--- {day}days ---\n"));
        let boxes: Vec<(&str, BoxStats)> = DetectionModel::ALL
            .iter()
            .map(|&m| {
                let cell = full_design_cell(results, prior_label, m, day);
                (m.name(), BoxStats::from_draws(&cell.fit.residual_draws))
            })
            .collect();
        out.push_str(&render_boxes(&boxes, 84));
        out.push('\n');
    }
    out
}

/// Renders Fig. 1: the dataset (daily bars + cumulative line).
#[must_use]
pub fn render_fig1() -> String {
    let data = dataset();
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 1 dataset: {} bugs over {} testing days\n\n",
        data.total(),
        data.len()
    ));
    out.push_str("Daily detected bugs:\n");
    out.push_str(&srm_report::ascii::bar_chart(data.counts(), 8));
    out.push('\n');
    out.push_str("Cumulative detected bugs:\n");
    let cumulative: Vec<f64> = data.cumulative().iter().map(|&c| c as f64).collect();
    out.push_str(&srm_report::ascii::line_chart(&cumulative, 12));
    out.push('\n');
    out.push_str(&format!(
        "sparkline: {}\n",
        srm_report::ascii::sparkline(&cumulative)
    ));
    out
}

/// Prints the convergence-diagnostics summary appendix used by every
/// table binary (PSRF / Geweke pass rates).
#[must_use]
pub fn render_convergence_summary(results: &ExperimentResults) -> String {
    let mut total = 0usize;
    let mut passed = 0usize;
    let mut worst_psrf: f64 = 0.0;
    for cell in results.cells() {
        for (_, d) in &cell.fit.diagnostics {
            total += 1;
            if d.converged() {
                passed += 1;
            }
            if d.psrf.is_finite() {
                worst_psrf = worst_psrf.max(d.psrf);
            }
        }
    }
    format!(
        "convergence: {passed}/{total} parameter checks passed (PSRF < 1.1 & |Z| < 1.96); worst PSRF = {worst_psrf:.3}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_contains_dataset_shape() {
        let fig = render_fig1();
        assert!(fig.contains("136 bugs over 96 testing days"));
        assert!(fig.contains('#'));
        assert!(fig.contains('*'));
    }

    #[test]
    fn statistic_metadata() {
        assert!(Statistic::Mean.with_deviation());
        assert!(!Statistic::Sd.with_deviation());
        assert_eq!(Statistic::Mode.caption(), "modes");
    }

    #[test]
    fn seed_defaults_and_fast_mode_flag() {
        // Defaults in a clean environment (tests do not set the vars).
        if std::env::var("SRM_REPRO_SEED").is_err() {
            assert_eq!(seed(), 2024);
        }
        let cfg = mcmc_config();
        assert!(cfg.samples >= 600);
    }
}
