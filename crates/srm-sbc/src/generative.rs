//! Prior-predictive replication draws.
//!
//! Each SBC replication draws a complete parameter vector from the
//! *same* prior the sampler runs with — hyper-parameter, bug content
//! `N`, detection parameters `ζ` — then simulates a bug-count series
//! from the per-day binomial detection process. Exactness of the
//! calibration check hinges on generative prior ≡ sampler prior, so
//! nothing here truncates or re-weights: huge `λ0` draws and the
//! negative-binomial atom at `N = 0` are kept as-is.
//!
//! # Stream semantics
//!
//! Every (cell, rep) pair owns one dedicated RNG stream, split from
//! the master seed at the *flat* index `cell.id() × reps + rep`
//! ([`rep_stream`]). Because [`crate::grid::Cell::id`] is canonical,
//! the stream — and hence the simulated project, the inner fit seed,
//! and the tie-break variate — depends only on `(master_seed, reps,
//! cell identity, rep index)`, never on which grid subset is run or
//! in what order.

use crate::grid::{Cell, GridSpec};
use srm_data::{DetectionSimulator, SimulatedProject};
use srm_mcmc::gibbs::PriorSpec;
use srm_model::BugPrior;
use srm_rand::rng::{Rng, Xoshiro256StarStar};

/// The ground-truth parameter vector behind one replication.
#[derive(Debug, Clone)]
pub struct TruthDraw {
    /// True initial bug content `N`.
    pub n: u64,
    /// Continuous true parameters, in rank order: the hyper-parameters
    /// (`lambda0` or `alpha0`, `beta0`) followed by the detection
    /// parameters in [`srm_model::DetectionModel::param_names`] order.
    pub params: Vec<(&'static str, f64)>,
    /// True detection parameters alone (same values as the `ζ` tail
    /// of `params`).
    pub zeta: Vec<f64>,
}

/// One fully-drawn replication: truth, simulated data, and the
/// deterministic auxiliaries consumed downstream.
#[derive(Debug, Clone)]
pub struct SbcRep {
    /// The ground truth the posterior is ranked against.
    pub truth: TruthDraw,
    /// The simulated project (bug-count series + residual truth).
    pub project: SimulatedProject,
    /// Uniform variate for the discrete-rank tie-break
    /// ([`crate::rank::rank_discrete`]).
    pub tie_u: f64,
    /// Seed handed to the inner MCMC fit.
    pub fit_seed: u64,
}

/// The dedicated RNG stream of `(cell, rep)` under `master_seed`.
///
/// Streams are split at the flat index `cell.id() × reps + rep`, so
/// two distinct (cell, rep) pairs can never collide as long as
/// `rep < reps` — unlike nested per-cell/per-rep splitting, where
/// (cell 0, rep 1) and (cell 1, rep 0) could land on the same jump
/// offset.
#[must_use]
pub fn rep_stream(master_seed: u64, cell: &Cell, reps: u64, rep: u64) -> Xoshiro256StarStar {
    debug_assert!(rep < reps, "rep index out of range");
    Xoshiro256StarStar::seed_from(master_seed).split_stream(cell.id() * reps + rep)
}

/// Draws one replication for `cell` from `rng`.
///
/// The draw order is part of the reproducibility contract (changing
/// it silently changes every rank in every committed report):
/// 1. hyper-parameters — `λ0 = λ_max·U(0,1)` (open) for Poisson, or
///    `α0 = α_max·U(0,1)` (open) then `β0 = U(0,1)` (open) for NB;
/// 2. `N` from the bug-content prior;
/// 3. each `ζ_j = lo + (hi − lo)·U(0,1)` over the model's bounds;
/// 4. the simulated project;
/// 5. the tie-break variate;
/// 6. the inner fit seed.
pub fn draw_rep<R: Rng + ?Sized>(cell: &Cell, spec: &GridSpec, rng: &mut R) -> SbcRep {
    let mut params: Vec<(&'static str, f64)> = Vec::new();
    let prior = match cell.prior {
        PriorSpec::Poisson { lambda_max } => {
            let lambda0 = lambda_max * rng.next_open_f64();
            params.push(("lambda0", lambda0));
            // Positive finite λ0 by construction of the open draw.
            BugPrior::poisson(lambda0).unwrap_or_else(|_| unreachable!())
        }
        PriorSpec::NegBinomial { alpha_max } => {
            let alpha0 = alpha_max * rng.next_open_f64();
            let beta0 = rng.next_open_f64();
            params.push(("alpha0", alpha0));
            params.push(("beta0", beta0));
            BugPrior::neg_binomial(alpha0, beta0).unwrap_or_else(|_| unreachable!())
        }
    };
    let n = prior.sample(rng);

    let bounds = cell.model.bounds(&spec.zeta_bounds);
    let mut zeta = Vec::with_capacity(bounds.len());
    for (&name, &(lo, hi)) in cell.model.param_names().iter().zip(&bounds) {
        let value = lo + (hi - lo) * rng.next_f64();
        params.push((name, value));
        zeta.push(value);
    }

    // ζ came from the model's own bounds, so the schedule is valid.
    let probs = cell
        .model
        .probs(&zeta, spec.days)
        .unwrap_or_else(|_| unreachable!());
    let project = DetectionSimulator::new(n, probs).run_with(rng);
    let tie_u = rng.next_f64();
    let fit_seed = rng.next_u64();

    SbcRep {
        truth: TruthDraw { n, params, zeta },
        project,
        tie_u,
        fit_seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_model::DetectionModel;

    fn spec() -> GridSpec {
        GridSpec::default()
    }

    #[test]
    fn streams_are_rep_order_independent() {
        let spec = spec();
        let cells = spec.cells();
        let cell = &cells[7];
        let mut fwd = rep_stream(99, cell, 16, 3);
        let a = draw_rep(cell, &spec, &mut fwd);
        // Re-derive the same stream after touching other streams.
        let _ = rep_stream(99, cell, 16, 4).next_u64();
        let _ = rep_stream(99, &cells[0], 16, 3).next_u64();
        let mut again = rep_stream(99, cell, 16, 3);
        let b = draw_rep(cell, &spec, &mut again);
        assert_eq!(a.truth.n, b.truth.n);
        assert_eq!(a.truth.params, b.truth.params);
        assert_eq!(a.project.data.counts(), b.project.data.counts());
        assert_eq!(a.fit_seed, b.fit_seed);
        assert!(a.tie_u == b.tie_u);
    }

    #[test]
    fn flat_index_prevents_cross_cell_collisions() {
        let spec = spec();
        let cells = spec.cells();
        let reps = 8u64;
        // (cell 0, rep 1) vs (cell 1, rep 0) collide under nested
        // splitting; the flat index keeps them distinct.
        let a = rep_stream(7, &cells[0], reps, 1).next_u64();
        let b = rep_stream(7, &cells[1], reps, 0).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn truth_layout_matches_prior_and_model() {
        let spec = spec();
        for cell in spec.cells() {
            let mut rng = rep_stream(11, &cell, 4, 0);
            let rep = draw_rep(&cell, &spec, &mut rng);
            let hyper = match cell.prior {
                PriorSpec::Poisson { .. } => 1,
                PriorSpec::NegBinomial { .. } => 2,
            };
            assert_eq!(rep.truth.params.len(), hyper + cell.model.dim());
            assert_eq!(rep.truth.zeta.len(), cell.model.dim());
            assert_eq!(rep.project.data.len(), spec.days);
            assert_eq!(
                rep.project.true_initial_bugs - rep.project.true_residual,
                rep.project.data.total()
            );
            for (name, value) in &rep.truth.params {
                assert!(value.is_finite(), "{name} not finite");
            }
        }
    }

    #[test]
    fn zeta_respects_model_bounds() {
        let spec = spec();
        let cell = Cell {
            prior: spec.priors[0],
            model: DetectionModel::LogLogistic,
        };
        for rep in 0..32 {
            let mut rng = rep_stream(5, &cell, 32, rep);
            let draw = draw_rep(&cell, &spec, &mut rng);
            for (z, (lo, hi)) in draw
                .truth
                .zeta
                .iter()
                .zip(cell.model.bounds(&spec.zeta_bounds))
            {
                assert!(*z >= lo && *z < hi);
            }
        }
    }
}
