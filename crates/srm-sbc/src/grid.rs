//! Calibration-grid specification: which (prior, curve) cells to run.
//!
//! A grid is the cross product of prior families and detection
//! curves, plus the generative configuration every cell shares (the
//! testing horizon, the hyper-prior limits, the rank-histogram bin
//! count and the gate level). Cells carry a *canonical* identifier —
//! `prior_index × 5 + model_index` — that depends only on the cell's
//! identity, never on which subset of the grid is being run or in
//! what order, so per-cell RNG streams derived from it reproduce
//! bit-identically across subsets and permutations.

use srm_mcmc::gibbs::PriorSpec;
use srm_model::{DetectionModel, ZetaBounds};
use srm_obs::json::Value;

/// The two prior families, in canonical order.
pub const PRIOR_LABELS: [&str; 2] = ["poisson", "negbinom"];

/// One (prior, detection-curve) calibration cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The prior family (with its hyper-prior limit) of this cell.
    pub prior: PriorSpec,
    /// The detection curve of this cell.
    pub model: DetectionModel,
}

impl Cell {
    /// Canonical cell identifier: `prior_index × 5 + model_index`,
    /// in `0..10`. Independent of grid subsetting and ordering.
    #[must_use]
    pub fn id(&self) -> u64 {
        let prior_idx = match self.prior {
            PriorSpec::Poisson { .. } => 0,
            PriorSpec::NegBinomial { .. } => 1,
        };
        prior_idx * DetectionModel::ALL.len() as u64 + self.model.id() as u64
    }

    /// Human-readable `prior/model` label.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}", self.prior.label(), self.model.name())
    }
}

/// The full calibration-grid specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Testing horizon of every simulated project, in days.
    pub days: usize,
    /// Prior families to run (subset of [`PRIOR_LABELS`], any order).
    pub priors: Vec<PriorSpec>,
    /// Detection curves to run (subset of the five, any order).
    pub models: Vec<DetectionModel>,
    /// Upper limit of the uniform hyper-prior on `λ0` (Poisson cells).
    pub lambda_max: f64,
    /// Upper limit of the uniform hyper-prior on `α0` (NB cells).
    pub alpha_max: f64,
    /// Uniform-prior limits on the detection parameters `ζ`.
    pub zeta_bounds: ZetaBounds,
    /// Rank-histogram bin count (chi-square has `bins − 1` dof).
    pub bins: usize,
    /// Per-cell significance level of the uniformity gate.
    pub alpha: f64,
}

impl Default for GridSpec {
    /// The full battery: all 5 curves × both priors, 40-day horizon,
    /// modest hyper-prior limits so generative bug contents stay in
    /// the low hundreds (the sampler runs with the same limits, so
    /// calibration is exact).
    fn default() -> Self {
        Self {
            days: 40,
            priors: vec![
                PriorSpec::Poisson { lambda_max: 150.0 },
                PriorSpec::NegBinomial { alpha_max: 40.0 },
            ],
            models: DetectionModel::ALL.to_vec(),
            lambda_max: 150.0,
            alpha_max: 40.0,
            zeta_bounds: ZetaBounds::default(),
            bins: 10,
            alpha: 0.001,
        }
    }
}

impl GridSpec {
    /// The cells of this grid, priors outer, in the order listed.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.priors.len() * self.models.len());
        for &prior in &self.priors {
            for &model in &self.models {
                cells.push(Cell { prior, model });
            }
        }
        cells
    }

    /// Parses a grid-spec JSON document. Every field is optional and
    /// defaults to the full battery's value:
    ///
    /// ```json
    /// {
    ///   "days": 40,
    ///   "priors": ["poisson", "negbinom"],
    ///   "models": ["model0", "model3"],
    ///   "lambda_max": 150.0, "alpha_max": 40.0,
    ///   "theta_max": 10.0, "gamma_max": 10.0,
    ///   "bins": 10, "alpha": 0.001
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on unknown prior
    /// or model names, duplicates, or out-of-range numerics.
    pub fn from_value(doc: &Value) -> Result<Self, String> {
        let defaults = Self::default();
        let num = |field: &str, fallback: f64| -> Result<f64, String> {
            match doc.get(field) {
                None => Ok(fallback),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| format!("grid field `{field}` must be a number")),
            }
        };
        let days = num("days", defaults.days as f64)? as usize;
        let lambda_max = num("lambda_max", defaults.lambda_max)?;
        let alpha_max = num("alpha_max", defaults.alpha_max)?;
        let theta_max = num("theta_max", defaults.zeta_bounds.theta_max)?;
        let gamma_max = num("gamma_max", defaults.zeta_bounds.gamma_max)?;
        let bins = num("bins", defaults.bins as f64)? as usize;
        let alpha = num("alpha", defaults.alpha)?;

        let names = |field: &str| -> Result<Option<Vec<String>>, String> {
            match doc.get(field) {
                None => Ok(None),
                Some(v) => {
                    let arr = v
                        .as_arr()
                        .ok_or_else(|| format!("grid field `{field}` must be an array"))?;
                    let mut out = Vec::with_capacity(arr.len());
                    for item in arr {
                        out.push(
                            item.as_str()
                                .ok_or_else(|| format!("grid field `{field}` must hold strings"))?
                                .to_owned(),
                        );
                    }
                    Ok(Some(out))
                }
            }
        };

        let priors = match names("priors")? {
            None => vec![
                PriorSpec::Poisson { lambda_max },
                PriorSpec::NegBinomial { alpha_max },
            ],
            Some(labels) => {
                let mut priors = Vec::with_capacity(labels.len());
                for label in &labels {
                    priors.push(match label.as_str() {
                        "poisson" => PriorSpec::Poisson { lambda_max },
                        "negbinom" => PriorSpec::NegBinomial { alpha_max },
                        other => return Err(format!("unknown prior `{other}` in grid spec")),
                    });
                }
                priors
            }
        };
        let models = match names("models")? {
            None => DetectionModel::ALL.to_vec(),
            Some(labels) => {
                let mut models = Vec::with_capacity(labels.len());
                for label in &labels {
                    models.push(
                        DetectionModel::ALL
                            .into_iter()
                            .find(|m| m.name() == label.as_str())
                            .ok_or_else(|| format!("unknown model `{label}` in grid spec"))?,
                    );
                }
                models
            }
        };

        let spec = Self {
            days,
            priors,
            models,
            lambda_max,
            alpha_max,
            zeta_bounds: ZetaBounds {
                theta_max,
                gamma_max,
            },
            bins,
            alpha,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.days == 0 {
            return Err("grid `days` must be at least 1".into());
        }
        if self.bins < 2 {
            return Err("grid `bins` must be at least 2".into());
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err("grid `alpha` must be in (0, 1)".into());
        }
        for (name, v) in [
            ("lambda_max", self.lambda_max),
            ("alpha_max", self.alpha_max),
            ("theta_max", self.zeta_bounds.theta_max),
            ("gamma_max", self.zeta_bounds.gamma_max),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("grid `{name}` must be positive and finite"));
            }
        }
        if self.priors.is_empty() || self.models.is_empty() {
            return Err("grid needs at least one prior and one model".into());
        }
        let mut prior_labels: Vec<&str> = self.priors.iter().map(PriorSpec::label).collect();
        prior_labels.sort_unstable();
        prior_labels.dedup();
        if prior_labels.len() != self.priors.len() {
            return Err("grid `priors` holds duplicates".into());
        }
        let mut model_names: Vec<&str> = self.models.iter().map(DetectionModel::name).collect();
        model_names.sort_unstable();
        model_names.dedup();
        if model_names.len() != self.models.len() {
            return Err("grid `models` holds duplicates".into());
        }
        Ok(())
    }

    /// The grid echo embedded in the SBC report document.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("days", Value::Num(self.days as f64)),
            (
                "priors",
                Value::Arr(
                    self.priors
                        .iter()
                        .map(|p| Value::Str(p.label().to_owned()))
                        .collect(),
                ),
            ),
            (
                "models",
                Value::Arr(
                    self.models
                        .iter()
                        .map(|m| Value::Str(m.name().to_owned()))
                        .collect(),
                ),
            ),
            ("lambda_max", Value::Num(self.lambda_max)),
            ("alpha_max", Value::Num(self.alpha_max)),
            ("theta_max", Value::Num(self.zeta_bounds.theta_max)),
            ("gamma_max", Value::Num(self.zeta_bounds.gamma_max)),
            ("bins", Value::Num(self.bins as f64)),
            ("alpha", Value::Num(self.alpha)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_obs::json::parse;

    #[test]
    fn default_grid_has_ten_canonical_cells() {
        let cells = GridSpec::default().cells();
        assert_eq!(cells.len(), 10);
        let ids: Vec<u64> = cells.iter().map(Cell::id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn cell_ids_are_subset_and_order_independent() {
        let doc = parse(r#"{"models": ["model3"], "priors": ["negbinom"]}"#).unwrap();
        let spec = GridSpec::from_value(&doc).unwrap();
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        // negbinom (index 1) × model3 → 1·5 + 3 = 8, exactly as in
        // the full grid.
        assert_eq!(cells[0].id(), 8);
        assert_eq!(cells[0].label(), "negbinom/model3");

        let reversed = parse(r#"{"models": ["model4", "model0"]}"#).unwrap();
        let spec = GridSpec::from_value(&reversed).unwrap();
        let ids: Vec<u64> = spec.cells().iter().map(Cell::id).collect();
        assert_eq!(ids, vec![4, 0, 9, 5]);
    }

    #[test]
    fn spec_round_trips_defaults() {
        let doc = parse("{}").unwrap();
        let spec = GridSpec::from_value(&doc).unwrap();
        assert_eq!(spec, GridSpec::default());
    }

    #[test]
    fn spec_rejects_bad_fields() {
        for bad in [
            r#"{"priors": ["cauchy"]}"#,
            r#"{"models": ["model9"]}"#,
            r#"{"models": ["model1", "model1"]}"#,
            r#"{"priors": ["poisson", "poisson"]}"#,
            r#"{"bins": 1}"#,
            r#"{"alpha": 0}"#,
            r#"{"days": 0}"#,
            r#"{"lambda_max": -3}"#,
            r#"{"models": []}"#,
            r#"{"models": "model0"}"#,
            r#"{"days": "many"}"#,
        ] {
            let doc = parse(bad).unwrap();
            assert!(GridSpec::from_value(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn hyper_limits_flow_into_priors() {
        let doc = parse(r#"{"lambda_max": 80, "alpha_max": 12}"#).unwrap();
        let spec = GridSpec::from_value(&doc).unwrap();
        assert!(matches!(
            spec.priors[0],
            PriorSpec::Poisson { lambda_max } if lambda_max == 80.0
        ));
        assert!(matches!(
            spec.priors[1],
            PriorSpec::NegBinomial { alpha_max } if alpha_max == 12.0
        ));
    }

    #[test]
    fn grid_echo_is_parseable_json() {
        let spec = GridSpec::default();
        let text = spec.to_value().to_json();
        let doc = parse(&text).unwrap();
        let spec2 = GridSpec::from_value(&doc).unwrap();
        assert_eq!(spec, spec2);
    }
}
