//! The SBC battery driver: replication scheduling, inner fits, rank
//! aggregation, and the uniformity gate.
//!
//! Replications are independent, so the harness parallelizes at the
//! (cell, rep) granularity with a scoped-thread worker pool pulling
//! from an atomic task counter; each inner fit runs its chains on the
//! worker's own thread (`threads: 1`) so the pool never oversubscribes
//! the machine. Every replication derives everything it needs — data,
//! fit seed, tie-break — from its own RNG stream
//! ([`crate::generative::rep_stream`]), so the report is bit-identical
//! under any worker count or scheduling order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use srm_core::fit::{Fit, FitConfig};
use srm_math::stats::chi2_gof;
use srm_mcmc::runner::{McmcConfig, RunOptions};
use srm_mcmc::{RetryPolicy, SrmError};
use srm_obs::{Event, Recorder};

use crate::generative::{draw_rep, rep_stream};
use crate::grid::{Cell, GridSpec};
use crate::rank::{bin_index, rank_continuous, rank_discrete, thin_indices, thinned_len};
use crate::report::{CellReport, ParamCalibration, SbcReport};

/// Retry budget for faulted sweeps inside each replication's fit.
const REP_RETRIES: usize = 3;

/// Configuration of one SBC battery run.
#[derive(Debug, Clone)]
pub struct SbcConfig {
    /// The (prior × curve) grid and shared generative settings.
    pub grid: GridSpec,
    /// Replications per cell.
    pub reps: usize,
    /// Inner-fit MCMC configuration; `seed` is the battery's master
    /// seed (each replication derives its own fit seed from its
    /// stream, see [`crate::generative`]).
    pub mcmc: McmcConfig,
    /// Worker threads over replications (`0` = one per core).
    pub threads: usize,
    /// Bias added to every posterior `N` draw before ranking. Zero in
    /// real runs; nonzero simulates a miscalibrated sampler so tests
    /// can prove the gate trips.
    pub inject_bias: f64,
}

impl Default for SbcConfig {
    fn default() -> Self {
        Self {
            grid: GridSpec::default(),
            reps: 20,
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 300,
                samples: 500,
                thin: 1,
                seed: 2024,
            },
            threads: 0,
            inject_bias: 0.0,
        }
    }
}

/// Ranks produced by one successful replication.
struct RepRanks {
    /// `(name, rank)` in report order: `n` first, then the continuous
    /// truth parameters.
    ranks: Vec<(&'static str, usize)>,
    /// Wall time of the replication (draw + fit + ranking), ms.
    wall_ms: f64,
}

/// Outcome slot of one (cell, rep) task.
enum RepOutcome {
    Ranked(RepRanks),
    /// The inner fit errored or survived only degraded.
    Failed {
        wall_ms: f64,
    },
}

/// Runs the battery described by `config`, emitting per-cell and
/// per-replication trace events through `recorder`.
///
/// # Errors
///
/// Returns [`SrmError::InvalidConfig`] on an invalid grid, zero
/// `reps`, or an MCMC configuration whose pooled draw count is too
/// small to thin into `bins` rank bins. Inner-fit faults never abort
/// the battery — they count as replication failures, which fail the
/// affected cell's gate.
pub fn run_sbc(config: &SbcConfig, recorder: &dyn Recorder) -> Result<SbcReport, SrmError> {
    validate(config)?;
    let grid = &config.grid;
    let cells = grid.cells();
    let reps = config.reps;
    let pooled = config.mcmc.chains * config.mcmc.samples / config.mcmc.thin.max(1);
    // Guarded by validate(): pooled + 1 ≥ bins.
    let m = thinned_len(pooled, grid.bins).unwrap_or_else(|| unreachable!());
    let num_ranks = m + 1;

    if recorder.enabled() {
        for cell in &cells {
            recorder.record(&Event::SbcCellStart {
                prior: cell.prior.label().to_owned(),
                model: cell.model.name().to_owned(),
                reps,
            });
        }
    }

    let tasks = cells.len() * reps;
    let slots: Vec<OnceLock<RepOutcome>> = (0..tasks).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = worker_count(config.threads, tasks);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let task = next.fetch_add(1, Ordering::Relaxed);
                if task >= tasks {
                    break;
                }
                let cell = &cells[task / reps];
                let rep = task % reps;
                let outcome = run_rep(config, cell, rep, num_ranks, m);
                if recorder.enabled() {
                    let rank = match &outcome {
                        RepOutcome::Ranked(r) => r.ranks.first().map_or(num_ranks, |&(_, r)| r),
                        RepOutcome::Failed { .. } => num_ranks,
                    };
                    recorder.record(&Event::SbcRepDone {
                        prior: cell.prior.label().to_owned(),
                        model: cell.model.name().to_owned(),
                        rep,
                        rank,
                        num_ranks,
                    });
                }
                // Each task index is claimed exactly once.
                slots[task].set(outcome).unwrap_or_else(|_| unreachable!());
            });
        }
    });

    let mut cell_reports = Vec::with_capacity(cells.len());
    for (cell_index, cell) in cells.iter().enumerate() {
        let outcomes: Vec<&RepOutcome> = (0..reps)
            .map(|rep| {
                // Every task slot was filled before the scope ended.
                slots[cell_index * reps + rep]
                    .get()
                    .unwrap_or_else(|| unreachable!())
            })
            .collect();
        let report = aggregate_cell(grid, cell, &outcomes, num_ranks);
        if recorder.enabled() {
            let wall_ms = outcomes
                .iter()
                .map(|o| match o {
                    RepOutcome::Ranked(r) => r.wall_ms,
                    RepOutcome::Failed { wall_ms } => *wall_ms,
                })
                .sum();
            let n = report.params.first();
            recorder.record(&Event::SbcCellDone {
                prior: report.prior.clone(),
                model: report.model.clone(),
                reps,
                failures: report.failures,
                chi2: n.map_or(0.0, |p| p.chi2),
                p_value: n.map_or(0.0, |p| p.p_value),
                passed: report.passed,
                wall_ms,
            });
        }
        cell_reports.push(report);
    }

    Ok(SbcReport {
        master_seed: config.mcmc.seed,
        reps,
        bins: grid.bins,
        alpha: grid.alpha,
        inject_bias: config.inject_bias,
        mcmc: config.mcmc,
        grid: grid.clone(),
        cells: cell_reports,
    })
}

fn validate(config: &SbcConfig) -> Result<(), SrmError> {
    config
        .grid
        .validate()
        .map_err(|detail| SrmError::InvalidConfig { detail })?;
    if config.reps == 0 {
        return Err(SrmError::InvalidConfig {
            detail: "sbc reps must be at least 1".into(),
        });
    }
    if !config.inject_bias.is_finite() {
        return Err(SrmError::InvalidConfig {
            detail: "sbc inject-bias must be finite".into(),
        });
    }
    if config.mcmc.chains == 0 || config.mcmc.samples == 0 || config.mcmc.thin == 0 {
        return Err(SrmError::InvalidConfig {
            detail: "sbc mcmc chains, samples and thin must be positive".into(),
        });
    }
    let pooled = config.mcmc.chains * config.mcmc.samples / config.mcmc.thin;
    if thinned_len(pooled, config.grid.bins).is_none() {
        return Err(SrmError::InvalidConfig {
            detail: format!(
                "pooled draw count {pooled} is too small for {} rank bins",
                config.grid.bins
            ),
        });
    }
    Ok(())
}

fn worker_count(requested: usize, tasks: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = if requested == 0 { cores } else { requested };
    workers.min(tasks).max(1)
}

/// Draws, fits, and ranks one replication.
fn run_rep(config: &SbcConfig, cell: &Cell, rep: usize, num_ranks: usize, m: usize) -> RepOutcome {
    let start = Instant::now();
    let mut rng = rep_stream(config.mcmc.seed, cell, config.reps as u64, rep as u64);
    let drawn = draw_rep(cell, &config.grid, &mut rng);

    let fit_config = FitConfig {
        mcmc: McmcConfig {
            seed: drawn.fit_seed,
            ..config.mcmc
        },
        zeta_bounds: config.grid.zeta_bounds,
    };
    let options = RunOptions {
        retry: RetryPolicy {
            max_retries: REP_RETRIES,
        },
        // Chains run sequentially on this worker thread — the pool
        // above already saturates the cores.
        threads: 1,
        ..RunOptions::none()
    };
    let fit = match Fit::try_run(
        cell.prior,
        cell.model,
        &drawn.project.data,
        &fit_config,
        &options,
    ) {
        Ok(fit) if !fit.is_degraded() => fit.fit,
        // A lost chain would shrink the pooled draw count and break
        // the shared rank scale, so degraded runs count as failures.
        _ => {
            return RepOutcome::Failed {
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            }
        }
    };

    let thin = |draws: &[f64]| -> Vec<f64> {
        thin_indices(draws.len(), m)
            .iter()
            .map(|&i| draws[i])
            .collect()
    };
    let mut ranks = Vec::with_capacity(1 + drawn.truth.params.len());
    let mut n_draws = fit.output.pooled("n");
    debug_assert_eq!(num_ranks, m + 1);
    if config.inject_bias != 0.0 {
        for d in &mut n_draws {
            *d += config.inject_bias;
        }
    }
    ranks.push((
        "n",
        rank_discrete(&thin(&n_draws), drawn.truth.n as f64, drawn.tie_u),
    ));
    for &(name, truth) in &drawn.truth.params {
        let draws = fit.output.pooled(name);
        ranks.push((name, rank_continuous(&thin(&draws), truth)));
    }

    RepOutcome::Ranked(RepRanks {
        ranks,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// Bins one cell's ranks, runs the chi-square gate, and assembles the
/// cell report.
fn aggregate_cell(
    grid: &GridSpec,
    cell: &Cell,
    outcomes: &[&RepOutcome],
    num_ranks: usize,
) -> CellReport {
    let bins = grid.bins;
    let successes: Vec<&RepRanks> = outcomes
        .iter()
        .filter_map(|o| match o {
            RepOutcome::Ranked(r) => Some(r),
            RepOutcome::Failed { .. } => None,
        })
        .collect();
    let failures = outcomes.len() - successes.len();
    let n_ranks: Vec<usize> = outcomes
        .iter()
        .map(|o| match o {
            RepOutcome::Ranked(r) => r.ranks.first().map_or(num_ranks, |&(_, rank)| rank),
            RepOutcome::Failed { .. } => num_ranks,
        })
        .collect();

    let param_names: Vec<&'static str> = successes
        .first()
        .map(|r| r.ranks.iter().map(|&(name, _)| name).collect())
        .unwrap_or_default();
    let mut params = Vec::with_capacity(param_names.len());
    for (slot, name) in param_names.iter().enumerate() {
        let mut histogram = vec![0u64; bins];
        for rep in &successes {
            let (_, rank) = rep.ranks[slot];
            histogram[bin_index(rank, num_ranks, bins)] += 1;
        }
        let observed: Vec<f64> = histogram.iter().map(|&c| c as f64).collect();
        let expected = vec![successes.len() as f64 / bins as f64; bins];
        // chi2_gof needs positive expected counts; with zero
        // successes the gate already fails via `failures`.
        let (chi2, p_value) = if successes.is_empty() {
            (0.0, 0.0)
        } else {
            chi2_gof(&observed, &expected, 0)
        };
        let gated = *name == "n";
        params.push(ParamCalibration {
            name: (*name).to_owned(),
            histogram,
            chi2,
            p_value,
            gated,
            passed: p_value >= grid.alpha,
        });
    }

    let passed = failures == 0 && params.iter().filter(|p| p.gated).all(|p| p.passed);
    CellReport {
        prior: cell.prior.label().to_owned(),
        model: cell.model.name().to_owned(),
        cell_id: cell.id(),
        reps: outcomes.len(),
        failures,
        num_ranks,
        n_ranks,
        params,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_mcmc::gibbs::PriorSpec;
    use srm_model::DetectionModel;
    use srm_obs::NOOP;

    fn tiny_config() -> SbcConfig {
        SbcConfig {
            grid: GridSpec {
                days: 12,
                priors: vec![PriorSpec::Poisson { lambda_max: 60.0 }],
                models: vec![DetectionModel::Constant],
                lambda_max: 60.0,
                alpha_max: 8.0,
                bins: 4,
                alpha: 0.001,
                ..GridSpec::default()
            },
            reps: 6,
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 50,
                samples: 60,
                thin: 1,
                seed: 4242,
            },
            threads: 2,
            inject_bias: 0.0,
        }
    }

    #[test]
    fn battery_is_deterministic_across_thread_counts() {
        let mut config = tiny_config();
        let a = run_sbc(&config, &NOOP).unwrap_or_else(|_| unreachable!());
        config.threads = 1;
        let b = run_sbc(&config, &NOOP).unwrap_or_else(|_| unreachable!());
        assert_eq!(a.to_value().to_json_pretty(), b.to_value().to_json_pretty());
        assert_eq!(a.cells.len(), 1);
        assert_eq!(a.cells[0].n_ranks.len(), 6);
        assert_eq!(a.cells[0].num_ranks % a.bins, 0);
    }

    #[test]
    fn negbinom_zero_bug_draws_survive_the_fit_path() {
        // The NB prior has an atom at N = 0 (all-zero datasets); the
        // battery must rank them, not crash.
        let mut config = tiny_config();
        config.grid.priors = vec![PriorSpec::NegBinomial { alpha_max: 8.0 }];
        config.reps = 4;
        let report = run_sbc(&config, &NOOP).unwrap_or_else(|_| unreachable!());
        assert_eq!(report.cells[0].reps, 4);
    }

    #[test]
    fn injected_bias_trips_the_gate() {
        let mut config = tiny_config();
        config.reps = 16;
        config.inject_bias = 1.0e6;
        let report = run_sbc(&config, &NOOP).unwrap_or_else(|_| unreachable!());
        // Every posterior draw is pushed far above the truth, so all
        // ranks land in bin 0 — maximally non-uniform.
        assert!(!report.all_passed());
        let n = &report.cells[0].params[0];
        assert!(n.p_value < config.grid.alpha);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = tiny_config();
        config.reps = 0;
        assert!(run_sbc(&config, &NOOP).is_err());

        let mut config = tiny_config();
        config.mcmc.samples = 1;
        config.grid.bins = 10;
        assert!(matches!(
            run_sbc(&config, &NOOP),
            Err(SrmError::InvalidConfig { .. })
        ));

        let mut config = tiny_config();
        config.grid.models.clear();
        assert!(run_sbc(&config, &NOOP).is_err());

        let mut config = tiny_config();
        config.inject_bias = f64::NAN;
        assert!(run_sbc(&config, &NOOP).is_err());
    }
}
