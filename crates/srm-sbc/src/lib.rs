//! Simulation-based calibration (SBC) battery for the Bayesian SRM
//! pipeline.
//!
//! The paper validates its five detection curves × two priors on a
//! single dataset; this crate supplies the complementary end-to-end
//! correctness check: draw the full parameter vector from the
//! sampler's *own* prior, simulate a bug-count series from it, fit,
//! and verify the rank of the truth in the thinned posterior is
//! uniform (Talts et al. 2018, "Validating Bayesian inference
//! algorithms with simulation-based calibration"). Any bug anywhere
//! in the prior → likelihood → Gibbs → pooling chain shows up as a
//! non-uniform rank histogram.
//!
//! The battery is organised as a grid of (prior, detection-curve)
//! cells ([`grid`]), each running `R` independent replications
//! ([`generative`]) through the fault-tolerant [`srm_core::fit::Fit`]
//! path, ranked ([`rank`]) and gated with a chi-square uniformity
//! test ([`harness`]), producing a deterministic JSON report
//! ([`report`]). The CLI surface is `srm sbc`.
//!
//! # Reproducibility contract
//!
//! Every (cell, rep) pair owns a dedicated RNG stream split from the
//! master seed at a canonical flat index, so *any subset of the grid,
//! run in any order with any worker count, reproduces its ranks
//! bit-identically* — and the emitted `sbc.json` is byte-identical
//! across reruns with the same seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generative;
pub mod grid;
pub mod harness;
pub mod rank;
pub mod report;

pub use generative::{draw_rep, rep_stream, SbcRep, TruthDraw};
pub use grid::{Cell, GridSpec};
pub use harness::{run_sbc, SbcConfig};
pub use report::{CellReport, ParamCalibration, SbcReport, SBC_SCHEMA_VERSION};
