//! Rank statistics over thinned posterior draws.
//!
//! SBC checks that the rank of the true parameter among `M` posterior
//! draws is uniform on `{0, …, M}` (Talts et al. 2018). Two details
//! matter for a discrete-time SRM stack:
//!
//! * **Tie-breaking.** `N` and the residual are integers, so posterior
//!   draws tie with the truth often. Counting ties as "below" (or
//!   "above") skews ranks toward an edge even for a perfectly
//!   calibrated sampler; [`rank_discrete`] instead places the truth
//!   uniformly at random among its ties using a pre-drawn variate, so
//!   the tie-break is reproducible from the rep's RNG stream.
//! * **Binnable rank counts.** The rank takes `M + 1` values; for an
//!   exact chi-square gate the histogram needs `bins | M + 1`.
//!   [`thinned_len`] picks the largest such `M` not exceeding the
//!   pooled draw count, and [`thin_indices`] spreads the kept draws
//!   evenly across the pooled chain (which also dilutes
//!   autocorrelation).

/// The largest thinned draw count `M` with `bins | M + 1` and
/// `M ≤ pooled`, or `None` when `pooled + 1 < bins`.
#[must_use]
pub fn thinned_len(pooled: usize, bins: usize) -> Option<usize> {
    let l = (pooled + 1) / bins * bins;
    if l >= bins {
        Some(l - 1)
    } else {
        None
    }
}

/// Evenly-spread indices selecting `m` of `pooled` draws
/// (`m ≤ pooled`): `idx_i = ⌊i · pooled / m⌋`.
#[must_use]
pub fn thin_indices(pooled: usize, m: usize) -> Vec<usize> {
    debug_assert!(m <= pooled);
    (0..m).map(|i| i * pooled / m).collect()
}

/// Rank of `truth` among `draws` with a uniform tie-break: the number
/// of draws strictly below, plus a `tie_u`-selected slot among the
/// ties. Uniform on `{0, …, draws.len()}` when `truth` and `draws`
/// are exchangeable.
#[must_use]
pub fn rank_discrete(draws: &[f64], truth: f64, tie_u: f64) -> usize {
    let below = draws.iter().filter(|&&d| d < truth).count();
    let ties = draws.iter().filter(|&&d| d == truth).count();
    let slot = ((tie_u * (ties + 1) as f64) as usize).min(ties);
    below + slot
}

/// Rank of `truth` among continuous `draws` (ties have measure zero):
/// the count of draws strictly below.
#[must_use]
pub fn rank_continuous(draws: &[f64], truth: f64) -> usize {
    draws.iter().filter(|&&d| d < truth).count()
}

/// Histogram bin of a rank on `{0, …, num_ranks − 1}` under `bins`
/// equal bins (`bins | num_ranks` — guaranteed by [`thinned_len`]).
#[must_use]
pub fn bin_index(rank: usize, num_ranks: usize, bins: usize) -> usize {
    debug_assert!(rank < num_ranks);
    debug_assert_eq!(num_ranks % bins, 0);
    rank * bins / num_ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thinned_len_is_divisible_and_maximal() {
        for pooled in 1..200 {
            for bins in 2..12 {
                match thinned_len(pooled, bins) {
                    Some(m) => {
                        assert!(m <= pooled);
                        assert_eq!((m + 1) % bins, 0);
                        // Maximal: the next multiple would overshoot.
                        assert!(m + 1 + bins > pooled + 1);
                    }
                    None => assert!(pooled + 1 < bins),
                }
            }
        }
    }

    #[test]
    fn thin_indices_are_strictly_increasing_and_in_range() {
        let idx = thin_indices(1000, 99);
        assert_eq!(idx.len(), 99);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(*idx.last().unwrap_or(&usize::MAX) < 1000);
        assert_eq!(thin_indices(5, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn discrete_rank_spreads_ties() {
        let draws = [2.0, 3.0, 3.0, 3.0, 5.0];
        // One draw below the truth, three tied: rank ∈ {1, 2, 3, 4}.
        assert_eq!(rank_discrete(&draws, 3.0, 0.0), 1);
        assert_eq!(rank_discrete(&draws, 3.0, 0.26), 2);
        assert_eq!(rank_discrete(&draws, 3.0, 0.51), 3);
        assert_eq!(rank_discrete(&draws, 3.0, 0.99), 4);
        // tie_u exactly 1.0 must still stay in range.
        assert_eq!(rank_discrete(&draws, 3.0, 1.0), 4);
        // No ties: tie_u is irrelevant.
        assert_eq!(rank_discrete(&draws, 4.0, 0.7), 4);
        assert_eq!(rank_discrete(&draws, 0.0, 0.7), 0);
        assert_eq!(rank_discrete(&draws, 9.0, 0.7), 5);
    }

    #[test]
    fn continuous_rank_counts_below() {
        let draws = [0.1, 0.4, 0.9];
        assert_eq!(rank_continuous(&draws, 0.05), 0);
        assert_eq!(rank_continuous(&draws, 0.5), 2);
        assert_eq!(rank_continuous(&draws, 1.5), 3);
    }

    #[test]
    fn bin_index_partitions_evenly() {
        let num_ranks = 20;
        let bins = 4;
        let mut counts = [0usize; 4];
        for rank in 0..num_ranks {
            counts[bin_index(rank, num_ranks, bins)] += 1;
        }
        assert_eq!(counts, [5, 5, 5, 5]);
        assert_eq!(bin_index(0, num_ranks, bins), 0);
        assert_eq!(bin_index(num_ranks - 1, num_ranks, bins), bins - 1);
    }
}
