//! SBC report document: per-cell rank histograms, chi-square gates,
//! and the deterministic JSON serialization.
//!
//! The report is part of the reproducibility contract: reruns with
//! the same master seed and grid must produce **byte-identical**
//! JSON, so nothing time- or host-dependent (wall-clock, hostnames,
//! thread counts actually used) is ever stored here — timings live in
//! trace events and the run manifest instead.

use srm_mcmc::runner::McmcConfig;
use srm_obs::json::Value;

use crate::grid::GridSpec;

/// Version stamp of the report document layout.
pub const SBC_SCHEMA_VERSION: u64 = 1;

/// Calibration result of one ranked parameter within a cell.
#[derive(Debug, Clone)]
pub struct ParamCalibration {
    /// Parameter name (`n`, `lambda0`, `alpha0`, `beta0`, `mu`, …).
    pub name: String,
    /// Rank-histogram counts over the grid's bins.
    pub histogram: Vec<u64>,
    /// Chi-square goodness-of-fit statistic against uniformity.
    pub chi2: f64,
    /// Upper-tail p-value of `chi2` at `bins − 1` dof.
    pub p_value: f64,
    /// Whether this parameter participates in the pass/fail gate
    /// (only `n` is gated; continuous parameters from short
    /// autocorrelated chains are reported for diagnosis).
    pub gated: bool,
    /// `p_value ≥ alpha` (informational for ungated parameters).
    pub passed: bool,
}

/// Calibration result of one (prior, curve) cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Prior label (`poisson` / `negbinom`).
    pub prior: String,
    /// Curve label (`model0` … `model4`).
    pub model: String,
    /// Canonical cell identifier ([`crate::grid::Cell::id`]).
    pub cell_id: u64,
    /// Replications attempted.
    pub reps: usize,
    /// Replications whose inner fit failed or degraded (excluded
    /// from the histograms; any failure fails the cell).
    pub failures: usize,
    /// Number of distinct rank values (`M + 1`, divisible by bins).
    pub num_ranks: usize,
    /// Raw per-replication ranks of the true `N`, in rep order
    /// (`num_ranks` sentinel marks a failed rep).
    pub n_ranks: Vec<usize>,
    /// Per-parameter calibration, `n` first.
    pub params: Vec<ParamCalibration>,
    /// `failures == 0` and every gated parameter passed.
    pub passed: bool,
}

/// The full SBC battery result.
#[derive(Debug, Clone)]
pub struct SbcReport {
    /// Master seed every stream was split from.
    pub master_seed: u64,
    /// Replications per cell.
    pub reps: usize,
    /// Rank-histogram bins.
    pub bins: usize,
    /// Gate significance level.
    pub alpha: f64,
    /// Bias injected into the `N` draws before ranking (normally 0;
    /// used by tests to prove the gate trips on a miscalibrated
    /// sampler).
    pub inject_bias: f64,
    /// Inner-fit MCMC configuration.
    pub mcmc: McmcConfig,
    /// Grid the battery ran over.
    pub grid: GridSpec,
    /// Per-cell results, in grid order.
    pub cells: Vec<CellReport>,
}

impl SbcReport {
    /// Whether every cell passed its gate.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.cells.iter().all(|c| c.passed)
    }

    /// Deterministic JSON document (no timestamps, no host state).
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("sbc_schema_version", Value::Num(SBC_SCHEMA_VERSION as f64)),
            ("master_seed", Value::Num(self.master_seed as f64)),
            ("reps", Value::Num(self.reps as f64)),
            ("bins", Value::Num(self.bins as f64)),
            ("alpha", Value::Num(self.alpha)),
            ("inject_bias", Value::Num(self.inject_bias)),
            (
                "mcmc",
                Value::obj(vec![
                    ("chains", Value::Num(self.mcmc.chains as f64)),
                    ("burn_in", Value::Num(self.mcmc.burn_in as f64)),
                    ("samples", Value::Num(self.mcmc.samples as f64)),
                    ("thin", Value::Num(self.mcmc.thin as f64)),
                ]),
            ),
            ("grid", self.grid.to_value()),
            ("all_passed", Value::Bool(self.all_passed())),
            (
                "cells",
                Value::Arr(self.cells.iter().map(CellReport::to_value).collect()),
            ),
        ])
    }

    /// Fixed-width per-cell summary for terminal output.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>5} {:>5} {:>9} {:>9}  {}\n",
            "cell", "reps", "fail", "chi2(n)", "p(n)", "gate"
        ));
        for cell in &self.cells {
            let n = cell.params.first();
            let (chi2, p) = n.map_or((f64::NAN, f64::NAN), |p| (p.chi2, p.p_value));
            out.push_str(&format!(
                "{:<18} {:>5} {:>5} {:>9.3} {:>9.5}  {}\n",
                format!("{}/{}", cell.prior, cell.model),
                cell.reps,
                cell.failures,
                chi2,
                p,
                if cell.passed { "pass" } else { "FAIL" },
            ));
        }
        out.push_str(&format!(
            "overall: {}\n",
            if self.all_passed() { "pass" } else { "FAIL" }
        ));
        out
    }
}

impl CellReport {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("prior", Value::Str(self.prior.clone())),
            ("model", Value::Str(self.model.clone())),
            ("cell_id", Value::Num(self.cell_id as f64)),
            ("reps", Value::Num(self.reps as f64)),
            ("failures", Value::Num(self.failures as f64)),
            ("num_ranks", Value::Num(self.num_ranks as f64)),
            (
                "n_ranks",
                Value::Arr(self.n_ranks.iter().map(|&r| Value::Num(r as f64)).collect()),
            ),
            (
                "params",
                Value::Arr(
                    self.params
                        .iter()
                        .map(|p| {
                            Value::obj(vec![
                                ("name", Value::Str(p.name.clone())),
                                (
                                    "histogram",
                                    Value::Arr(
                                        p.histogram.iter().map(|&c| Value::Num(c as f64)).collect(),
                                    ),
                                ),
                                ("chi2", Value::Num(p.chi2)),
                                ("p_value", Value::Num(p.p_value)),
                                ("gated", Value::Bool(p.gated)),
                                ("passed", Value::Bool(p.passed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("passed", Value::Bool(self.passed)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_obs::json::parse;

    fn sample_report() -> SbcReport {
        SbcReport {
            master_seed: 42,
            reps: 4,
            bins: 2,
            alpha: 0.001,
            inject_bias: 0.0,
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 10,
                samples: 20,
                thin: 1,
                seed: 0,
            },
            grid: GridSpec::default(),
            cells: vec![CellReport {
                prior: "poisson".into(),
                model: "model0".into(),
                cell_id: 0,
                reps: 4,
                failures: 0,
                num_ranks: 40,
                n_ranks: vec![3, 17, 29, 38],
                params: vec![ParamCalibration {
                    name: "n".into(),
                    histogram: vec![2, 2],
                    chi2: 0.0,
                    p_value: 1.0,
                    gated: true,
                    passed: true,
                }],
                passed: true,
            }],
        }
    }

    #[test]
    fn report_serializes_to_parseable_json() {
        let report = sample_report();
        let text = report.to_value().to_json_pretty();
        let doc = parse(&text).unwrap();
        assert_eq!(
            doc.get("sbc_schema_version").and_then(Value::as_f64),
            Some(SBC_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("all_passed"), Some(&Value::Bool(true)));
        let cells = doc.get("cells").and_then(Value::as_arr).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(
            cells[0]
                .get("n_ranks")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(4)
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        let report = sample_report();
        assert_eq!(
            report.to_value().to_json_pretty(),
            report.to_value().to_json_pretty()
        );
    }

    #[test]
    fn summary_table_marks_failures() {
        let mut report = sample_report();
        assert!(report.summary_table().contains("pass"));
        if let Some(cell) = report.cells.first_mut() {
            cell.passed = false;
        }
        let table = report.summary_table();
        assert!(table.contains("FAIL"));
        assert!(table.contains("overall: FAIL"));
    }
}
