//! Grid-order independence: running any permutation or subset of the
//! SBC grid yields bit-identical per-cell ranks — the observable
//! proof that `split_stream` isolates every (cell, rep) pair from the
//! rest of the battery.

use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::runner::McmcConfig;
use srm_model::DetectionModel;
use srm_obs::NOOP;
use srm_sbc::{run_sbc, CellReport, GridSpec, SbcConfig};

fn base_config(models: Vec<DetectionModel>, priors: Vec<PriorSpec>) -> SbcConfig {
    SbcConfig {
        grid: GridSpec {
            days: 10,
            priors,
            models,
            lambda_max: 40.0,
            alpha_max: 8.0,
            bins: 4,
            alpha: 0.001,
            ..GridSpec::default()
        },
        reps: 3,
        mcmc: McmcConfig {
            chains: 2,
            burn_in: 40,
            samples: 40,
            thin: 1,
            seed: 777,
        },
        threads: 0,
        inject_bias: 0.0,
    }
}

fn run(models: Vec<DetectionModel>, priors: Vec<PriorSpec>) -> Vec<CellReport> {
    run_sbc(&base_config(models, priors), &NOOP)
        .unwrap_or_else(|e| panic!("battery failed: {e}"))
        .cells
}

fn assert_same_cell(a: &CellReport, b: &CellReport) {
    assert_eq!(a.cell_id, b.cell_id);
    assert_eq!(a.n_ranks, b.n_ranks, "cell {} ranks drifted", a.cell_id);
    assert_eq!(a.failures, b.failures);
    for (pa, pb) in a.params.iter().zip(&b.params) {
        assert_eq!(pa.name, pb.name);
        assert_eq!(pa.histogram, pb.histogram);
        assert!(pa.chi2.to_bits() == pb.chi2.to_bits());
        assert!(pa.p_value.to_bits() == pb.p_value.to_bits());
    }
}

#[test]
fn permuted_grid_reproduces_every_cell_bit_identically() {
    let poisson = PriorSpec::Poisson { lambda_max: 40.0 };
    let negbinom = PriorSpec::NegBinomial { alpha_max: 8.0 };
    let forward = run(
        vec![DetectionModel::Constant, DetectionModel::Pareto],
        vec![poisson, negbinom],
    );
    let reversed = run(
        vec![DetectionModel::Pareto, DetectionModel::Constant],
        vec![negbinom, poisson],
    );
    assert_eq!(forward.len(), 4);
    assert_eq!(reversed.len(), 4);
    for cell in &forward {
        let twin = reversed
            .iter()
            .find(|c| c.cell_id == cell.cell_id)
            .unwrap_or_else(|| panic!("cell {} missing from permuted run", cell.cell_id));
        assert_same_cell(cell, twin);
    }
}

#[test]
fn subset_grid_reproduces_the_full_grid_cells_bit_identically() {
    let poisson = PriorSpec::Poisson { lambda_max: 40.0 };
    let negbinom = PriorSpec::NegBinomial { alpha_max: 8.0 };
    let full = run(
        vec![DetectionModel::Constant, DetectionModel::Weibull],
        vec![poisson, negbinom],
    );
    // One single-cell run per cell of the full grid: each must match
    // its twin from the joint run exactly.
    for (model, prior) in [
        (DetectionModel::Constant, poisson),
        (DetectionModel::Weibull, poisson),
        (DetectionModel::Constant, negbinom),
        (DetectionModel::Weibull, negbinom),
    ] {
        let solo = run(vec![model], vec![prior]);
        assert_eq!(solo.len(), 1);
        let twin = full
            .iter()
            .find(|c| c.cell_id == solo[0].cell_id)
            .unwrap_or_else(|| panic!("cell {} missing from full run", solo[0].cell_id));
        assert_same_cell(&solo[0], twin);
    }
}

#[test]
fn reruns_are_byte_identical_and_seed_sensitive() {
    let config = base_config(
        vec![DetectionModel::LogLogistic],
        vec![PriorSpec::Poisson { lambda_max: 40.0 }],
    );
    let a = run_sbc(&config, &NOOP).unwrap_or_else(|e| panic!("battery failed: {e}"));
    let b = run_sbc(&config, &NOOP).unwrap_or_else(|e| panic!("battery failed: {e}"));
    assert_eq!(
        a.to_value().to_json_pretty(),
        b.to_value().to_json_pretty(),
        "same seed must reproduce byte-identical reports"
    );

    let mut shifted = config;
    shifted.mcmc.seed = 778;
    let c = run_sbc(&shifted, &NOOP).unwrap_or_else(|e| panic!("battery failed: {e}"));
    assert_ne!(
        a.cells[0].n_ranks, c.cells[0].n_ranks,
        "a different master seed must change the ranks"
    );
}
