//! Deviance information criterion (secondary check alongside WAIC).
//!
//! `DIC = D(θ̂) + 2 p_D` with `D(θ) = −2 ln L(θ)` and
//! `p_D = D̄ − D(θ̂)`. The classic plug-in `θ̄` (posterior means) is
//! pathological here: the `(N, ζ)` posterior is ridge-shaped, so the
//! vector of marginal means can sit *off* the ridge and make `p_D`
//! negative. We therefore plug in the highest-likelihood draw in the
//! sample (a posterior-mode estimate), which keeps `p_D ≥ 0` by
//! construction.

use srm_mcmc::runner::McmcOutput;
use srm_model::{DetectionModel, GroupedLikelihood};

/// The finalised DIC decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dic {
    /// Plug-in deviance `D(θ̂)` at the highest-likelihood draw.
    pub deviance_at_plugin: f64,
    /// Posterior mean deviance `D̄`.
    pub mean_deviance: f64,
    /// Effective number of parameters `p_D = D̄ − D(θ̂) ≥ 0`.
    pub p_d: f64,
}

impl Dic {
    /// The criterion value `D(θ̂) + 2 p_D = 2 D̄ − D(θ̂)`.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.deviance_at_plugin + 2.0 * self.p_d
    }
}

/// Computes DIC from a finished multi-chain run.
///
/// # Panics
///
/// Panics if the output lacks the `n` column or the `ζ` columns for
/// `model`.
#[must_use]
pub fn dic_from_output(
    output: &McmcOutput,
    model: DetectionModel,
    data: &srm_data::BugCountData,
) -> Dic {
    let lik = GroupedLikelihood::new(data);
    let horizon = data.len();

    let n_draws = output.pooled("n");
    assert!(!n_draws.is_empty(), "output has no `n` draws");
    let zeta_names = model.param_names();
    let zeta_draws: Vec<Vec<f64>> = zeta_names
        .iter()
        .map(|name| {
            let d = output.pooled(name);
            assert!(!d.is_empty(), "output missing parameter `{name}`");
            d
        })
        .collect();

    // One pass: accumulate the mean deviance and track the
    // highest-likelihood draw as the plug-in point.
    let mut total = 0.0;
    let mut best = f64::INFINITY;
    let draws = n_draws.len();
    let mut zeta = vec![0.0; zeta_names.len()];
    for idx in 0..draws {
        for (slot, column) in zeta.iter_mut().zip(&zeta_draws) {
            *slot = column[idx];
        }
        let probs = match model.probs(&zeta, horizon) {
            Ok(p) => p,
            Err(e) => panic!("DIC replay hit an out-of-domain draw: {e:?}"),
        };
        let deviance = -2.0 * lik.ln_likelihood(n_draws[idx] as u64, &probs);
        total += deviance;
        best = best.min(deviance);
    }
    let mean_deviance = total / draws as f64;

    Dic {
        deviance_at_plugin: best,
        mean_deviance,
        p_d: mean_deviance - best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;
    use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
    use srm_mcmc::runner::{run_chains, McmcConfig};
    use srm_model::ZetaBounds;

    fn run(model: DetectionModel, seed: u64) -> (McmcOutput, srm_data::BugCountData) {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            model,
            ZetaBounds::default(),
            &data,
        );
        (run_chains(&sampler, &McmcConfig::smoke(seed)), data)
    }

    #[test]
    fn dic_components_are_coherent() {
        let (output, data) = run(DetectionModel::Constant, 31);
        let dic = dic_from_output(&output, DetectionModel::Constant, &data);
        assert!(dic.deviance_at_plugin.is_finite());
        assert!(dic.mean_deviance >= dic.deviance_at_plugin, "{dic:?}");
        assert!(dic.p_d >= 0.0, "p_D = {}", dic.p_d);
        assert!((dic.value() - (2.0 * dic.mean_deviance - dic.deviance_at_plugin)).abs() < 1e-9);
    }

    #[test]
    fn dic_prefers_model1_over_model3() {
        let (out1, data) = run(DetectionModel::PadgettSpurrier, 32);
        let dic1 = dic_from_output(&out1, DetectionModel::PadgettSpurrier, &data);
        let (out3, data3) = run(DetectionModel::Pareto, 33);
        let dic3 = dic_from_output(&out3, DetectionModel::Pareto, &data3);
        assert!(
            dic1.value() < dic3.value(),
            "model1 {} vs model3 {}",
            dic1.value(),
            dic3.value()
        );
    }
}
