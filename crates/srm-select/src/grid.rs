//! Hyper-parameter grid search minimising WAIC.
//!
//! The paper tunes the uniform hyper-prior upper limits
//! (`λ_max`, `α_max`, `θ_max`) "so as to minimise WAIC". This module
//! runs the Gibbs sampler for every candidate combination (in
//! parallel across grid cells) and returns the winner with the full
//! score table.

use crate::waic::{waic_for, Waic};
use srm_data::BugCountData;
use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
use srm_mcmc::runner::McmcConfig;
use srm_model::{DetectionModel, ZetaBounds};

/// One evaluated grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Candidate prior limit (`λ_max` or `α_max`).
    pub prior_limit: f64,
    /// Candidate `θ_max` (also bounds model2's `γ` symmetric range).
    pub theta_max: f64,
    /// The WAIC obtained with these limits.
    pub waic: Waic,
}

/// The grid-search outcome: the winning cell plus the whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// Best (minimum total-WAIC) cell.
    pub best: GridCell,
    /// All evaluated cells, in grid order.
    pub cells: Vec<GridCell>,
}

/// Grid-search configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearch {
    /// Candidate values for the prior limit (`λ_max` for the Poisson
    /// prior, `α_max` for the NB prior).
    pub prior_limits: Vec<f64>,
    /// Candidate values for `θ_max` (ignored for models without a
    /// second bounded-above parameter — the grid collapses to the
    /// first value).
    pub theta_maxes: Vec<f64>,
    /// MCMC run length per cell (short smoke runs are customary —
    /// WAIC differences across limits are coarse).
    pub mcmc: McmcConfig,
}

impl GridSearch {
    /// The default paper-style candidate grid.
    #[must_use]
    pub fn paper_default(seed: u64) -> Self {
        Self {
            prior_limits: vec![500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0],
            theta_maxes: vec![1.0, 10.0, 100.0],
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 500,
                samples: 1_000,
                thin: 1,
                seed,
            },
        }
    }

    /// Whether `model` has a `θ`-like bounded parameter, i.e. whether
    /// the `θ_max` axis matters.
    fn theta_axis_active(model: DetectionModel) -> bool {
        matches!(
            model,
            DetectionModel::PadgettSpurrier | DetectionModel::LogLogistic
        )
    }

    /// Runs the search for one (prior family, detection model, data)
    /// combination. Cells are evaluated on parallel threads.
    ///
    /// # Panics
    ///
    /// Panics if either candidate list is empty.
    #[must_use]
    pub fn run(
        &self,
        poisson_prior: bool,
        model: DetectionModel,
        data: &BugCountData,
    ) -> GridSearchResult {
        assert!(!self.prior_limits.is_empty(), "empty prior-limit grid");
        assert!(!self.theta_maxes.is_empty(), "empty theta grid");
        let thetas: &[f64] = if Self::theta_axis_active(model) {
            &self.theta_maxes
        } else {
            &self.theta_maxes[..1]
        };
        let mut combos: Vec<(f64, f64)> = Vec::new();
        for &limit in &self.prior_limits {
            for &theta in thetas {
                combos.push((limit, theta));
            }
        }

        let mut cells: Vec<Option<GridCell>> = vec![None; combos.len()];
        std::thread::scope(|scope| {
            for (slot, &(limit, theta_max)) in cells.iter_mut().zip(&combos) {
                let mcmc = self.mcmc;
                scope.spawn(move || {
                    let prior = if poisson_prior {
                        PriorSpec::Poisson { lambda_max: limit }
                    } else {
                        PriorSpec::NegBinomial { alpha_max: limit }
                    };
                    let bounds = ZetaBounds {
                        theta_max,
                        gamma_max: theta_max.max(1.0),
                    };
                    let sampler = GibbsSampler::new(prior, model, bounds, data);
                    let waic = waic_for(&sampler, &mcmc);
                    *slot = Some(GridCell {
                        prior_limit: limit,
                        theta_max,
                        waic,
                    });
                });
            }
        });

        let cells: Vec<GridCell> = cells.into_iter().flatten().collect();
        // The grid always has at least one cell; the fallback index
        // is unreachable.
        let best = cells
            .iter()
            .min_by(|a, b| a.waic.total().total_cmp(&b.waic.total()))
            .unwrap_or_else(|| unreachable!())
            .clone();
        GridSearchResult { best, cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;

    fn tiny_grid(seed: u64) -> GridSearch {
        GridSearch {
            prior_limits: vec![500.0, 3_000.0],
            theta_maxes: vec![1.0, 20.0],
            mcmc: McmcConfig {
                chains: 1,
                burn_in: 150,
                samples: 300,
                thin: 1,
                seed,
            },
        }
    }

    #[test]
    fn grid_collapses_theta_axis_for_one_parameter_models() {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let r = tiny_grid(41).run(true, DetectionModel::Constant, &data);
        assert_eq!(r.cells.len(), 2); // θ axis inert for model0
        let r = tiny_grid(42).run(true, DetectionModel::PadgettSpurrier, &data);
        assert_eq!(r.cells.len(), 4);
    }

    #[test]
    fn best_cell_is_argmin() {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let r = tiny_grid(43).run(false, DetectionModel::Constant, &data);
        let min = r
            .cells
            .iter()
            .map(|c| c.waic.total())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(r.best.waic.total(), min);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let a = tiny_grid(44).run(true, DetectionModel::Constant, &data);
        let b = tiny_grid(44).run(true, DetectionModel::Constant, &data);
        assert_eq!(a, b);
    }
}
