//! Model selection for the Bayesian discrete-time SRMs.
//!
//! The paper's §4: AIC/BIC are invalid for the Bayesian fits (no
//! maximum-likelihood estimate exists under the hierarchical priors),
//! so the widely applicable information criterion (WAIC, Watanabe
//! 2010) drives both the detection-model ranking (Table I) and the
//! choice of the hyper-prior limits `λ_max`, `α_max`, `θ_max`.
//!
//! * [`waic`] — streaming WAIC accumulation over MCMC draws
//!   (Eqs. (23)–(25));
//! * [`dic`] — the deviance information criterion, as a secondary
//!   check;
//! * [`grid`] — hyper-parameter grid search minimising WAIC.
//!
//! # Examples
//!
//! ```
//! use srm_data::datasets;
//! use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
//! use srm_mcmc::runner::McmcConfig;
//! use srm_model::{DetectionModel, ZetaBounds};
//! use srm_select::waic::waic_for;
//!
//! let data = datasets::musa_cc96().truncated(48).unwrap();
//! let sampler = GibbsSampler::new(
//!     PriorSpec::Poisson { lambda_max: 1000.0 },
//!     DetectionModel::Constant,
//!     ZetaBounds::default(),
//!     &data,
//! );
//! let waic = waic_for(&sampler, &McmcConfig::smoke(1));
//! assert!(waic.total().is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dic;
pub mod grid;
pub mod loo;
pub mod waic;

pub use grid::{GridSearch, GridSearchResult};
pub use loo::{loo_for, Loo, LooAccumulator};
pub use waic::{waic_for, waic_for_traced, Waic, WaicAccumulator};
