//! Importance-sampling leave-one-out cross-validation.
//!
//! WAIC is asymptotically equivalent to Bayesian LOO-CV (Watanabe
//! 2010 — the very paper the SRM study cites); this module computes
//! the IS-LOO estimate directly from the same posterior draws so the
//! equivalence can be checked empirically:
//!
//! ```text
//! elpd_loo,i = ln ( 1 / mean_ω[ 1 / p(x_i | ω) ] )
//! ```
//!
//! Raw importance ratios `1/p(x_i|ω)` can have infinite variance;
//! we stabilise them by truncation at `√S · mean` (Ionides 2008),
//! the standard pre-PSIS remedy.

use srm_mcmc::gibbs::{GibbsSampler, SweepRecord};
use srm_mcmc::runner::{run_chains_observed, McmcConfig};
use srm_model::GroupedLikelihood;

/// Streaming IS-LOO accumulator over posterior draws.
///
/// Memory is O(observations × draws) for the log-ratio buffers (the
/// truncation point depends on the whole sample, so ratios cannot be
/// reduced online).
#[derive(Debug, Clone)]
pub struct LooAccumulator {
    lik: GroupedLikelihood,
    /// `ln p(x_i | ω)` per observation per draw.
    log_terms: Vec<Vec<f64>>,
}

impl LooAccumulator {
    /// Creates an accumulator for the given data window.
    #[must_use]
    pub fn new(data: &srm_data::BugCountData) -> Self {
        let lik = GroupedLikelihood::new(data);
        let k = lik.horizon();
        Self {
            lik,
            log_terms: vec![Vec::new(); k],
        }
    }

    /// Feeds one posterior draw.
    pub fn add_draw(&mut self, n: u64, probs: &[f64]) {
        for day in 1..=self.lik.horizon() {
            self.log_terms[day - 1].push(self.lik.ln_pointwise(n, probs, day));
        }
    }

    /// Observer form for the MCMC runner.
    pub fn observe(&mut self, record: &SweepRecord<'_>) {
        self.add_draw(record.n, record.probs);
    }

    /// Number of draws consumed.
    #[must_use]
    pub fn draws(&self) -> usize {
        self.log_terms.first().map_or(0, Vec::len)
    }

    /// Finalises the estimate.
    ///
    /// # Panics
    ///
    /// Panics when no draws were fed.
    #[must_use]
    pub fn finish(&self) -> Loo {
        let draws = self.draws();
        assert!(draws > 0, "LOO requires at least one draw");
        let sqrt_s = (draws as f64).sqrt();
        let mut elpd = 0.0;
        let mut pointwise = Vec::with_capacity(self.log_terms.len());
        for terms in &self.log_terms {
            // Log importance ratios are −ln p; truncate at
            // ln(mean ratio) + ln √S in log space.
            let log_ratios: Vec<f64> = terms.iter().map(|&lp| -lp).collect();
            let log_mean_ratio = srm_math::log_mean_exp(&log_ratios);
            let cap = log_mean_ratio + sqrt_s.ln();
            let truncated: Vec<f64> = log_ratios.iter().map(|&lr| lr.min(cap)).collect();
            let elpd_i = -srm_math::log_mean_exp(&truncated);
            pointwise.push(elpd_i);
            elpd += elpd_i;
        }
        Loo { elpd, pointwise }
    }
}

/// The finalised IS-LOO estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Loo {
    /// Estimated expected log pointwise predictive density,
    /// `Σ_i elpd_loo,i`.
    pub elpd: f64,
    /// The per-observation contributions.
    pub pointwise: Vec<f64>,
}

impl Loo {
    /// On the paper's Table I scale (`−elpd`, comparable to
    /// [`crate::waic::Waic::total`]).
    #[must_use]
    pub fn information_criterion(&self) -> f64 {
        -self.elpd
    }
}

/// Runs the sampler with a LOO observer and returns the estimate.
#[must_use]
pub fn loo_for(sampler: &GibbsSampler, config: &McmcConfig) -> Loo {
    // The sampler can only be built from non-empty data.
    let data = srm_data::BugCountData::new(sampler.likelihood().counts().to_vec())
        .unwrap_or_else(|_| unreachable!());
    let mut acc = LooAccumulator::new(&data);
    let _ = run_chains_observed(sampler, config, &mut |rec| acc.observe(rec));
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waic::waic_for;
    use srm_data::datasets;
    use srm_mcmc::gibbs::PriorSpec;
    use srm_model::{DetectionModel, ZetaBounds};

    fn sampler(model: DetectionModel) -> (GibbsSampler, srm_data::BugCountData) {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        (
            GibbsSampler::new(
                PriorSpec::Poisson {
                    lambda_max: 2_000.0,
                },
                model,
                ZetaBounds::default(),
                &data,
            ),
            data,
        )
    }

    #[test]
    fn loo_close_to_waic() {
        // Watanabe's asymptotic equivalence: the two criteria should
        // be close on the same draws (not identical at finite S).
        let (s, _) = sampler(DetectionModel::Constant);
        let config = McmcConfig::smoke(71);
        let waic = waic_for(&s, &config);
        let loo = loo_for(&s, &config);
        let rel = (loo.information_criterion() - waic.total()).abs() / waic.total();
        assert!(
            rel < 0.1,
            "LOO {} vs WAIC {} (rel {rel})",
            loo.information_criterion(),
            waic.total()
        );
    }

    #[test]
    fn loo_ranks_model1_over_model3() {
        let config = McmcConfig::smoke(72);
        let (s1, _) = sampler(DetectionModel::PadgettSpurrier);
        let (s3, _) = sampler(DetectionModel::Pareto);
        let l1 = loo_for(&s1, &config);
        let l3 = loo_for(&s3, &config);
        assert!(
            l1.information_criterion() < l3.information_criterion(),
            "model1 {} vs model3 {}",
            l1.information_criterion(),
            l3.information_criterion()
        );
    }

    #[test]
    fn pointwise_sums_to_total() {
        let (s, _) = sampler(DetectionModel::Constant);
        let loo = loo_for(&s, &McmcConfig::smoke(73));
        let sum: f64 = loo.pointwise.iter().sum();
        assert!((sum - loo.elpd).abs() < 1e-9);
        assert_eq!(loo.pointwise.len(), 48);
    }

    #[test]
    #[should_panic(expected = "at least one draw")]
    fn empty_accumulator_panics() {
        let data = datasets::musa_cc96().truncated(5).unwrap();
        let _ = LooAccumulator::new(&data).finish();
    }

    #[test]
    fn truncation_bounds_ratios() {
        // A draw with absurdly low pointwise density would dominate
        // the raw harmonic mean; truncation must keep the estimate
        // finite and reasonable.
        let data = datasets::musa_cc96().truncated(10).unwrap();
        let mut acc = LooAccumulator::new(&data);
        let good = vec![0.05; 10];
        for _ in 0..100 {
            acc.add_draw(200, &good);
        }
        // One pathological draw: tiny detection probability makes the
        // observed counts nearly impossible.
        acc.add_draw(200, &[1e-9; 10]);
        let loo = acc.finish();
        assert!(loo.elpd.is_finite());
    }
}
