//! WAIC (Eqs. (23)–(25)) computed by streaming over MCMC draws.
//!
//! The pointwise model probability is the binomial factor of Eq. (1),
//! `p(x_i | ω) = Binom(x_i; N − s_{i−1}, p_i)`, evaluated at each
//! posterior draw `ω = (N, ζ)`. Two accumulators run per observation:
//! a streaming log-sum-exp for `ln Ê_ω[p(x_i | ω)]` (learning loss)
//! and Welford moments of `ln p(x_i | ω)` (functional variance).
//!
//! Scaling note: Eq. (23) defines `WAIC = T_k + V_k/k` with the
//! *average* learning loss `T_k`. The values in the paper's Table I
//! grow with `k` and are consistent with the *total* scale
//! `k·T_k + V_k`; [`Waic::total`] reports that (what our Table I
//! regenerator prints) and [`Waic::per_observation`] reports the
//! literal Eq. (23).

use srm_math::accum::RunningMoments;
use srm_math::logsumexp::StreamingLogSumExp;
use srm_mcmc::gibbs::{GibbsSampler, SweepRecord};
use srm_mcmc::runner::{
    run_chains_fault_tolerant_traced, run_chains_observed, McmcConfig, McmcOutput, RunOptions,
};
use srm_mcmc::SrmError;
use srm_model::GroupedLikelihood;
use srm_obs::{Event, Recorder, Span};

/// Streaming WAIC accumulator over posterior draws.
#[derive(Debug, Clone)]
pub struct WaicAccumulator {
    lik: GroupedLikelihood,
    predictive: Vec<StreamingLogSumExp>,
    log_terms: Vec<RunningMoments>,
}

impl WaicAccumulator {
    /// Creates an accumulator for the given data window.
    #[must_use]
    pub fn new(data: &srm_data::BugCountData) -> Self {
        let lik = GroupedLikelihood::new(data);
        let k = lik.horizon();
        Self {
            lik,
            predictive: vec![StreamingLogSumExp::new(); k],
            log_terms: vec![RunningMoments::new(); k],
        }
    }

    /// Feeds one posterior draw: the current `N` and detection
    /// schedule.
    pub fn add_draw(&mut self, n: u64, probs: &[f64]) {
        for day in 1..=self.lik.horizon() {
            let ln_p = self.lik.ln_pointwise(n, probs, day);
            self.predictive[day - 1].add(ln_p);
            // A −inf pointwise term would put zero predictive mass on
            // observed data; it cannot arise from valid sampler states
            // (N ≥ s_k) but is clamped defensively for the variance.
            self.log_terms[day - 1].push(ln_p.max(-1e300));
        }
    }

    /// Feeds one [`SweepRecord`] (the observer form used with the
    /// MCMC runner).
    pub fn observe(&mut self, record: &SweepRecord<'_>) {
        self.add_draw(record.n, record.probs);
    }

    /// Number of draws consumed.
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.predictive.first().map_or(0, StreamingLogSumExp::count)
    }

    /// Finalises the criterion.
    ///
    /// # Panics
    ///
    /// Panics when no draws were fed.
    #[must_use]
    pub fn finish(&self) -> Waic {
        assert!(self.draws() > 0, "WAIC requires at least one draw");
        let k = self.lik.horizon() as f64;
        let mut learning_loss_total = 0.0; // Σ −ln Ê[p(x_i)]
        let mut functional_variance = 0.0; // Σ Var[ln p(x_i)]
        let mut lppd = 0.0;
        let mut pointwise = Vec::with_capacity(self.lik.horizon());
        for (pred, moments) in self.predictive.iter().zip(&self.log_terms) {
            let ln_mean = pred.log_mean();
            learning_loss_total -= ln_mean;
            lppd += ln_mean;
            let var_i = moments.population_variance();
            functional_variance += var_i;
            // Per-observation contribution on the total scale:
            // −ln Ê[p(x_i)] + Var[ln p(x_i)].
            pointwise.push(-ln_mean + var_i);
        }
        Waic {
            learning_loss: learning_loss_total / k,
            functional_variance,
            observations: self.lik.horizon(),
            lppd,
            pointwise,
        }
    }
}

/// The finalised WAIC decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Waic {
    /// `T_k`: average learning loss (Eq. (24)).
    pub learning_loss: f64,
    /// `V_k`: total functional variance (Eq. (25)).
    pub functional_variance: f64,
    /// Number of observations `k`.
    pub observations: usize,
    /// Log pointwise predictive density `Σ ln Ê[p(x_i)]` (Gelman's
    /// `lppd`, for cross-checks).
    pub lppd: f64,
    /// Per-observation contributions on the total scale
    /// (`Σ pointwise = total()`), used for the standard error.
    pub pointwise: Vec<f64>,
}

impl Waic {
    /// The literal Eq. (23): `T_k + V_k / k`.
    #[must_use]
    pub fn per_observation(&self) -> f64 {
        self.learning_loss + self.functional_variance / self.observations as f64
    }

    /// The table scale: `k·T_k + V_k` (matches the magnitudes of the
    /// paper's Table I).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.observations as f64 * self.per_observation()
    }

    /// The effective number of parameters in Gelman's convention
    /// (`p_waic = V_k`).
    #[must_use]
    pub fn p_waic(&self) -> f64 {
        self.functional_variance
    }

    /// Standard error of [`Waic::total`] over observations
    /// (`√(k · Var(pointwise))`, Vehtari–Gelman–Gabry convention):
    /// WAIC differences smaller than a couple of SEs are noise.
    #[must_use]
    pub fn se(&self) -> f64 {
        let k = self.pointwise.len() as f64;
        if k < 2.0 {
            return 0.0;
        }
        let mean = self.pointwise.iter().sum::<f64>() / k;
        let var = self
            .pointwise
            .iter()
            .map(|v| (v - mean).powi(2))
            .sum::<f64>()
            / (k - 1.0);
        (k * var).sqrt()
    }
}

/// Runs the sampler with a WAIC observer and returns the criterion
/// (chains run serially so the observer sees every kept draw).
#[must_use]
pub fn waic_for(sampler: &GibbsSampler, config: &McmcConfig) -> Waic {
    waic_and_chains(sampler, config).0
}

/// [`waic_for`] with instrumentation: wraps the evaluation in a
/// `waic` phase span and emits an [`Event::Waic`] when the recorder
/// is enabled. The criterion itself is bit-identical to the untraced
/// path — the recorder never touches the sampler's RNG.
#[must_use]
pub fn waic_for_traced(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    recorder: &dyn Recorder,
) -> Waic {
    let span = Span::enter(recorder, "waic");
    let (waic, output) = {
        let _profile = srm_obs::profile::span("waic");
        waic_and_chains(sampler, config)
    };
    span.end();
    emit_waic(sampler, &waic, draws_in(&output), recorder);
    waic
}

/// [`waic_from_output`] with instrumentation: wraps the replay in a
/// `waic` phase span and emits an [`Event::Waic`] on success.
///
/// # Errors
///
/// Propagates the same errors as [`waic_from_output`].
pub fn waic_from_output_traced(
    sampler: &GibbsSampler,
    output: &McmcOutput,
    recorder: &dyn Recorder,
) -> Result<Waic, SrmError> {
    let span = Span::enter(recorder, "waic");
    let result = {
        let _profile = srm_obs::profile::span("waic");
        waic_from_output(sampler, output)
    };
    span.end();
    if let Ok(waic) = &result {
        emit_waic(sampler, waic, draws_in(output), recorder);
    }
    result
}

/// Runs the chains across the parallel worker pool and computes WAIC
/// by replaying the merged output.
///
/// For a fault-free run this is bit-identical to [`waic_for`] /
/// [`waic_for_traced`]: the parallel runner merges the same per-chain
/// draws in chain order, and the replay recomputes each draw's
/// detection schedule deterministically from its stored `ζ`, feeding
/// the accumulator in the same order as the streaming observer.
///
/// # Errors
///
/// Returns the runner's error when every chain is lost, and the
/// replay errors of [`waic_from_output`].
pub fn waic_parallel_traced(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    options: &RunOptions,
    recorder: &dyn Recorder,
) -> Result<Waic, SrmError> {
    let run = run_chains_fault_tolerant_traced(sampler, config, options, recorder)?;
    waic_from_output_traced(sampler, &run.output, recorder)
}

fn draws_in(output: &McmcOutput) -> usize {
    output
        .chains
        .iter()
        .map(|c| c.draws("n").map_or(0, <[f64]>::len))
        .sum()
}

fn emit_waic(sampler: &GibbsSampler, waic: &Waic, draws: usize, recorder: &dyn Recorder) {
    if recorder.enabled() {
        recorder.record(&Event::Waic {
            model: sampler.model().name().to_owned(),
            total: waic.total(),
            p_waic: waic.p_waic(),
            draws,
        });
    }
}

/// Runs the sampler once, returning both WAIC and the chains — the
/// experiment pipeline needs both without paying for two runs.
#[must_use]
pub fn waic_and_chains(sampler: &GibbsSampler, config: &McmcConfig) -> (Waic, McmcOutput) {
    let data = reconstruct_data(sampler);
    let mut acc = WaicAccumulator::new(&data);
    let output = run_chains_observed(sampler, config, &mut |rec| acc.observe(rec));
    (acc.finish(), output)
}

/// Replays recorded chains through a fresh WAIC accumulator,
/// recomputing each draw's detection schedule from its stored `ζ`.
///
/// Because the schedule is a deterministic function of `ζ`, the result
/// is bit-identical to the streaming observer over the same chains —
/// which lets the fault-tolerant pipeline compute WAIC from whatever
/// chains survived a degraded run.
///
/// # Errors
///
/// Returns [`SrmError::MissingParameter`] when a chain lacks `n` or a
/// detection parameter, [`SrmError::DegeneratePosterior`] when a
/// stored `ζ` is outside the model's domain, and
/// [`SrmError::InvalidConfig`] when `output` holds no draws at all.
pub fn waic_from_output(sampler: &GibbsSampler, output: &McmcOutput) -> Result<Waic, SrmError> {
    let data = reconstruct_data(sampler);
    let mut acc = WaicAccumulator::new(&data);
    let model = sampler.model();
    let zeta_names = model.param_names();
    let horizon = data.len();
    let mut zeta = vec![0.0; zeta_names.len()];
    for (ci, chain) in output.chains.iter().enumerate() {
        let n_draws = chain.draws("n").ok_or_else(|| SrmError::MissingParameter {
            parameter: "n".into(),
            chain: ci,
        })?;
        let zeta_cols: Vec<&[f64]> = zeta_names
            .iter()
            .map(|nm| {
                chain.draws(nm).ok_or_else(|| SrmError::MissingParameter {
                    parameter: (*nm).to_owned(),
                    chain: ci,
                })
            })
            .collect::<Result<_, _>>()?;
        for t in 0..n_draws.len() {
            for (j, col) in zeta_cols.iter().enumerate() {
                zeta[j] = col[t];
            }
            let probs = model
                .probs(&zeta, horizon)
                .map_err(|e| SrmError::DegeneratePosterior {
                    detail: format!("replayed zeta outside model domain: {e:?}"),
                    sweep: t,
                })?;
            acc.add_draw(n_draws[t] as u64, &probs);
        }
    }
    if acc.draws() == 0 {
        return Err(SrmError::InvalidConfig {
            detail: "WAIC replay over empty output".into(),
        });
    }
    Ok(acc.finish())
}

/// The sampler holds its data only through the likelihood evaluator;
/// rebuild an equivalent `BugCountData` for the accumulator.
fn reconstruct_data(sampler: &GibbsSampler) -> srm_data::BugCountData {
    // The sampler can only be built from non-empty data.
    srm_data::BugCountData::new(sampler.likelihood().counts().to_vec())
        .unwrap_or_else(|_| unreachable!())
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;
    use srm_mcmc::gibbs::PriorSpec;
    use srm_model::{DetectionModel, ZetaBounds};

    fn smoke_waic(prior: PriorSpec, model: DetectionModel, day: usize, seed: u64) -> Waic {
        let data = datasets::musa_cc96().truncated(day).unwrap();
        let sampler = GibbsSampler::new(prior, model, ZetaBounds::default(), &data);
        waic_for(&sampler, &McmcConfig::smoke(seed))
    }

    #[test]
    fn accumulator_counts_draws() {
        let data = datasets::musa_cc96().truncated(10).unwrap();
        let mut acc = WaicAccumulator::new(&data);
        let probs = vec![0.05; 10];
        acc.add_draw(200, &probs);
        acc.add_draw(210, &probs);
        assert_eq!(acc.draws(), 2);
        let waic = acc.finish();
        assert_eq!(waic.observations, 10);
        assert!(waic.total().is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one draw")]
    fn empty_accumulator_panics() {
        let data = datasets::musa_cc96().truncated(5).unwrap();
        let _ = WaicAccumulator::new(&data).finish();
    }

    #[test]
    fn single_parameter_draw_has_zero_variance() {
        // Identical draws ⇒ functional variance 0, learning loss =
        // −(1/k) Σ ln p(x_i | ω).
        let data = datasets::musa_cc96().truncated(10).unwrap();
        let mut acc = WaicAccumulator::new(&data);
        let probs = vec![0.05; 10];
        for _ in 0..50 {
            acc.add_draw(200, &probs);
        }
        let waic = acc.finish();
        assert!(waic.functional_variance.abs() < 1e-18);
        let lik = GroupedLikelihood::new(&data);
        let direct: f64 = lik.ln_pointwise_all(200, &probs).iter().sum();
        assert!((waic.lppd - direct).abs() < 1e-9);
        assert!((waic.total() + direct).abs() < 1e-9);
    }

    #[test]
    fn table_scale_consistency() {
        let w = Waic {
            learning_loss: 3.5,
            functional_variance: 12.0,
            observations: 48,
            lppd: -168.0,
            pointwise: vec![3.75; 48],
        };
        assert!((w.per_observation() - (3.5 + 0.25)).abs() < 1e-12);
        assert!((w.total() - 48.0 * 3.75).abs() < 1e-12);
        assert_eq!(w.p_waic(), 12.0);
        // Identical pointwise terms ⇒ zero standard error.
        assert_eq!(w.se(), 0.0);
    }

    #[test]
    fn pointwise_sums_to_total_and_se_positive() {
        let data = datasets::musa_cc96().truncated(20).unwrap();
        let mut acc = WaicAccumulator::new(&data);
        let probs = vec![0.05; 20];
        for n in 0..200u64 {
            acc.add_draw(150 + (n % 60), &probs);
        }
        let w = acc.finish();
        let sum: f64 = w.pointwise.iter().sum();
        assert!((sum - w.total()).abs() < 1e-9, "{sum} vs {}", w.total());
        assert!(w.se() > 0.0);
    }

    #[test]
    fn waic_magnitude_matches_paper_order() {
        // Table I reports ~170 for 48 days. The absolute level scales
        // with the dispersion of the daily counts (our synthetic
        // stand-in is smoother than the real Musa dailies), so assert
        // the same order of magnitude — tens to a few hundred nats —
        // rather than the exact level.
        let w = smoke_waic(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Constant,
            48,
            11,
        );
        let total = w.total();
        assert!(
            (20.0..400.0).contains(&total),
            "WAIC total = {total} out of expected band"
        );
        // Per-observation loss must be a small positive number of nats.
        let per = w.per_observation();
        assert!((0.2..8.0).contains(&per), "per-obs = {per}");
    }

    #[test]
    fn parallel_waic_is_bit_identical_to_streaming() {
        let data = datasets::musa_cc96().truncated(20).unwrap();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        let config = McmcConfig {
            chains: 3,
            burn_in: 80,
            samples: 120,
            thin: 1,
            seed: 707,
        };
        let serial = waic_for(&sampler, &config);
        for threads in [1usize, 4] {
            let parallel = waic_parallel_traced(
                &sampler,
                &config,
                &RunOptions::with_threads(threads),
                &srm_obs::NOOP,
            )
            .unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn model1_beats_model3_on_musa_data() {
        // The paper's central ranking: the Padgett–Spurrier model
        // dominates the Pareto model at every observation point.
        let w1 = smoke_waic(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::PadgettSpurrier,
            48,
            21,
        );
        let w3 = smoke_waic(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Pareto,
            48,
            22,
        );
        assert!(
            w1.total() < w3.total(),
            "model1 {} should beat model3 {}",
            w1.total(),
            w3.total()
        );
    }
}
