//! Structured JSONL access log: one line per HTTP request.
//!
//! Each line is an [`Event::Access`] payload — trace id, method,
//! path, status, response bytes, cache-hit flag, and the
//! queue-wait/engine/serialize time breakdown from the span profiler
//! — so the file lints with `srm trace lint --strict` and stitches
//! into job traces via `srm trace grep --trace-id`.
//!
//! Rotation is by size: when the file would exceed the configured
//! cap, it is renamed to `<path>.1` (replacing any previous rotation)
//! and a fresh file is started. Write or rotation failures follow the
//! WAL degradation policy (DESIGN.md §13): bump an error counter,
//! note the failure on stderr, keep serving — the access log is an
//! observation of the service, never a dependency of it.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use srm_obs::json::Value;
use srm_obs::{Counter, Event};

/// Default rotation threshold: 64 MiB.
pub const DEFAULT_ACCESS_LOG_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// Counters for `/metrics` and `/v1/debug/store`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessLogStats {
    /// Lines appended successfully.
    pub lines: u64,
    /// Appends or rotations that failed (degraded, service continued).
    pub errors: u64,
    /// Completed size-triggered rotations.
    pub rotations: u64,
}

/// An append-only JSONL access log with size rotation.
#[derive(Debug)]
pub struct AccessLog {
    path: PathBuf,
    max_bytes: u64,
    started: Instant,
    lines: Counter,
    errors: Counter,
    rotations: Counter,
}

impl AccessLog {
    /// An access log appending to `path`, rotating once the file
    /// reaches `max_bytes`. The file is created lazily on first
    /// write, so constructing a log never fails.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, max_bytes: u64) -> Self {
        Self {
            path: path.into(),
            max_bytes: max_bytes.max(1),
            started: Instant::now(),
            lines: Counter::new(),
            errors: Counter::new(),
            rotations: Counter::new(),
        }
    }

    /// Where lines are written.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> AccessLogStats {
        AccessLogStats {
            lines: self.lines.get(),
            errors: self.errors.get(),
            rotations: self.rotations.get(),
        }
    }

    /// Appends one request line under `trace_id`. Infallible by
    /// contract: failures degrade to a counted error (the accept loop
    /// must never die because the log disk did).
    pub fn log(&self, trace_id: &str, event: &Event) {
        let mut value = event.to_value();
        if let Value::Obj(pairs) = &mut value {
            pairs.insert(1, ("trace_id".to_owned(), Value::Str(trace_id.to_owned())));
            pairs.insert(
                2,
                (
                    "ms".to_owned(),
                    Value::Num(self.started.elapsed().as_secs_f64() * 1e3),
                ),
            );
        }
        let line = value.to_json();
        if let Err(e) = self.append(&line) {
            self.errors.incr();
            eprintln!(
                "access-log degraded: {} ({e}); continuing without this line",
                self.path.display()
            );
        } else {
            self.lines.incr();
        }
    }

    fn append(&self, line: &str) -> std::io::Result<()> {
        let size = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if size > 0 && size + line.len() as u64 + 1 > self.max_bytes {
            std::fs::rename(&self.path, self.path.with_extension("jsonl.1"))?;
            self.rotations.incr();
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(file, "{line}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_obs::json::parse;

    fn access_event(status: u16) -> Event {
        Event::Access {
            method: "GET".into(),
            path: "/healthz".into(),
            status,
            bytes: 120,
            cache_hit: false,
            queue_wait_ms: 0.0,
            engine_ms: 0.0,
            serialize_ms: 0.1,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srm_accesslog_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lines_carry_trace_id_ms_and_required_fields() {
        let dir = temp_dir("lines");
        let log = AccessLog::new(dir.join("access.jsonl"), DEFAULT_ACCESS_LOG_MAX_BYTES);
        log.log("cafe", &access_event(200));
        log.log("f00d", &access_event(404));
        assert_eq!(log.stats().lines, 2);
        assert_eq!(log.stats().errors, 0);
        let text = std::fs::read_to_string(log.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = parse(lines[0]).unwrap();
        assert_eq!(first.get("type").and_then(Value::as_str), Some("access"));
        assert_eq!(first.get("trace_id").and_then(Value::as_str), Some("cafe"));
        assert!(first.get("ms").and_then(Value::as_f64).unwrap() >= 0.0);
        for field in srm_obs::required_fields("access").unwrap() {
            assert!(first.get(field).is_some(), "missing {field}");
        }
        assert_eq!(
            parse(lines[1])
                .unwrap()
                .get("status")
                .and_then(Value::as_f64),
            Some(404.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_renames_the_full_file_and_starts_fresh() {
        let dir = temp_dir("rotate");
        // A cap small enough that every line triggers rotation.
        let log = AccessLog::new(dir.join("access.jsonl"), 64);
        for _ in 0..3 {
            log.log("beef", &access_event(200));
        }
        assert!(log.stats().rotations >= 1, "{:?}", log.stats());
        assert_eq!(log.stats().errors, 0);
        let rotated = dir.join("access.jsonl.1");
        assert!(rotated.exists());
        // Both generations still parse line-by-line.
        for path in [log.path().to_path_buf(), rotated] {
            for line in std::fs::read_to_string(&path).unwrap().lines() {
                assert!(parse(line).is_ok(), "{line}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_target_degrades_to_a_counted_error() {
        let dir = temp_dir("degrade");
        // A path whose parent is a file: open() fails for any user,
        // including root (chmod-based read-only checks do not).
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let log = AccessLog::new(blocker.join("access.jsonl"), DEFAULT_ACCESS_LOG_MAX_BYTES);
        log.log("dead", &access_event(200));
        log.log("dead", &access_event(200));
        assert_eq!(log.stats().errors, 2);
        assert_eq!(log.stats().lines, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
