//! Multi-dataset batches over the job queue: `POST /v1/batches`
//! fans one shared fit specification out into N ordinary jobs.
//!
//! A batch is deliberately *not* a new execution engine on the
//! service — every item becomes a regular job that flows through the
//! same submit path, fit cache, worker pool, WAL, and result store as
//! `POST /v1/jobs`. That buys the batch contract for free:
//!
//! * **Byte-identical results** — item `i`'s result document is the
//!   one an individual `POST /v1/jobs` with the item's derived seed
//!   would produce, because it *is* that job.
//! * **Batch-aware caching** — items whose cache key matches an
//!   earlier item of the same batch alias that item's job (fit once
//!   per distinct dataset); items already in the fit cache are served
//!   without sampling. Both count toward
//!   [`BatchRecord::cache_hits`].
//! * **Durability** — item jobs persist through the existing WAL
//!   ops; only the batch registry (id → member jobs) needs its own
//!   `batch` op and snapshot section.
//!
//! Per-item seeds are derived with [`srm_batch::item_seed`] — the
//! same content-keyed split the CLI batch executor uses — so a batch
//! item, a `srm fit --batch` item, and a hand-submitted job with the
//! reported seed all sample the identical posterior.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use srm_obs::json::Value;

use crate::job::JobSpec;

/// Hard cap on items per batch: bounds parse-time memory and keeps
/// one request from monopolising the job store.
pub const MAX_BATCH_ITEMS: usize = 256;

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One batch item's registry entry: which job computes it.
#[derive(Debug, Clone)]
pub struct BatchItemRef {
    /// Item label (from the request, or `item-N`).
    pub label: String,
    /// The job computing (or having computed) this item. Aliased
    /// items share a job id with an earlier item.
    pub job_id: String,
    /// The content-keyed seed derived for this item.
    pub seed: u64,
    /// Whether the item was served without fresh sampling at submit
    /// time (in-batch alias or fit-cache hit).
    pub cached: bool,
}

/// One batch's registry record.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Batch id (`batch-N`).
    pub id: String,
    /// The master seed items were split from.
    pub master_seed: u64,
    /// Member items, in submission order.
    pub items: Vec<BatchItemRef>,
    /// Items served without fresh sampling at submit time.
    pub cache_hits: u64,
    /// Jobs of this batch not yet terminal (distinct jobs, so an
    /// aliased duplicate never counts twice).
    pub remaining: usize,
    /// When the batch was registered (this process lifetime; restarts
    /// reset it, so recovered batches report wall time since boot).
    pub submitted: Instant,
}

impl BatchRecord {
    /// Serialises the record for the WAL and snapshots. `remaining`
    /// and `submitted` are runtime state — recovery recomputes them
    /// from the job store.
    #[must_use]
    pub fn to_wire(&self) -> Value {
        Value::obj(vec![
            ("id", Value::Str(self.id.clone())),
            ("master_seed", Value::Num(self.master_seed as f64)),
            (
                "items",
                Value::Arr(
                    self.items
                        .iter()
                        .map(|item| {
                            Value::obj(vec![
                                ("label", Value::Str(item.label.clone())),
                                ("job", Value::Str(item.job_id.clone())),
                                ("seed", Value::Num(item.seed as f64)),
                                ("cached", Value::Bool(item.cached)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cache_hits", Value::Num(self.cache_hits as f64)),
        ])
    }

    /// Rebuilds a record from its wire form. `remaining` comes back
    /// as 0 — the server recomputes it against the recovered job
    /// store at boot.
    #[must_use]
    pub fn from_wire(wire: &Value) -> Option<Self> {
        let id = wire.get("id")?.as_str()?.to_owned();
        let master_seed = wire.get("master_seed")?.as_f64()? as u64;
        let mut items = Vec::new();
        for entry in wire.get("items")?.as_arr()? {
            items.push(BatchItemRef {
                label: entry.get("label")?.as_str()?.to_owned(),
                job_id: entry.get("job")?.as_str()?.to_owned(),
                seed: entry.get("seed")?.as_f64()? as u64,
                cached: matches!(entry.get("cached"), Some(Value::Bool(true))),
            });
        }
        let cache_hits = wire
            .get("cache_hits")
            .and_then(Value::as_f64)
            .unwrap_or(0.0) as u64;
        Some(Self {
            id,
            master_seed,
            items,
            cache_hits,
            remaining: 0,
            submitted: Instant::now(),
        })
    }
}

/// A batch's progress after one job of it reached a terminal state.
#[derive(Debug, Clone)]
pub struct BatchProgress {
    /// The batch the job belongs to.
    pub batch_id: String,
    /// Item indices computed by that job (aliases share a job).
    pub item_indices: Vec<usize>,
    /// Distinct jobs of the batch still not terminal.
    pub remaining: usize,
    /// Wall-clock ms since the batch was registered.
    pub wall_ms: f64,
}

/// Numeric suffix of a `batch-N` id.
fn batch_number(id: &str) -> u64 {
    id.rsplit('-')
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// Thread-safe registry of batches plus the reverse index from job
/// ids to the batches awaiting them.
#[derive(Debug, Default)]
pub struct BatchStore {
    inner: Mutex<BatchInner>,
    next_id: AtomicU64,
}

#[derive(Debug, Default)]
struct BatchInner {
    records: HashMap<String, BatchRecord>,
    /// job id → batch ids still waiting on it.
    waiting: HashMap<String, Vec<String>>,
}

impl BatchStore {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next batch id (`batch-1`, `batch-2`, …).
    pub fn allocate_id(&self) -> String {
        format!("batch-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Fast-forwards the id counter past recovered ids.
    pub fn set_next_id(&self, next: u64) {
        self.next_id
            .fetch_max(next.saturating_sub(1), Ordering::Relaxed);
    }

    /// The number the next allocation will issue.
    #[must_use]
    pub fn next_batch_number(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed) + 1
    }

    /// Registers a batch. `pending_jobs` are the distinct job ids the
    /// batch is still waiting on (its `remaining` count); terminal
    /// (cache-served) jobs must be excluded by the caller.
    pub fn insert(&self, mut record: BatchRecord, pending_jobs: &[String]) {
        self.set_next_id(batch_number(&record.id) + 1);
        record.remaining = pending_jobs.len();
        let mut inner = lock_ignoring_poison(&self.inner);
        for job in pending_jobs {
            inner
                .waiting
                .entry(job.clone())
                .or_default()
                .push(record.id.clone());
        }
        inner.records.insert(record.id.clone(), record);
    }

    /// Snapshot of one batch.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<BatchRecord> {
        lock_ignoring_poison(&self.inner).records.get(id).cloned()
    }

    /// Every record, in ascending batch order — the snapshot feed.
    #[must_use]
    pub fn all_records(&self) -> Vec<BatchRecord> {
        let mut records: Vec<BatchRecord> = lock_ignoring_poison(&self.inner)
            .records
            .values()
            .cloned()
            .collect();
        records.sort_by_key(|r| batch_number(&r.id));
        records
    }

    /// Number of batches with at least one job still pending.
    #[must_use]
    pub fn active(&self) -> u64 {
        lock_ignoring_poison(&self.inner)
            .records
            .values()
            .filter(|r| r.remaining > 0)
            .count() as u64
    }

    /// Records that `job_id` reached a terminal state, decrementing
    /// `remaining` on every batch waiting for it. Returns one
    /// [`BatchProgress`] per affected batch so the caller can emit
    /// `batch-item-done` / `batch-done` events.
    pub fn note_terminal(&self, job_id: &str) -> Vec<BatchProgress> {
        let mut inner = lock_ignoring_poison(&self.inner);
        let Some(batch_ids) = inner.waiting.remove(job_id) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(batch_ids.len());
        for batch_id in batch_ids {
            if let Some(record) = inner.records.get_mut(&batch_id) {
                record.remaining = record.remaining.saturating_sub(1);
                out.push(BatchProgress {
                    batch_id: batch_id.clone(),
                    item_indices: record
                        .items
                        .iter()
                        .enumerate()
                        .filter(|(_, item)| item.job_id == job_id)
                        .map(|(i, _)| i)
                        .collect(),
                    remaining: record.remaining,
                    wall_ms: record.submitted.elapsed().as_secs_f64() * 1_000.0,
                });
            }
        }
        out
    }
}

/// A parsed `POST /v1/batches` body: the master seed plus one fully
/// validated [`JobSpec`] per item, each already carrying its derived
/// content-keyed seed.
#[derive(Debug)]
pub struct BatchRequest {
    /// The master seed (the shared spec's `seed` field).
    pub master_seed: u64,
    /// `(label, spec)` per item, in request order.
    pub items: Vec<(String, JobSpec)>,
}

/// Parses and validates a batch submission.
///
/// The body is a regular job body (shared fields: `model`, `prior`,
/// `chains`, `seed` = master seed, …) plus an `items` array; each
/// item supplies its data (`dataset`/`counts`/`truncate`) and an
/// optional `label`, and may override any shared field except `seed`
/// — seeds are always derived from the master seed and the item's
/// data so that batch results are reproducible one item at a time.
///
/// # Errors
///
/// Returns a user-facing message when `items` is missing, empty, or
/// over [`MAX_BATCH_ITEMS`], and propagates per-item validation
/// errors prefixed with the item's position.
pub fn parse_batch(body: &Value) -> Result<BatchRequest, String> {
    let Some(shared) = body.as_obj() else {
        return Err("batch body must be a JSON object".into());
    };
    let items = body
        .get("items")
        .ok_or("missing field `items` (array of datasets)")?
        .as_arr()
        .ok_or("field `items` must be an array")?;
    if items.is_empty() {
        return Err("field `items` must not be empty".into());
    }
    if items.len() > MAX_BATCH_ITEMS {
        return Err(format!(
            "too many items: {} (max {MAX_BATCH_ITEMS})",
            items.len()
        ));
    }

    let mut out = Vec::with_capacity(items.len());
    let mut master_seed = None;
    for (index, item) in items.iter().enumerate() {
        let Some(overrides) = item.as_obj() else {
            return Err(format!("items[{index}] must be a JSON object"));
        };
        // Item fields override shared fields; `items` itself and any
        // attempt to pin a per-item seed are dropped (seeds are
        // derived, never client-chosen, so the batch stays
        // reproducible from the master seed alone).
        let mut merged: Vec<(&str, Value)> = shared
            .iter()
            .filter(|(k, _)| {
                k != "items"
                    && k != "label"
                    && (k == "seed" || !overrides.iter().any(|(ok, _)| ok == k))
            })
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        merged.extend(
            overrides
                .iter()
                .filter(|(k, _)| k != "label" && k != "seed")
                .map(|(k, v)| (k.as_str(), v.clone())),
        );
        // Item data fields replace the shared data source entirely:
        // an item with inline `counts` must not clash with a shared
        // `dataset` default.
        let item_has_data = overrides
            .iter()
            .any(|(k, _)| k == "dataset" || k == "counts");
        if item_has_data {
            merged.retain(|(k, v)| {
                let shared_data = (*k == "dataset" || *k == "counts" || *k == "truncate")
                    && !overrides.iter().any(|(ok, ov)| ok == k && ov == v);
                !shared_data
            });
        }
        // Batches fan a *fit* spec out by default; an explicit shared
        // or per-item `kind` still wins.
        if !merged.iter().any(|(k, _)| *k == "kind") {
            merged.push(("kind", Value::Str("fit".to_owned())));
        }
        let merged = Value::obj(merged);
        let mut spec = JobSpec::from_json(&merged).map_err(|e| format!("items[{index}]: {e}"))?;
        // The shared `seed` is the master; the item's own seed is
        // derived from it and the item's data content.
        let master = *master_seed.get_or_insert(spec.mcmc.seed);
        spec.mcmc.seed = srm_batch::item_seed(master, &spec.data);
        let label = overrides
            .iter()
            .find(|(k, _)| k == "label")
            .and_then(|(_, v)| v.as_str())
            .map_or_else(|| format!("item-{index}"), ToOwned::to_owned);
        out.push((label, spec));
    }
    Ok(BatchRequest {
        master_seed: master_seed.unwrap_or(2_024),
        items: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_obs::json::parse;

    fn record(id: &str, jobs: &[(&str, &str)]) -> BatchRecord {
        BatchRecord {
            id: id.to_owned(),
            master_seed: 42,
            items: jobs
                .iter()
                .map(|(label, job)| BatchItemRef {
                    label: (*label).to_owned(),
                    job_id: (*job).to_owned(),
                    seed: 7,
                    cached: false,
                })
                .collect(),
            cache_hits: 0,
            remaining: 0,
            submitted: Instant::now(),
        }
    }

    #[test]
    fn ids_are_sequential_and_recovery_fast_forwards() {
        let store = BatchStore::new();
        assert_eq!(store.allocate_id(), "batch-1");
        store.insert(record("batch-7", &[]), &[]);
        assert_eq!(store.allocate_id(), "batch-8");
    }

    #[test]
    fn note_terminal_tracks_remaining_and_aliases() {
        let store = BatchStore::new();
        store.insert(
            record(
                "batch-1",
                &[("a", "job-1"), ("twin", "job-1"), ("b", "job-2")],
            ),
            &["job-1".to_owned(), "job-2".to_owned()],
        );
        assert_eq!(store.active(), 1);
        let progress = store.note_terminal("job-1");
        assert_eq!(progress.len(), 1);
        assert_eq!(progress[0].item_indices, vec![0, 1]);
        assert_eq!(progress[0].remaining, 1);
        assert_eq!(store.active(), 1);
        let progress = store.note_terminal("job-2");
        assert_eq!(progress[0].remaining, 0);
        assert_eq!(store.active(), 0);
        assert!(store.note_terminal("job-2").is_empty());
    }

    #[test]
    fn wire_round_trip_preserves_items() {
        let mut original = record("batch-3", &[("a", "job-1"), ("b", "job-4")]);
        original.cache_hits = 1;
        original.items[1].cached = true;
        let back = BatchRecord::from_wire(&original.to_wire()).unwrap();
        assert_eq!(back.id, original.id);
        assert_eq!(back.master_seed, original.master_seed);
        assert_eq!(back.cache_hits, 1);
        assert_eq!(back.items.len(), 2);
        assert_eq!(back.items[1].job_id, "job-4");
        assert!(back.items[1].cached);
    }

    #[test]
    fn parse_batch_derives_content_keyed_seeds() {
        let body = parse(
            r#"{"model":"model0","chains":1,"samples":100,"burn_in":40,"seed":42,
                "items":[{"label":"a","counts":[3,1,0,2]},
                         {"label":"twin","counts":[3,1,0,2]},
                         {"label":"b","counts":[1,1,4]}]}"#,
        )
        .unwrap();
        let request = parse_batch(&body).unwrap();
        assert_eq!(request.master_seed, 42);
        assert_eq!(request.items.len(), 3);
        let seeds: Vec<u64> = request.items.iter().map(|(_, s)| s.mcmc.seed).collect();
        assert_eq!(seeds[0], seeds[1], "identical data, identical seed");
        assert_ne!(seeds[0], seeds[2]);
        assert_eq!(seeds[0], srm_batch::item_seed(42, &request.items[0].1.data));
        assert_eq!(request.items[0].0, "a");
        assert_eq!(
            request.items[0].1.cache_key(),
            request.items[1].1.cache_key()
        );
    }

    #[test]
    fn parse_batch_rejects_bad_shapes() {
        let missing = parse(r#"{"model":"model0"}"#).unwrap();
        assert!(parse_batch(&missing).unwrap_err().contains("items"));
        let empty = parse(r#"{"items":[]}"#).unwrap();
        assert!(parse_batch(&empty).unwrap_err().contains("empty"));
        let bad_item = parse(r#"{"items":[{"label":"x"}]}"#).unwrap();
        assert!(parse_batch(&bad_item).unwrap_err().contains("items[0]"));
    }

    #[test]
    fn item_fields_override_shared_fields_but_never_seed() {
        let body = parse(
            r#"{"model":"model0","chains":2,"seed":9,"dataset":"musa_cc96",
                "items":[{"label":"x","counts":[1,2,3],"chains":1,"seed":555}]}"#,
        )
        .unwrap();
        let request = parse_batch(&body).unwrap();
        let (_, spec) = &request.items[0];
        assert_eq!(spec.mcmc.chains, 1, "item override wins");
        assert_eq!(spec.dataset_label, "inline", "item data replaces shared");
        assert_eq!(
            spec.mcmc.seed,
            srm_batch::item_seed(9, &spec.data),
            "client-pinned per-item seeds are ignored"
        );
    }
}
