//! The content-addressed fit cache.
//!
//! Results are keyed by [`crate::job::JobSpec::cache_key`] — an
//! FNV-1a digest over everything that determines the posterior
//! bit-for-bit: dataset hash, model, prior (family and limits), MCMC
//! shape, seed, and the kind-specific knobs (horizon, θ_max). Worker
//! thread count is deliberately *excluded*: the engine produces
//! bit-identical draws for any thread count, so one entry serves all
//! parallelism levels. A hit returns the stored result document
//! unchanged, so repeated identical jobs are served without
//! re-sampling.

use std::collections::HashMap;
use std::sync::Mutex;

use srm_obs::json::Value;
use srm_obs::Counter;

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An in-memory result cache with hit/miss counters.
#[derive(Debug, Default)]
pub struct FitCache {
    entries: Mutex<HashMap<String, Value>>,
    hits: Counter,
    misses: Counter,
}

impl FitCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a result, recording a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<Value> {
        let found = lock_ignoring_poison(&self.entries).get(key).cloned();
        if found.is_some() {
            self.hits.incr();
        } else {
            self.misses.incr();
        }
        found
    }

    /// Stores a completed job's result under its cache key.
    pub fn insert(&self, key: &str, result: Value) {
        lock_ignoring_poison(&self.entries).insert(key.to_owned(), result);
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Number of stored results.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.entries).len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = FitCache::new();
        assert!(cache.lookup("k").is_none());
        cache.insert("k", Value::Num(1.0));
        assert_eq!(cache.lookup("k"), Some(Value::Num(1.0)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_overwrites() {
        let cache = FitCache::new();
        cache.insert("k", Value::Num(1.0));
        cache.insert("k", Value::Num(2.0));
        assert_eq!(cache.lookup("k"), Some(Value::Num(2.0)));
        assert_eq!(cache.len(), 1);
    }
}
