//! The content-addressed fit cache.
//!
//! Results are keyed by [`crate::job::JobSpec::cache_key`] — an
//! FNV-1a digest over everything that determines the posterior
//! bit-for-bit: dataset hash, model, prior (family and limits), MCMC
//! shape, seed, and the kind-specific knobs (horizon, θ_max). Worker
//! thread count is deliberately *excluded*: the engine produces
//! bit-identical draws for any thread count, so one entry serves all
//! parallelism levels. A hit returns the stored result document
//! unchanged, so repeated identical jobs are served without
//! re-sampling.
//!
//! The cache is bounded: beyond its capacity the oldest-inserted
//! entry is evicted (FIFO), so a long-running server's memory stays
//! capped at `capacity` result documents.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use srm_obs::json::Value;
use srm_obs::Counter;

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Default number of result documents retained.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<String, Value>,
    /// Keys in insertion order; the front is the eviction candidate.
    order: VecDeque<String>,
}

/// A bounded in-memory result cache with hit/miss counters.
#[derive(Debug)]
pub struct FitCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
}

impl Default for FitCache {
    fn default() -> Self {
        Self::new()
    }
}

impl FitCache {
    /// An empty cache with [`DEFAULT_CACHE_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache holding at most `capacity` results.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Looks up a result, recording a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<Value> {
        let found = lock_ignoring_poison(&self.inner).entries.get(key).cloned();
        if found.is_some() {
            self.hits.incr();
        } else {
            self.misses.incr();
        }
        found
    }

    /// Stores a completed job's result under its cache key, evicting
    /// the oldest entry when the cache is at capacity.
    pub fn insert(&self, key: &str, result: Value) {
        let mut inner = lock_ignoring_poison(&self.inner);
        if inner.entries.insert(key.to_owned(), result).is_some() {
            return; // overwrite keeps the original insertion order
        }
        inner.order.push_back(key.to_owned());
        while inner.entries.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            inner.entries.remove(&oldest);
        }
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Number of stored results.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.inner).entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = FitCache::new();
        assert!(cache.lookup("k").is_none());
        cache.insert("k", Value::Num(1.0));
        assert_eq!(cache.lookup("k"), Some(Value::Num(1.0)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_overwrites() {
        let cache = FitCache::new();
        cache.insert("k", Value::Num(1.0));
        cache.insert("k", Value::Num(2.0));
        assert_eq!(cache.lookup("k"), Some(Value::Num(2.0)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_oldest_entry_beyond_capacity() {
        let cache = FitCache::with_capacity(2);
        cache.insert("a", Value::Num(1.0));
        cache.insert("b", Value::Num(2.0));
        cache.insert("c", Value::Num(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a").is_none());
        assert_eq!(cache.lookup("b"), Some(Value::Num(2.0)));
        assert_eq!(cache.lookup("c"), Some(Value::Num(3.0)));
        // Overwriting does not grow the cache or change the order.
        cache.insert("b", Value::Num(9.0));
        cache.insert("d", Value::Num(4.0));
        assert!(cache.lookup("b").is_none());
        assert_eq!(cache.lookup("d"), Some(Value::Num(4.0)));
    }
}
