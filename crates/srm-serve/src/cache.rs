//! The content-addressed fit cache.
//!
//! Results are keyed by [`crate::job::JobSpec::cache_key`] — an
//! FNV-1a digest over everything that determines the posterior
//! bit-for-bit: dataset hash, model, prior (family and limits), MCMC
//! shape, seed, and the kind-specific knobs (horizon, θ_max). Worker
//! thread count is deliberately *excluded*: the engine produces
//! bit-identical draws for any thread count, so one entry serves all
//! parallelism levels. A hit returns the stored result document
//! unchanged, so repeated identical jobs are served without
//! re-sampling.
//!
//! The cache is hash-sharded (shard = FNV-1a of the key, modulo `N`)
//! so concurrent lookups don't serialize on one lock, and bounded:
//! each shard holds at most `ceil(capacity / N)` entries and evicts
//! its **least recently used** entry beyond that — a hit refreshes
//! recency, so a hot posterior is never pushed out by a burst of
//! one-off requests. Evictions are counted and exported as
//! `srm_store_evictions_total`.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use srm_obs::json::Value;
use srm_obs::Counter;

use crate::job::DEFAULT_SHARDS;

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Default number of result documents retained.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

#[derive(Debug, Default)]
struct CacheShard {
    entries: HashMap<String, Value>,
    /// Keys ordered by recency; the front is least recently used.
    order: VecDeque<String>,
}

impl CacheShard {
    /// Moves `key` to the most-recently-used position.
    fn touch(&mut self, key: &str) {
        if let Some(at) = self.order.iter().position(|k| k == key) {
            let Some(entry) = self.order.remove(at) else {
                return;
            };
            self.order.push_back(entry);
        }
    }
}

/// A bounded, sharded, in-memory LRU result cache with hit/miss and
/// eviction counters.
#[derive(Debug)]
pub struct FitCache {
    shards: Vec<Mutex<CacheShard>>,
    per_shard_capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl Default for FitCache {
    fn default() -> Self {
        Self::new()
    }
}

impl FitCache {
    /// An empty cache with [`DEFAULT_CACHE_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache holding at most `capacity` results.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_shards(capacity, DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (1 = a single LRU
    /// list with exact global ordering; useful for eviction tests and
    /// contention benchmarks). Total capacity is split evenly, so each
    /// shard keeps at most `ceil(capacity / shards)` entries.
    #[must_use]
    pub fn with_capacity_and_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<CacheShard> {
        let index = srm_store::fnv1a64(key.as_bytes()) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Looks up a result, recording a hit or a miss. A hit refreshes
    /// the entry's recency (LRU).
    pub fn lookup(&self, key: &str) -> Option<Value> {
        let mut shard = lock_ignoring_poison(self.shard(key));
        let found = shard.entries.get(key).cloned();
        if found.is_some() {
            shard.touch(key);
            drop(shard);
            self.hits.incr();
        } else {
            drop(shard);
            self.misses.incr();
        }
        found
    }

    /// Stores a completed job's result under its cache key, evicting
    /// the shard's least recently used entry beyond capacity.
    /// Overwriting an existing key also refreshes its recency.
    pub fn insert(&self, key: &str, result: Value) {
        let mut evicted = 0u64;
        {
            let mut shard = lock_ignoring_poison(self.shard(key));
            if shard.entries.insert(key.to_owned(), result).is_some() {
                shard.touch(key);
            } else {
                shard.order.push_back(key.to_owned());
                while shard.entries.len() > self.per_shard_capacity {
                    let Some(lru) = shard.order.pop_front() else {
                        break;
                    };
                    shard.entries.remove(&lru);
                    evicted += 1;
                }
            }
        }
        for _ in 0..evicted {
            self.evictions.incr();
        }
    }

    /// Every `(key, result)` pair, in shard order then recency order —
    /// the snapshot writer's feed. Recency order within a shard is
    /// preserved so a restored cache evicts in the same order the live
    /// one would have.
    #[must_use]
    pub fn entries(&self) -> Vec<(String, Value)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let shard = lock_ignoring_poison(shard);
            for key in &shard.order {
                if let Some(result) = shard.entries.get(key) {
                    all.push((key.clone(), result.clone()));
                }
            }
        }
        all
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries evicted so far (capacity pressure, not overwrites).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Number of stored results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_ignoring_poison(s).entries.len())
            .sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = FitCache::new();
        assert!(cache.lookup("k").is_none());
        cache.insert("k", Value::Num(1.0));
        assert_eq!(cache.lookup("k"), Some(Value::Num(1.0)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_overwrites() {
        let cache = FitCache::new();
        cache.insert("k", Value::Num(1.0));
        cache.insert("k", Value::Num(2.0));
        assert_eq!(cache.lookup("k"), Some(Value::Num(2.0)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn evicts_least_recently_used_entry_beyond_capacity() {
        // One shard so the LRU order is globally exact.
        let cache = FitCache::with_capacity_and_shards(2, 1);
        cache.insert("a", Value::Num(1.0));
        cache.insert("b", Value::Num(2.0));
        // Touch `a`: it is now more recent than `b`.
        assert_eq!(cache.lookup("a"), Some(Value::Num(1.0)));
        cache.insert("c", Value::Num(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("b").is_none(), "LRU entry should be evicted");
        assert_eq!(cache.lookup("a"), Some(Value::Num(1.0)));
        assert_eq!(cache.lookup("c"), Some(Value::Num(3.0)));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn overwrite_refreshes_recency() {
        let cache = FitCache::with_capacity_and_shards(2, 1);
        cache.insert("a", Value::Num(1.0));
        cache.insert("b", Value::Num(2.0));
        // Overwrite `a`: `b` becomes the LRU entry.
        cache.insert("a", Value::Num(9.0));
        cache.insert("c", Value::Num(3.0));
        assert!(cache.lookup("b").is_none());
        assert_eq!(cache.lookup("a"), Some(Value::Num(9.0)));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn entries_preserve_recency_order_for_snapshots() {
        let cache = FitCache::with_capacity_and_shards(8, 1);
        cache.insert("a", Value::Num(1.0));
        cache.insert("b", Value::Num(2.0));
        cache.insert("c", Value::Num(3.0));
        let _ = cache.lookup("a");
        let keys: Vec<String> = cache.entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["b", "c", "a"]);
    }

    #[test]
    fn sharded_cache_keeps_roughly_capacity_entries() {
        let cache = FitCache::with_capacity_and_shards(16, 4);
        for i in 0..200 {
            cache.insert(&format!("key-{i}"), Value::Num(i as f64));
        }
        // Each of the 4 shards caps at 4 entries.
        assert!(cache.len() <= 16);
        assert!(cache.evictions() >= 184);
    }
}
