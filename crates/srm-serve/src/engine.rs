//! Executes jobs against the estimation pipeline.
//!
//! Each kind maps onto the exact code path its CLI counterpart uses —
//! [`Fit::try_run_traced`] for `fit` and `predict`,
//! [`waic_parallel_traced`] for `select` — with the CLI's default
//! [`RunOptions`] (retry budget 3, no fault injection). That is what
//! makes HTTP results bit-identical to a same-seed command-line run:
//! there is one engine, and the server is just another caller.
//!
//! Timeouts are **cooperative**: the sampler's chain events are
//! buffered and replayed after its thread pool drains, so nothing can
//! observe or interrupt a sweep mid-run (see DESIGN.md §11). The
//! deadline is therefore checked at phase boundaries only — before
//! sampling starts and between the five models of a `select`.

use std::time::Instant;

use srm_core::{predict_from_fit, FaultTolerantFit, Fit, FitConfig};
use srm_mcmc::gibbs::GibbsSampler;
use srm_mcmc::runner::RunOptions;
use srm_mcmc::{PosteriorSummary, RetryPolicy, SrmError};
use srm_model::{DetectionModel, ZetaBounds};
use srm_obs::json::Value;
use srm_obs::{dataset_hash, Recorder, RunManifest};
use srm_select::waic::waic_parallel_traced;

use crate::job::{JobKind, JobSpec};

/// Why a job failed.
#[derive(Debug)]
pub enum JobError {
    /// The cooperative deadline expired at a phase boundary.
    Timeout,
    /// The estimation pipeline reported a typed fault.
    Engine(SrmError),
}

impl JobError {
    /// Kebab-case error kind: the engine's taxonomy plus `timeout`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Timeout => "timeout",
            Self::Engine(e) => e.kind(),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout => f.write_str("job deadline expired before completion"),
            Self::Engine(e) => e.fmt(f),
        }
    }
}

impl From<SrmError> for JobError {
    fn from(e: SrmError) -> Self {
        Self::Engine(e)
    }
}

/// A finished job: the result document plus the manifest skeleton the
/// worker completes from the per-job stats collector.
#[derive(Debug)]
pub struct JobOutput {
    /// The `/v1/results/{id}` document.
    pub result: Value,
    /// Identity-filled manifest (stats fields added by the worker).
    pub manifest: RunManifest,
    /// Posterior draws kept, for the manifest's throughput figure.
    pub kept_draws: u64,
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Runs one job to completion, emitting trace events on `recorder`.
///
/// # Errors
///
/// [`JobError::Timeout`] when the deadline expires at a phase
/// boundary; [`JobError::Engine`] for faults from the pipeline.
pub fn run_job(
    spec: &JobSpec,
    deadline: Option<Instant>,
    recorder: &dyn Recorder,
) -> Result<JobOutput, JobError> {
    if expired(deadline) {
        return Err(JobError::Timeout);
    }
    match spec.kind {
        JobKind::Fit => run_fit(spec, recorder),
        JobKind::Select => run_select(spec, deadline, recorder),
        JobKind::Predict => run_predict(spec, recorder),
    }
}

/// Checkpoint cadence for served jobs: one `diagnostic-checkpoint`
/// per chain every this many sweeps. Streaming accumulators never
/// touch the sampler's RNG, so results stay bit-identical to a
/// checkpoint-free run; 50 keeps the overhead well under the 3%
/// budget measured in `BENCH_mcmc.json` while the progress endpoint
/// still refreshes many times per typical job.
pub const SERVE_CHECKPOINT_EVERY: usize = 50;

fn run_options(spec: &JobSpec) -> RunOptions {
    RunOptions {
        retry: RetryPolicy::default(),
        threads: spec.threads,
        checkpoint_every: SERVE_CHECKPOINT_EVERY,
        // Forward whatever profiler the worker thread has installed
        // (the server's always-on one) so chain threads flush their
        // sweep/likelihood/proposal spans into the same profile.
        profiler: srm_obs::profile::current(),
        ..RunOptions::none()
    }
}

fn manifest_skeleton(spec: &JobSpec, model_label: &str) -> RunManifest {
    RunManifest {
        command: format!("serve:{}", spec.kind.label()),
        trace_id: spec.trace_id.clone(),
        model: model_label.to_owned(),
        prior: spec.prior.label().to_owned(),
        seed: spec.mcmc.seed,
        dataset_hash: dataset_hash(spec.data.counts()),
        chains: spec.mcmc.chains,
        burn_in: spec.mcmc.burn_in,
        samples: spec.mcmc.samples,
        thin: spec.mcmc.thin,
        threads: srm_mcmc::runner::effective_threads(spec.threads, spec.mcmc.chains),
        ..RunManifest::default()
    }
}

fn summary_value(summary: &PosteriorSummary) -> Value {
    Value::obj(vec![
        ("count", Value::Num(summary.count as f64)),
        ("nan_draws", Value::Num(summary.nan_draws as f64)),
        ("mean", Value::Num(summary.mean)),
        ("median", Value::Num(summary.median)),
        ("mode", Value::Num(summary.mode)),
        ("sd", Value::Num(summary.sd)),
        ("min", Value::Num(summary.min)),
        ("max", Value::Num(summary.max)),
        ("q1", Value::Num(summary.q1)),
        ("q3", Value::Num(summary.q3)),
    ])
}

fn identity_pairs(spec: &JobSpec) -> Vec<(&'static str, Value)> {
    vec![
        ("kind", Value::Str(spec.kind.label().to_owned())),
        ("dataset", Value::Str(spec.dataset_label.clone())),
        ("dataset_hash", Value::Str(dataset_hash(spec.data.counts()))),
        ("prior", Value::Str(spec.prior.label().to_owned())),
        ("seed", Value::Num(spec.mcmc.seed as f64)),
    ]
}

fn fit_tolerant(spec: &JobSpec, recorder: &dyn Recorder) -> Result<FaultTolerantFit, SrmError> {
    Fit::try_run_traced(
        spec.prior,
        spec.model,
        &spec.data,
        &FitConfig {
            mcmc: spec.mcmc,
            ..FitConfig::default()
        },
        &run_options(spec),
        recorder,
    )
}

fn fit_value(spec: &JobSpec, tolerant: &FaultTolerantFit) -> Value {
    let fit = &tolerant.fit;
    let (lo, hi) = PosteriorSummary::credible_interval(&fit.residual_draws, 0.05);
    let (hlo, hhi) = PosteriorSummary::hpd_interval(&fit.residual_draws, 0.05);
    let mut pairs = identity_pairs(spec);
    pairs.push(("model", Value::Str(spec.model.name().to_owned())));
    pairs.push(("residual", summary_value(&fit.residual)));
    pairs.push(("ci95", Value::Arr(vec![Value::Num(lo), Value::Num(hi)])));
    pairs.push(("hpd95", Value::Arr(vec![Value::Num(hlo), Value::Num(hhi)])));
    pairs.push((
        "waic",
        Value::obj(vec![
            ("total", Value::Num(fit.waic.total())),
            ("se", Value::Num(fit.waic.se())),
            ("p_waic", Value::Num(fit.waic.p_waic())),
        ]),
    ));
    pairs.push(("converged", Value::Bool(fit.converged())));
    pairs.push(("degraded", Value::Bool(tolerant.is_degraded())));
    pairs.push(("retries", Value::Num(tolerant.total_retries() as f64)));
    pairs.push(("draws", Value::Num(fit.residual_draws.len() as f64)));
    Value::obj(pairs)
}

fn run_fit(spec: &JobSpec, recorder: &dyn Recorder) -> Result<JobOutput, JobError> {
    let tolerant = fit_tolerant(spec, recorder)?;
    let fit = &tolerant.fit;
    let mut manifest = manifest_skeleton(spec, spec.model.name());
    manifest.converged = Some(fit.converged());
    manifest.waic = Some(fit.waic.total());
    let result = {
        let _span = srm_obs::profile::span("serialize");
        fit_value(spec, &tolerant)
    };
    Ok(JobOutput {
        kept_draws: fit.residual_draws.len() as u64,
        result,
        manifest,
    })
}

fn run_select(
    spec: &JobSpec,
    deadline: Option<Instant>,
    recorder: &dyn Recorder,
) -> Result<JobOutput, JobError> {
    let bounds = ZetaBounds {
        theta_max: spec.theta_max,
        gamma_max: spec.theta_max.max(1.0),
    };
    let options = run_options(spec);
    let mut rows = Vec::new();
    let mut best: Option<(DetectionModel, f64)> = None;
    for model in DetectionModel::ALL {
        if expired(deadline) {
            return Err(JobError::Timeout);
        }
        let sampler = GibbsSampler::new(spec.prior, model, bounds, &spec.data);
        let waic = waic_parallel_traced(&sampler, &spec.mcmc, &options, recorder)?;
        if best.is_none_or(|(_, w)| waic.total() < w) {
            best = Some((model, waic.total()));
        }
        rows.push(Value::obj(vec![
            ("model", Value::Str(model.name().to_owned())),
            ("waic", Value::Num(waic.total())),
            ("se", Value::Num(waic.se())),
            ("learning_loss", Value::Num(waic.learning_loss)),
            ("functional_variance", Value::Num(waic.functional_variance)),
        ]));
    }
    // `DetectionModel::ALL` is non-empty, so `best` is always set.
    let (best_model, best_waic) = best.ok_or(SrmError::InvalidConfig {
        detail: "no models to compare".into(),
    })?;
    let result = {
        let _span = srm_obs::profile::span("serialize");
        let mut pairs = identity_pairs(spec);
        pairs.push(("models", Value::Arr(rows)));
        pairs.push(("best_model", Value::Str(best_model.name().to_owned())));
        pairs.push(("best_waic", Value::Num(best_waic)));
        Value::obj(pairs)
    };
    let mut manifest = manifest_skeleton(spec, best_model.name());
    manifest.waic = Some(best_waic);
    Ok(JobOutput {
        result,
        manifest,
        kept_draws: (spec.mcmc.samples * spec.mcmc.chains * DetectionModel::ALL.len()) as u64,
    })
}

fn run_predict(spec: &JobSpec, recorder: &dyn Recorder) -> Result<JobOutput, JobError> {
    let tolerant = fit_tolerant(spec, recorder)?;
    let fit = &tolerant.fit;
    let prediction = predict_from_fit(fit, &spec.data, spec.horizon)?;
    let _serialize_span = srm_obs::profile::span("serialize");
    let mut pairs = identity_pairs(spec);
    pairs.push(("model", Value::Str(spec.model.name().to_owned())));
    pairs.push(("horizon", Value::Num(prediction.horizon as f64)));
    pairs.push((
        "expected_detections",
        Value::Num(prediction.expected_detections),
    ));
    pairs.push((
        "reliability",
        Value::Arr(
            prediction
                .reliability
                .iter()
                .copied()
                .map(Value::Num)
                .collect(),
        ),
    ));
    pairs.push(("residual", summary_value(&fit.residual)));
    let mut manifest = manifest_skeleton(spec, spec.model.name());
    manifest.converged = Some(fit.converged());
    manifest.waic = Some(fit.waic.total());
    Ok(JobOutput {
        kept_draws: fit.residual_draws.len() as u64,
        result: Value::obj(pairs),
        manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_obs::json::parse;
    use srm_obs::NOOP;
    use std::time::Duration;

    fn spec(json: &str) -> JobSpec {
        JobSpec::from_json(&parse(json).unwrap()).unwrap()
    }

    const SMALL_FIT: &str = r#"{"kind":"fit","dataset":"musa_cc96","truncate":48,
        "model":"model0","chains":2,"samples":200,"burn_in":80,"seed":5}"#;

    #[test]
    fn fit_job_matches_direct_fit_bit_for_bit() {
        let s = spec(SMALL_FIT);
        let out = run_job(&s, None, &NOOP).unwrap();
        let direct = Fit::try_run(
            s.prior,
            s.model,
            &s.data,
            &FitConfig {
                mcmc: s.mcmc,
                ..FitConfig::default()
            },
            &RunOptions {
                retry: RetryPolicy::default(),
                ..RunOptions::none()
            },
        )
        .unwrap();
        let mean = out
            .result
            .get("residual")
            .unwrap()
            .get("mean")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(mean.to_bits(), direct.fit.residual.mean.to_bits());
        let waic = out.result.get("waic").unwrap().get("total").unwrap();
        assert_eq!(
            waic.as_f64().unwrap().to_bits(),
            direct.fit.waic.total().to_bits()
        );
        assert_eq!(out.kept_draws, 400);
        assert_eq!(out.manifest.command, "serve:fit");
    }

    #[test]
    fn expired_deadline_is_a_timeout() {
        let s = spec(SMALL_FIT);
        let deadline = Some(Instant::now() - Duration::from_millis(1));
        let err = run_job(&s, deadline, &NOOP).unwrap_err();
        assert!(matches!(err, JobError::Timeout));
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn select_job_ranks_all_models() {
        let s = spec(
            r#"{"kind":"select","dataset":"musa_cc96","truncate":48,
                "chains":1,"samples":150,"burn_in":60,"seed":3}"#,
        );
        let out = run_job(&s, None, &NOOP).unwrap();
        let models = out.result.get("models").unwrap().as_arr().unwrap();
        assert_eq!(models.len(), 5);
        let best = out.result.get("best_model").unwrap().as_str().unwrap();
        assert!(models
            .iter()
            .any(|m| m.get("model").unwrap().as_str() == Some(best)));
    }

    #[test]
    fn predict_job_reports_reliability_curve() {
        let s = spec(
            r#"{"kind":"predict","dataset":"musa_cc96","truncate":48,"model":"model0",
                "chains":1,"samples":200,"burn_in":80,"horizon":10}"#,
        );
        let out = run_job(&s, None, &NOOP).unwrap();
        let curve = out.result.get("reliability").unwrap().as_arr().unwrap();
        assert_eq!(curve.len(), 10);
        assert!(out.result.get("expected_detections").unwrap().as_f64() >= Some(0.0));
    }
}
