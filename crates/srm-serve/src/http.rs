//! A minimal HTTP/1.1 request reader and response writer.
//!
//! The service speaks just enough HTTP for its JSON API: one request
//! per connection (`Connection: close`), bounded header and body
//! sizes, and a `Content-Length`-framed body. Anything fancier
//! (keep-alive, chunked encoding, TLS) is out of scope — clients are
//! `curl`, CI scripts, and the integration tests.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use srm_obs::json::Value;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the request body.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, `DELETE`, …), uppercased.
    pub method: String,
    /// Request path, without query string.
    pub path: String,
    /// Headers as `(lowercased-name, trimmed-value)` pairs, in wire
    /// order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given name (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from the stream.
///
/// # Errors
///
/// Returns an [`io::Error`] on malformed framing, oversized head or
/// body, or transport failures.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Read byte-wise until the blank line; requests are tiny and the
    // stream is already buffered by the kernel.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        head.push(byte[0]);
    }
    let head_text = String::from_utf8_lossy(&head);
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, value: &Value) -> Self {
        Self {
            status,
            body: value.to_json(),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error response `{"error": {"kind", "message"}}`.
    #[must_use]
    pub fn error(status: u16, kind: &str, message: &str) -> Self {
        Self::json(
            status,
            &Value::obj(vec![(
                "error",
                Value::obj(vec![
                    ("kind", Value::Str(kind.to_owned())),
                    ("message", Value::Str(message.to_owned())),
                ]),
            )]),
        )
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serialises and writes the response.
    ///
    /// # Errors
    ///
    /// Returns transport errors from the underlying stream.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            round_trip(b"POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn headers_are_lowercased_and_looked_up_case_insensitively() {
        let req =
            round_trip(b"GET /healthz HTTP/1.1\r\nX-Srm-Trace-Id:  ABC123 \r\nHost: h\r\n\r\n")
                .unwrap();
        assert_eq!(req.header("x-srm-trace-id"), Some("ABC123"));
        assert_eq!(req.header("X-SRM-TRACE-ID"), Some("ABC123"));
        assert_eq!(req.header("absent"), None);
        assert_eq!(req.headers[0].0, "x-srm-trace-id");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_bad_content_length() {
        let err = round_trip(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_carries_headers_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        Response::text(429, "slow down")
            .with_header("Retry-After", "1")
            .write_to(&mut server_side)
            .unwrap();
        drop(server_side);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("slow down"));
    }
}
