//! Job specifications, lifecycle states, and the in-memory job store.
//!
//! A job is one estimation request — `fit`, `select`, or `predict` —
//! parsed from the `POST /v1/jobs` JSON body into a [`JobSpec`]. The
//! spec's [`cache_key`](JobSpec::cache_key) is the content address
//! used by the fit cache: FNV-1a over every field that determines the
//! posterior bit-for-bit (dataset hash, model, prior family + limits,
//! MCMC shape, seed, horizon/θ_max), and nothing that does not
//! (thread count, timeout, and — for `select`, which sweeps all five
//! models — the request's irrelevant `model` field).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use srm_data::BugCountData;
use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::runner::McmcConfig;
use srm_model::DetectionModel;
use srm_obs::json::Value;
use srm_obs::{dataset_hash, fnv1a_hex, StatsCollector};

/// What a job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One model/prior fit with posterior summary and WAIC.
    Fit,
    /// WAIC comparison across all five detection models.
    Select,
    /// Reliability and expected detections over a future horizon.
    Predict,
}

impl JobKind {
    /// The wire label (`fit` / `select` / `predict`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Fit => "fit",
            Self::Select => "select",
            Self::Predict => "predict",
        }
    }

    /// Parses the wire label back into a kind.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "fit" => Some(Self::Fit),
            "select" => Some(Self::Select),
            "predict" => Some(Self::Predict),
            _ => None,
        }
    }
}

/// A fully validated job request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// Where the data came from (`dataset` name or `inline`).
    pub dataset_label: String,
    /// The bug-count data to fit.
    pub data: BugCountData,
    /// Detection model (ignored by `select`, which sweeps all five).
    pub model: DetectionModel,
    /// Prior on the initial bug content.
    pub prior: PriorSpec,
    /// MCMC run lengths and seed.
    pub mcmc: McmcConfig,
    /// Worker threads for parallel chains (0 = auto). Not part of the
    /// cache key: any value yields bit-identical results.
    pub threads: usize,
    /// Prediction horizon in days (`predict` only).
    pub horizon: usize,
    /// ζ-bound for `select` (mirrors the CLI's `--theta-max`).
    pub theta_max: f64,
    /// Cooperative timeout; checked at phase boundaries, not
    /// mid-sampling.
    pub timeout_ms: Option<u64>,
    /// Correlation id of the originating request (canonical 32-hex
    /// form; empty until the server mints or restores one). Never
    /// part of the cache key: correlation must not split the cache.
    pub trace_id: String,
}

fn num_field(body: &Value, name: &str) -> Result<Option<f64>, String> {
    match body.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(format!("field `{name}` must be a number")),
    }
}

fn usize_field(body: &Value, name: &str, default: usize) -> Result<usize, String> {
    match num_field(body, name)? {
        None => Ok(default),
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 => Ok(n as usize),
        Some(n) => Err(format!(
            "field `{name}` must be a non-negative integer, got {n}"
        )),
    }
}

impl JobSpec {
    /// Parses and validates a `POST /v1/jobs` body.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message on a missing/unknown `kind`,
    /// missing or malformed data, unknown model/prior, or run lengths
    /// the sampler cannot execute.
    pub fn from_json(body: &Value) -> Result<Self, String> {
        let kind_label = body
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("missing field `kind` (fit|select|predict)")?;
        let kind = JobKind::parse(kind_label)
            .ok_or_else(|| format!("unknown kind `{kind_label}` (fit|select|predict)"))?;

        let (dataset_label, data) = parse_data(body)?;

        let model_name = body
            .get("model")
            .and_then(Value::as_str)
            .unwrap_or("model1");
        let model = DetectionModel::ALL
            .into_iter()
            .find(|m| m.name() == model_name)
            .ok_or_else(|| format!("unknown model `{model_name}` (model0..model4)"))?;

        let prior = match body
            .get("prior")
            .and_then(Value::as_str)
            .unwrap_or("poisson")
        {
            "poisson" => PriorSpec::Poisson {
                lambda_max: num_field(body, "lambda_max")?.unwrap_or(2_000.0),
            },
            "negbinom" => PriorSpec::NegBinomial {
                alpha_max: num_field(body, "alpha_max")?.unwrap_or(100.0),
            },
            other => return Err(format!("unknown prior `{other}` (poisson|negbinom)")),
        };

        let mcmc = McmcConfig {
            chains: usize_field(body, "chains", 4)?,
            burn_in: usize_field(body, "burn_in", 1_000)?,
            samples: usize_field(body, "samples", 4_000)?,
            thin: usize_field(body, "thin", 1)?,
            seed: usize_field(body, "seed", 2_024)? as u64,
        };
        for (name, value) in [
            ("chains", mcmc.chains),
            ("samples", mcmc.samples),
            ("thin", mcmc.thin),
        ] {
            if value == 0 {
                return Err(format!("field `{name}` must be at least 1"));
            }
        }

        let horizon = usize_field(body, "horizon", 30)?;
        if kind == JobKind::Predict && horizon == 0 {
            return Err("field `horizon` must be at least 1".into());
        }
        let theta_max = num_field(body, "theta_max")?.unwrap_or(10.0);
        let timeout_ms = match usize_field(body, "timeout_ms", 0)? {
            0 => None,
            ms => Some(ms as u64),
        };

        Ok(Self {
            kind,
            dataset_label,
            data,
            model,
            prior,
            mcmc,
            threads: usize_field(body, "threads", 0)?,
            horizon,
            theta_max,
            timeout_ms,
            trace_id: String::new(),
        })
    }

    /// Serialises the spec for the write-ahead log and snapshots.
    ///
    /// The wire document is a valid `POST /v1/jobs` body (data always
    /// inline as `counts`, every default resolved) plus a
    /// `dataset_label` field so replay restores the original label
    /// instead of reporting `inline`. All numeric fields are bounded
    /// by `u32::MAX` at parse time, so the f64 JSON numbers round-trip
    /// exactly.
    #[must_use]
    pub fn to_wire(&self) -> Value {
        let mut fields: Vec<(&str, Value)> = vec![
            ("kind", Value::Str(self.kind.label().to_owned())),
            ("dataset_label", Value::Str(self.dataset_label.clone())),
            (
                "counts",
                Value::Arr(
                    self.data
                        .counts()
                        .iter()
                        .map(|&c| Value::Num(c as f64))
                        .collect(),
                ),
            ),
            ("model", Value::Str(self.model.name().to_owned())),
        ];
        match self.prior {
            PriorSpec::Poisson { lambda_max } => {
                fields.push(("prior", Value::Str("poisson".to_owned())));
                fields.push(("lambda_max", Value::Num(lambda_max)));
            }
            PriorSpec::NegBinomial { alpha_max } => {
                fields.push(("prior", Value::Str("negbinom".to_owned())));
                fields.push(("alpha_max", Value::Num(alpha_max)));
            }
        }
        fields.extend([
            ("chains", Value::Num(self.mcmc.chains as f64)),
            ("burn_in", Value::Num(self.mcmc.burn_in as f64)),
            ("samples", Value::Num(self.mcmc.samples as f64)),
            ("thin", Value::Num(self.mcmc.thin as f64)),
            ("seed", Value::Num(self.mcmc.seed as f64)),
            ("threads", Value::Num(self.threads as f64)),
            ("horizon", Value::Num(self.horizon as f64)),
            ("theta_max", Value::Num(self.theta_max)),
            (
                "timeout_ms",
                self.timeout_ms
                    .map_or(Value::Null, |ms| Value::Num(ms as f64)),
            ),
            ("trace_id", Value::Str(self.trace_id.clone())),
        ]);
        Value::obj(fields)
    }

    /// Rebuilds a spec from its [`to_wire`](JobSpec::to_wire) form,
    /// running the full request validation.
    ///
    /// # Errors
    ///
    /// Returns the same user-facing messages as
    /// [`from_json`](JobSpec::from_json) when the stored document no
    /// longer validates (e.g. hand-edited state files).
    pub fn from_wire(body: &Value) -> Result<Self, String> {
        let mut spec = Self::from_json(body)?;
        if let Some(label) = body.get("dataset_label").and_then(Value::as_str) {
            spec.dataset_label = label.to_owned();
        }
        // Absent in pre-v7 WAL frames; replay restores what was there
        // and leaves the id empty otherwise — either way the fields
        // never influence validation or the cache key.
        if let Some(trace_id) = body.get("trace_id").and_then(Value::as_str) {
            spec.trace_id = trace_id.to_owned();
        }
        Ok(spec)
    }

    /// The content address of this job's result: an FNV-1a digest of
    /// every input that determines the posterior bit-for-bit. Thread
    /// count and timeout are excluded on purpose — neither changes a
    /// single bit of the output. `select` additionally omits the model
    /// field: it sweeps all five models regardless of what the request
    /// happened to carry.
    #[must_use]
    pub fn cache_key(&self) -> String {
        let prior_part = match self.prior {
            PriorSpec::Poisson { lambda_max } => format!("poisson:{lambda_max}"),
            PriorSpec::NegBinomial { alpha_max } => format!("negbinom:{alpha_max}"),
        };
        let mut canonical = format!(
            "kind={};data={};prior={};chains={};burn_in={};samples={};thin={};seed={}",
            self.kind.label(),
            dataset_hash(self.data.counts()),
            prior_part,
            self.mcmc.chains,
            self.mcmc.burn_in,
            self.mcmc.samples,
            self.mcmc.thin,
            self.mcmc.seed,
        );
        match self.kind {
            JobKind::Fit => canonical.push_str(&format!(";model={}", self.model.name())),
            JobKind::Select => canonical.push_str(&format!(";theta_max={}", self.theta_max)),
            JobKind::Predict => canonical.push_str(&format!(
                ";model={};horizon={}",
                self.model.name(),
                self.horizon
            )),
        }
        fnv1a_hex(canonical.as_bytes())
    }
}

fn parse_data(body: &Value) -> Result<(String, BugCountData), String> {
    match (body.get("dataset"), body.get("counts")) {
        (Some(_), Some(_)) => Err("`dataset` and `counts` are mutually exclusive".into()),
        (Some(name), None) => {
            let name = name
                .as_str()
                .ok_or("field `dataset` must be a string")?
                .to_owned();
            let data = srm_data::datasets::all_named()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| d)
                .ok_or_else(|| {
                    let names: Vec<&str> = srm_data::datasets::all_named()
                        .into_iter()
                        .map(|(n, _)| n)
                        .collect();
                    format!("unknown dataset `{name}` (one of: {})", names.join(", "))
                })?;
            let data = match usize_field(body, "truncate", 0)? {
                0 => data,
                day => data
                    .truncated(day)
                    .map_err(|e| format!("bad `truncate`: {e}"))?,
            };
            Ok((name, data))
        }
        (None, Some(counts)) => {
            let items = counts.as_arr().ok_or("field `counts` must be an array")?;
            let mut daily = Vec::with_capacity(items.len());
            for item in items {
                // Same per-value bound as `usize_field`: u32::MAX per
                // day keeps the cumulative sum far from u64 overflow.
                match item.as_f64() {
                    Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 => {
                        daily.push(n as u64);
                    }
                    _ => {
                        return Err(format!(
                            "`counts` entries must be non-negative integers <= {}",
                            u32::MAX
                        ))
                    }
                }
            }
            let data = BugCountData::new(daily).map_err(|e| format!("bad `counts`: {e}"))?;
            Ok(("inline".into(), data))
        }
        (None, None) => Err("missing data: provide `dataset` (a named dataset) or `counts`".into()),
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// Being computed.
    Running,
    /// Finished; result available under `/v1/results/{id}`.
    Done,
    /// Failed; error kind/message recorded.
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobStatus {
    /// The wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state (done, failed, or
    /// cancelled). Only terminal records are eligible for eviction.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Done | Self::Failed | Self::Cancelled)
    }
}

/// One job's record in the store.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (`job-N`).
    pub id: String,
    /// What the job computes.
    pub kind: JobKind,
    /// Content address of the result.
    pub cache_key: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Whether the result came from the cache without sampling.
    pub cached: bool,
    /// Set by `DELETE /v1/jobs/{id}`; honoured at phase boundaries.
    pub cancel_requested: bool,
    /// The result document, once done.
    pub result: Option<Value>,
    /// Failure `(kind, message)` using the engine's error taxonomy
    /// (plus the server-level `timeout`).
    pub error: Option<(String, String)>,
    /// Wall-clock milliseconds spent computing (0 for cache hits).
    pub wall_ms: f64,
    /// Correlation id of the submitting request (empty for records
    /// recovered from pre-v7 state).
    pub trace_id: String,
    /// The job's own stats collector, attached when a worker claims
    /// the job. It receives every engine event — including streaming
    /// `diagnostic-checkpoint`s — and backs
    /// `GET /v1/jobs/{id}/progress` and the per-job `/metrics` gauges.
    /// Kept after completion so the final checkpoint stays queryable.
    pub progress: Option<Arc<StatsCollector>>,
}

impl JobRecord {
    /// A fresh record in the given state.
    #[must_use]
    pub fn new(id: String, kind: JobKind, cache_key: String, status: JobStatus) -> Self {
        Self {
            id,
            kind,
            cache_key,
            status,
            cached: false,
            cancel_requested: false,
            result: None,
            error: None,
            wall_ms: 0.0,
            trace_id: String::new(),
            progress: None,
        }
    }

    /// Sets the correlation id (builder-style, used at submission).
    #[must_use]
    pub fn with_trace_id(mut self, trace_id: &str) -> Self {
        self.trace_id = trace_id.to_owned();
        self
    }

    /// The `GET /v1/jobs/{id}` document.
    #[must_use]
    pub fn status_value(&self) -> Value {
        Value::obj(vec![
            ("id", Value::Str(self.id.clone())),
            ("trace_id", Value::Str(self.trace_id.clone())),
            ("kind", Value::Str(self.kind.label().to_owned())),
            ("status", Value::Str(self.status.label().to_owned())),
            ("cached", Value::Bool(self.cached)),
            ("cache_key", Value::Str(self.cache_key.clone())),
            ("wall_ms", Value::Num(self.wall_ms)),
            (
                "error",
                self.error.as_ref().map_or(Value::Null, |(kind, message)| {
                    Value::obj(vec![
                        ("kind", Value::Str(kind.clone())),
                        ("message", Value::Str(message.clone())),
                    ])
                }),
            ),
        ])
    }
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Thread-safe registry of the jobs the server has seen.
///
/// Records are hash-sharded across `N` independently locked maps
/// (shard = FNV-1a of the job id, modulo `N`), so `/progress` polls
/// on one job no longer serialize against submissions or completions
/// of another. All per-id operations touch exactly one shard lock;
/// only the cross-shard scans (`counts`, `running_progress`, the
/// eviction pass on terminal transitions) visit every shard, one lock
/// at a time — no lock is ever held while taking another, so the
/// sharding cannot deadlock.
///
/// Retention is bounded: at most `terminal_limit` records in a
/// terminal state ([`JobStatus::is_terminal`]) are kept, and the
/// oldest (lowest `job-N`) are evicted first — a long-running server
/// holds a window of recent history instead of growing without bound.
/// Queued and running records are never evicted.
#[derive(Debug)]
pub struct JobStore {
    shards: Vec<Mutex<HashMap<String, JobRecord>>>,
    next_id: AtomicU64,
    terminal_limit: usize,
}

/// Default shard count for [`JobStore`] and
/// [`FitCache`](crate::cache::FitCache).
pub const DEFAULT_SHARDS: usize = 8;

impl Default for JobStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Numeric suffix of a `job-N` id, for oldest-first eviction order.
fn job_index(id: &str) -> u64 {
    id.rsplit('-')
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or(u64::MAX)
}

impl JobStore {
    /// An empty store with unbounded retention (tests, embedders).
    #[must_use]
    pub fn new() -> Self {
        Self::with_limit(usize::MAX)
    }

    /// An empty store keeping at most `limit` terminal records.
    #[must_use]
    pub fn with_limit(limit: usize) -> Self {
        Self::with_limit_and_shards(limit, DEFAULT_SHARDS)
    }

    /// An empty store with an explicit shard count (1 = the old
    /// single-lock layout, useful for contention benchmarks).
    #[must_use]
    pub fn with_limit_and_shards(limit: usize, shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_id: AtomicU64::new(0),
            terminal_limit: limit.max(1),
        }
    }

    fn shard(&self, id: &str) -> &Mutex<HashMap<String, JobRecord>> {
        let index = srm_store::fnv1a64(id.as_bytes()) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Allocates the next job id (`job-1`, `job-2`, …).
    pub fn allocate_id(&self) -> String {
        format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Fast-forwards the id counter so the next allocation is
    /// `job-{n}` — called once at boot after replaying persisted
    /// state, so recovered ids are never re-issued.
    pub fn set_next_id(&self, next: u64) {
        self.next_id
            .fetch_max(next.saturating_sub(1), Ordering::Relaxed);
    }

    /// The number the next [`allocate_id`](JobStore::allocate_id)
    /// call will issue — persisted in snapshots so a restart never
    /// re-uses an id.
    #[must_use]
    pub fn next_job_number(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed) + 1
    }

    /// Global eviction pass: keeps the newest `terminal_limit`
    /// terminal records across all shards. Locks one shard at a time
    /// (scan, then delete), so concurrent inserts may briefly exceed
    /// the limit — the bound is enforced on the next terminal
    /// transition.
    fn evict_excess_terminal(&self) {
        let mut total = 0usize;
        let mut terminal: Vec<(u64, String)> = Vec::new();
        for shard in &self.shards {
            let records = lock_ignoring_poison(shard);
            total += records.len();
            terminal.extend(
                records
                    .values()
                    .filter(|r| r.status.is_terminal())
                    .map(|r| (job_index(&r.id), r.id.clone())),
            );
        }
        if total <= self.terminal_limit || terminal.len() <= self.terminal_limit {
            return;
        }
        let excess = terminal.len() - self.terminal_limit;
        terminal.sort_unstable();
        for (_, id) in terminal.into_iter().take(excess) {
            lock_ignoring_poison(self.shard(&id)).remove(&id);
        }
    }

    /// Inserts (or replaces) a record, evicting the oldest terminal
    /// records beyond the retention limit.
    pub fn insert(&self, record: JobRecord) {
        let terminal = record.status.is_terminal();
        lock_ignoring_poison(self.shard(&record.id)).insert(record.id.clone(), record);
        // Non-terminal inserts cannot grow the terminal population,
        // so the global pass only runs when it could evict something.
        if terminal {
            self.evict_excess_terminal();
        }
    }

    /// Snapshot of one record.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<JobRecord> {
        lock_ignoring_poison(self.shard(id)).get(id).cloned()
    }

    /// Removes a record (used when a push is rejected after the id was
    /// allocated, so 429'd submissions leave no trace in the store).
    pub fn remove(&self, id: &str) -> Option<JobRecord> {
        lock_ignoring_poison(self.shard(id)).remove(id)
    }

    /// Runs `f` on a record under its shard lock; `None` for unknown
    /// ids. A transition into a terminal state triggers the same
    /// eviction pass as [`JobStore::insert`].
    pub fn with<R>(&self, id: &str, f: impl FnOnce(&mut JobRecord) -> R) -> Option<R> {
        let mut records = lock_ignoring_poison(self.shard(id));
        let (out, terminal) = match records.get_mut(id) {
            Some(record) => {
                let out = f(record);
                (Some(out), record.status.is_terminal())
            }
            None => (None, false),
        };
        drop(records);
        if terminal {
            self.evict_excess_terminal();
        }
        out
    }

    /// Clones every record, in ascending job order — the snapshot
    /// writer's feed.
    #[must_use]
    pub fn all_records(&self) -> Vec<JobRecord> {
        let mut all: Vec<JobRecord> = Vec::new();
        for shard in &self.shards {
            all.extend(lock_ignoring_poison(shard).values().cloned());
        }
        all.sort_by_key(|r| job_index(&r.id));
        all
    }

    /// `(id, progress collector)` for every currently running job, in
    /// ascending job order — the deterministic feed for the per-job
    /// convergence gauges on `/metrics`.
    #[must_use]
    pub fn running_progress(&self) -> Vec<(String, Arc<StatsCollector>)> {
        let mut running: Vec<(String, Arc<StatsCollector>)> = Vec::new();
        for shard in &self.shards {
            let records = lock_ignoring_poison(shard);
            running.extend(
                records
                    .values()
                    .filter(|r| r.status == JobStatus::Running)
                    .filter_map(|r| r.progress.clone().map(|p| (r.id.clone(), p))),
            );
        }
        running.sort_by_key(|(id, _)| job_index(id));
        running
    }

    /// Per-status job counts
    /// `(queued, running, done, failed, cancelled)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0, 0);
        for shard in &self.shards {
            for record in lock_ignoring_poison(shard).values() {
                match record.status {
                    JobStatus::Queued => counts.0 += 1,
                    JobStatus::Running => counts.1 += 1,
                    JobStatus::Done => counts.2 += 1,
                    JobStatus::Failed => counts.3 += 1,
                    JobStatus::Cancelled => counts.4 += 1,
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_obs::json::parse;

    fn spec_from(json: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&parse(json).map_err(|e| e.to_string())?)
    }

    #[test]
    fn parses_a_full_fit_request() {
        let spec = spec_from(
            r#"{"kind":"fit","dataset":"musa_cc96","truncate":48,"model":"model2",
                "prior":"negbinom","alpha_max":50,"chains":2,"samples":500,
                "burn_in":200,"seed":7,"threads":2,"timeout_ms":60000}"#,
        )
        .unwrap();
        assert_eq!(spec.kind, JobKind::Fit);
        assert_eq!(spec.dataset_label, "musa_cc96");
        assert_eq!(spec.data.len(), 48);
        assert_eq!(spec.model.name(), "model2");
        assert!(matches!(spec.prior, PriorSpec::NegBinomial { alpha_max } if alpha_max == 50.0));
        assert_eq!(spec.mcmc.chains, 2);
        assert_eq!(spec.mcmc.seed, 7);
        assert_eq!(spec.threads, 2);
        assert_eq!(spec.timeout_ms, Some(60_000));
    }

    #[test]
    fn inline_counts_are_accepted() {
        let spec = spec_from(r#"{"kind":"fit","counts":[3,1,4,1,5]}"#).unwrap();
        assert_eq!(spec.dataset_label, "inline");
        assert_eq!(spec.data.counts(), &[3, 1, 4, 1, 5]);
    }

    #[test]
    fn rejects_bad_requests_with_messages() {
        for (json, needle) in [
            (r#"{"dataset":"musa_cc96"}"#, "missing field `kind`"),
            (r#"{"kind":"dance","dataset":"musa_cc96"}"#, "unknown kind"),
            (r#"{"kind":"fit"}"#, "missing data"),
            (r#"{"kind":"fit","dataset":"nope"}"#, "unknown dataset"),
            (
                r#"{"kind":"fit","dataset":"musa_cc96","model":"model9"}"#,
                "unknown model",
            ),
            (
                r#"{"kind":"fit","dataset":"musa_cc96","prior":"cauchy"}"#,
                "unknown prior",
            ),
            (
                r#"{"kind":"fit","dataset":"musa_cc96","chains":0}"#,
                "must be at least 1",
            ),
            (r#"{"kind":"fit","counts":[1,-2]}"#, "non-negative integers"),
            // Values this large would overflow the u64 cumulative sum
            // downstream; the per-entry bound rejects them up front.
            (
                r#"{"kind":"fit","counts":[1e19,1e19]}"#,
                "non-negative integers",
            ),
            (
                r#"{"kind":"fit","counts":[4294967296]}"#,
                "non-negative integers",
            ),
            (
                r#"{"kind":"predict","dataset":"musa_cc96","horizon":0}"#,
                "`horizon` must be at least 1",
            ),
        ] {
            let err = spec_from(json).unwrap_err();
            assert!(err.contains(needle), "`{json}` gave `{err}`");
        }
    }

    #[test]
    fn cache_key_ignores_threads_and_timeout() {
        let a = spec_from(r#"{"kind":"fit","dataset":"musa_cc96","threads":1}"#).unwrap();
        let b = spec_from(r#"{"kind":"fit","dataset":"musa_cc96","threads":4,"timeout_ms":5000}"#)
            .unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn cache_key_ignores_the_trace_id_but_the_wire_preserves_it() {
        let mut a = spec_from(r#"{"kind":"fit","dataset":"musa_cc96"}"#).unwrap();
        let b = spec_from(r#"{"kind":"fit","dataset":"musa_cc96"}"#).unwrap();
        a.trace_id = "0123456789abcdef0123456789abcdef".into();
        assert_eq!(a.cache_key(), b.cache_key());
        let back = JobSpec::from_wire(&a.to_wire()).unwrap();
        assert_eq!(back.trace_id, a.trace_id);
        // Pre-v7 wire frames (no trace_id field) replay to empty.
        let legacy = spec_from(r#"{"kind":"fit","dataset":"musa_cc96"}"#).unwrap();
        assert_eq!(JobSpec::from_wire(&legacy.to_wire()).unwrap().trace_id, "");
    }

    #[test]
    fn cache_key_separates_everything_else() {
        let base = r#"{"kind":"fit","dataset":"musa_cc96"}"#;
        let variants = [
            r#"{"kind":"predict","dataset":"musa_cc96"}"#,
            r#"{"kind":"fit","dataset":"s_shaped_80"}"#,
            r#"{"kind":"fit","dataset":"musa_cc96","truncate":48}"#,
            r#"{"kind":"fit","dataset":"musa_cc96","model":"model3"}"#,
            r#"{"kind":"fit","dataset":"musa_cc96","prior":"negbinom"}"#,
            r#"{"kind":"fit","dataset":"musa_cc96","lambda_max":999}"#,
            r#"{"kind":"fit","dataset":"musa_cc96","chains":2}"#,
            r#"{"kind":"fit","dataset":"musa_cc96","seed":1}"#,
        ];
        let base_key = spec_from(base).unwrap().cache_key();
        for v in variants {
            assert_ne!(spec_from(v).unwrap().cache_key(), base_key, "{v}");
        }
    }

    #[test]
    fn select_key_ignores_the_irrelevant_model_field() {
        // `select` sweeps all five models, so the request's `model`
        // must not split the cache.
        let a = spec_from(r#"{"kind":"select","dataset":"musa_cc96","model":"model0"}"#).unwrap();
        let b = spec_from(r#"{"kind":"select","dataset":"musa_cc96","model":"model3"}"#).unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        // But fit and predict keys still depend on the model.
        let fit_a = spec_from(r#"{"kind":"fit","dataset":"musa_cc96","model":"model0"}"#).unwrap();
        let fit_b = spec_from(r#"{"kind":"fit","dataset":"musa_cc96","model":"model3"}"#).unwrap();
        assert_ne!(fit_a.cache_key(), fit_b.cache_key());
        let p_a =
            spec_from(r#"{"kind":"predict","dataset":"musa_cc96","model":"model0"}"#).unwrap();
        let p_b =
            spec_from(r#"{"kind":"predict","dataset":"musa_cc96","model":"model3"}"#).unwrap();
        assert_ne!(p_a.cache_key(), p_b.cache_key());
    }

    #[test]
    fn predict_horizon_is_in_the_key_but_not_fit_horizon() {
        let fit_a = spec_from(r#"{"kind":"fit","dataset":"musa_cc96","horizon":10}"#).unwrap();
        let fit_b = spec_from(r#"{"kind":"fit","dataset":"musa_cc96","horizon":20}"#).unwrap();
        assert_eq!(fit_a.cache_key(), fit_b.cache_key());
        let p_a = spec_from(r#"{"kind":"predict","dataset":"musa_cc96","horizon":10}"#).unwrap();
        let p_b = spec_from(r#"{"kind":"predict","dataset":"musa_cc96","horizon":20}"#).unwrap();
        assert_ne!(p_a.cache_key(), p_b.cache_key());
    }

    #[test]
    fn wire_round_trip_preserves_the_spec_and_its_cache_key() {
        for json in [
            r#"{"kind":"fit","dataset":"musa_cc96","truncate":48,"model":"model2",
                "prior":"negbinom","alpha_max":50,"chains":2,"samples":500,
                "burn_in":200,"seed":7,"threads":2,"timeout_ms":60000}"#,
            r#"{"kind":"select","counts":[3,1,4,1,5],"theta_max":12.5}"#,
            r#"{"kind":"predict","dataset":"s_shaped_80","horizon":45,"lambda_max":500}"#,
        ] {
            let spec = spec_from(json).unwrap();
            let back = JobSpec::from_wire(&spec.to_wire()).unwrap();
            assert_eq!(back.kind, spec.kind, "{json}");
            assert_eq!(back.dataset_label, spec.dataset_label, "{json}");
            assert_eq!(back.data.counts(), spec.data.counts(), "{json}");
            assert_eq!(back.model.name(), spec.model.name(), "{json}");
            assert_eq!(back.threads, spec.threads, "{json}");
            assert_eq!(back.horizon, spec.horizon, "{json}");
            assert_eq!(back.timeout_ms, spec.timeout_ms, "{json}");
            assert_eq!(back.mcmc.seed, spec.mcmc.seed, "{json}");
            assert_eq!(back.cache_key(), spec.cache_key(), "{json}");
            // And the wire form itself is stable under a round trip.
            assert_eq!(back.to_wire().to_json(), spec.to_wire().to_json(), "{json}");
        }
    }

    #[test]
    fn sharded_store_behaves_like_a_single_map() {
        for shards in [1, 3, 8] {
            let store = JobStore::with_limit_and_shards(usize::MAX, shards);
            for n in 1..=40 {
                let id = store.allocate_id();
                assert_eq!(id, format!("job-{n}"));
                let status = if n % 2 == 0 {
                    JobStatus::Done
                } else {
                    JobStatus::Queued
                };
                store.insert(JobRecord::new(id, JobKind::Fit, "k".into(), status));
            }
            assert_eq!(store.counts(), (20, 0, 20, 0, 0), "shards={shards}");
            for n in 1..=40 {
                assert!(store.get(&format!("job-{n}")).is_some(), "shards={shards}");
            }
            let all = store.all_records();
            assert_eq!(all.len(), 40);
            assert_eq!(all[0].id, "job-1");
            assert_eq!(all[39].id, "job-40");
        }
    }

    #[test]
    fn set_next_id_fast_forwards_but_never_rewinds() {
        let store = JobStore::new();
        store.set_next_id(5);
        assert_eq!(store.allocate_id(), "job-5");
        store.set_next_id(2);
        assert_eq!(store.allocate_id(), "job-6");
    }

    #[test]
    fn store_tracks_lifecycle_counts() {
        let store = JobStore::new();
        assert_eq!(store.allocate_id(), "job-1");
        assert_eq!(store.allocate_id(), "job-2");
        let mut record =
            JobRecord::new("job-1".into(), JobKind::Fit, "k".into(), JobStatus::Queued);
        store.insert(record.clone());
        record.id = "job-2".into();
        record.status = JobStatus::Done;
        store.insert(record);
        assert_eq!(store.counts(), (1, 0, 1, 0, 0));
        store.with("job-1", |r| r.status = JobStatus::Cancelled);
        assert_eq!(store.counts(), (0, 0, 1, 0, 1));
        assert!(store.get("job-9").is_none());
        let doc = store.get("job-2").unwrap().status_value();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
    }

    #[test]
    fn store_evicts_oldest_terminal_records_beyond_the_limit() {
        let store = JobStore::with_limit(2);
        // A live (queued) record older than everything terminal.
        store.insert(JobRecord::new(
            "job-1".into(),
            JobKind::Fit,
            "k".into(),
            JobStatus::Queued,
        ));
        for n in 2..=5 {
            store.insert(JobRecord::new(
                format!("job-{n}"),
                JobKind::Fit,
                "k".into(),
                JobStatus::Done,
            ));
        }
        // Only the two newest terminal records survive; the queued
        // record is never evicted, however old.
        assert!(store.get("job-1").is_some());
        assert!(store.get("job-2").is_none());
        assert!(store.get("job-3").is_none());
        assert!(store.get("job-4").is_some());
        assert!(store.get("job-5").is_some());

        // A transition into a terminal state also triggers eviction.
        store.with("job-1", |r| r.status = JobStatus::Cancelled);
        let remaining: Vec<bool> = (1..=5)
            .map(|n| store.get(&format!("job-{n}")).is_some())
            .collect();
        assert_eq!(remaining.iter().filter(|&&kept| kept).count(), 2);
        assert_eq!(store.counts().0, 0);
    }
}
