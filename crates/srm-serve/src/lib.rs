//! srm-serve — a long-running estimation service over the srm engine.
//!
//! The crate turns the one-shot CLI pipeline (fit / select / predict)
//! into a small HTTP service with an explicit operational contract:
//!
//! - **One engine.** Jobs run through the exact same traced entry
//!   points the CLI uses, so an HTTP fit is bit-identical to a
//!   same-seed `srm fit` run.
//! - **Bounded queue.** Submissions beyond [`queue::JobQueue`]'s
//!   capacity are rejected with `429 Too Many Requests` and a
//!   `Retry-After` header — backpressure is visible, not silent.
//! - **Content-addressed cache.** A job's [`job::JobSpec::cache_key`]
//!   hashes everything that determines the posterior bit-for-bit;
//!   repeat submissions are answered from [`cache::FitCache`] without
//!   re-sampling.
//! - **Graceful drain.** On SIGTERM/SIGINT (or
//!   [`server::Server::request_shutdown`]) the server stops accepting
//!   work, finishes every accepted job, then exits.
//! - **Observable.** Per-job JSONL traces and run manifests reuse the
//!   srm-obs sinks; `/metrics` exposes Prometheus counters and
//!   `/healthz` reports build info and job counts.
//!
//! The HTTP layer is dependency-free by design: a hand-rolled
//! HTTP/1.1 reader/writer over [`std::net::TcpListener`] — see
//! [`http`].
//!
//! # Endpoints
//!
//! | Method & path                   | Purpose                                  |
//! |---------------------------------|------------------------------------------|
//! | `POST /v1/jobs`                 | Submit a fit/select/predict job          |
//! | `GET /v1/jobs/{id}`             | Poll job status                          |
//! | `GET /v1/jobs/{id}/progress`    | Live convergence state (checkpoints, R̂) |
//! | `GET /v1/results/{id}`          | Fetch the result document                |
//! | `DELETE /v1/jobs/{id}`          | Cancel (cooperative at phase boundaries) |
//! | `POST /v1/batches`              | Fan one fit spec over many datasets      |
//! | `GET /v1/batches/{id}`          | Batch rollup with per-item status/results|
//! | `GET /healthz`                  | Liveness, build info, job counts         |
//! | `GET /metrics`                  | Prometheus text exposition               |

// `signal` needs one audited `unsafe` block to install a SIGTERM
// handler without adding a dependency, so `forbid` is one notch too
// strong for this crate; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod access_log;
pub mod batch;
pub mod cache;
pub mod engine;
pub mod http;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;
pub mod store;

pub use access_log::{AccessLog, AccessLogStats, DEFAULT_ACCESS_LOG_MAX_BYTES};
pub use batch::{
    parse_batch, BatchItemRef, BatchRecord, BatchRequest, BatchStore, MAX_BATCH_ITEMS,
};
pub use cache::FitCache;
pub use engine::{run_job, JobError, JobOutput, SERVE_CHECKPOINT_EVERY};
pub use job::{JobKind, JobRecord, JobSpec, JobStatus, JobStore};
pub use metrics::{escape_label, lint_exposition, render_prometheus, GaugeSnapshot, ServeMetrics};
pub use queue::{JobQueue, PushError, QueuedJob};
pub use server::{Gate, Server, ServerConfig, ServerState};
pub use store::{Persister, RecoveredState, WalStats};
