//! Service counters and the Prometheus text exposition (`/metrics`).
//!
//! Two layers feed the page: the server's own counters (requests,
//! submissions, completions, rejections, job wall-time histogram) and
//! the engine-level aggregates from the global
//! [`StatsCollector`](srm_obs::StatsCollector) every job's recorder
//! tees into (retries, contained panics, event volume). Exposition
//! format 0.0.4 — counters end in `_total`, histograms emit
//! `_bucket`/`_sum`/`_count`.

use std::fmt::Write as _;

use srm_obs::{
    aggregate, ChainCheckpoint, Counter, FixedHistogram, FlightRecStats, PhaseSnapshot,
    StatsCollector, EVENT_SCHEMA_VERSION, MANIFEST_SCHEMA_VERSION, SCHEMA_VERSION,
};

use crate::access_log::AccessLogStats;
use crate::cache::FitCache;
use crate::job::JobStore;
use crate::store::WalStats;

/// Mutable-through-&self counters for the HTTP and job layers.
#[derive(Debug)]
pub struct ServeMetrics {
    /// HTTP requests handled (any route, any status).
    pub http_requests: Counter,
    /// Jobs accepted onto the queue or served from cache.
    pub jobs_submitted: Counter,
    /// Jobs rejected with 429 (queue full).
    pub jobs_rejected: Counter,
    /// Jobs that finished with status `done` (cache hits included).
    pub jobs_done: Counter,
    /// Jobs that finished with status `failed`.
    pub jobs_failed: Counter,
    /// Jobs cancelled before completing.
    pub jobs_cancelled: Counter,
    /// Connections turned away with 503 because the accept queue was
    /// full.
    pub conns_rejected: Counter,
    /// Idle connections reaped (503) after waiting too long in the
    /// accept queue.
    pub conns_reaped: Counter,
    /// Wall-time distribution of executed (non-cached) jobs, ms.
    pub job_wall_ms: FixedHistogram,
    /// Batches accepted via `POST /v1/batches`.
    pub batches_submitted: Counter,
    /// Batch items accepted (across all batches).
    pub batch_items: Counter,
    /// Batch items served without fresh sampling (in-batch duplicate
    /// aliases plus fit-cache hits at submit).
    pub batch_cache_hits: Counter,
    /// Requests to the read-only `/v1/debug/*` endpoints.
    pub debug_requests: Counter,
}

/// Point-in-time gauge inputs for [`render_prometheus`], sampled by
/// the caller right before rendering.
#[derive(Debug, Clone, Default)]
pub struct GaugeSnapshot {
    /// Jobs waiting on the job queue.
    pub queue_depth: usize,
    /// Jobs currently being computed.
    pub jobs_running: u64,
    /// Connections waiting in the accept queue.
    pub conn_queue_depth: usize,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Merged phase-time profile from the server's always-on
    /// profiler (queue-wait, fit, serialize, wal-append, and the
    /// sampler phases underneath).
    pub phases: Vec<PhaseSnapshot>,
    /// Batches with at least one member job still pending.
    pub batches_active: u64,
    /// Access-log counters (`None` when no access log is configured).
    pub access_log: Option<AccessLogStats>,
    /// Flight-recorder counters (zero/disabled when never enabled).
    pub flightrec: FlightRecStats,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh counters.
    #[must_use]
    pub fn new() -> Self {
        Self {
            http_requests: Counter::new(),
            jobs_submitted: Counter::new(),
            jobs_rejected: Counter::new(),
            jobs_done: Counter::new(),
            jobs_failed: Counter::new(),
            jobs_cancelled: Counter::new(),
            conns_rejected: Counter::new(),
            conns_reaped: Counter::new(),
            // Job wall times from 1 ms to ~100 s.
            job_wall_ms: FixedHistogram::exponential(1.0, 10.0, 6),
            batches_submitted: Counter::new(),
            batch_items: Counter::new(),
            batch_cache_hits: Counter::new(),
            debug_requests: Counter::new(),
        }
    }
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Escapes a Prometheus label value per exposition format 0.0.4:
/// backslash, double quote, and newline must be escaped; everything
/// else passes through verbatim.
#[must_use]
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Parses one sample line's label block, returning the position after
/// the closing `}` or an error describing the malformation.
fn check_label_block(line: &str, start: usize) -> Result<usize, String> {
    let bytes = line.as_bytes();
    let mut i = start + 1; // past '{'
    loop {
        // Label name.
        let name_start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if i == name_start || i >= bytes.len() || bytes[i] != b'=' {
            return Err(format!("bad label name in `{line}`"));
        }
        i += 1;
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(format!("label value must be quoted in `{line}`"));
        }
        i += 1;
        // Label value: only \\, \", \n escapes; no raw quote/backslash.
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated label value in `{line}`")),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => match bytes.get(i + 1) {
                    Some(b'\\' | b'"' | b'n') => i += 2,
                    _ => return Err(format!("invalid escape in label value in `{line}`")),
                },
                Some(_) => i += 1,
            }
        }
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(i + 1),
            _ => return Err(format!("expected `,` or `}}` after label in `{line}`")),
        }
    }
}

/// Lints a Prometheus text exposition (format 0.0.4). Returns one
/// message per violation (empty = clean):
///
/// - every sample's metric family must be announced by exactly one
///   `# HELP` and one `# TYPE` line before its first sample;
/// - no duplicate families (a family's samples may not restart after
///   another family began);
/// - `counter` families must end in `_total`; histogram samples must
///   use the `_bucket`/`_sum`/`_count` suffixes;
/// - label blocks must parse, with only `\\`, `\"` and `\n` escapes
///   in values, and every sample needs a numeric value.
#[must_use]
pub fn lint_exposition(page: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut seen_samples: Vec<String> = Vec::new();
    let type_of = |typed: &[(String, String)], family: &str| {
        typed
            .iter()
            .find(|(f, _)| f == family)
            .map(|(_, t)| t.clone())
    };
    for line in page.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some(family) = rest.split_whitespace().next() else {
                violations.push(format!("HELP line without a family name: `{line}`"));
                continue;
            };
            if helped.iter().any(|f| f == family) {
                violations.push(format!("duplicate HELP for family `{family}`"));
            }
            helped.push(family.to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(family), Some(kind)) = (parts.next(), parts.next()) else {
                violations.push(format!("malformed TYPE line: `{line}`"));
                continue;
            };
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                violations.push(format!("unknown TYPE `{kind}` for family `{family}`"));
            }
            if kind == "counter" && !family.ends_with("_total") {
                violations.push(format!("counter family `{family}` must end in `_total`"));
            }
            if typed.iter().any(|(f, _)| f == family) {
                violations.push(format!("duplicate TYPE for family `{family}`"));
            }
            typed.push((family.to_owned(), kind.to_owned()));
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // A sample line: name[{labels}] value
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if name.is_empty() {
            violations.push(format!("sample without a metric name: `{line}`"));
            continue;
        }
        // Resolve the family: histogram samples carry a suffix.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(|suffix| name.strip_suffix(suffix))
            .find(|base| type_of(&typed, base) == Some("histogram".to_owned()))
            .unwrap_or(name)
            .to_owned();
        match type_of(&typed, &family) {
            None => violations.push(format!("sample `{name}` has no TYPE line")),
            Some(kind) => {
                if kind == "histogram" && family == name {
                    violations.push(format!(
                        "histogram family `{family}` sampled without _bucket/_sum/_count"
                    ));
                }
            }
        }
        if !helped.contains(&family) {
            violations.push(format!("sample `{name}` has no HELP line"));
        }
        // Families must be contiguous: once another family's samples
        // started, an earlier family may not emit more samples.
        match seen_samples.iter().position(|f| *f == family) {
            Some(at) if at + 1 != seen_samples.len() => {
                violations.push(format!("family `{family}` restarted after another family"));
            }
            Some(_) => {}
            None => seen_samples.push(family.clone()),
        }
        let after_labels = if line.as_bytes().get(name_end) == Some(&b'{') {
            match check_label_block(line, name_end) {
                Ok(end) => end,
                Err(v) => {
                    violations.push(v);
                    continue;
                }
            }
        } else {
            name_end
        };
        let value = line[after_labels..].trim();
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            violations.push(format!("non-numeric sample value `{value}` in `{line}`"));
        }
    }
    violations
}

fn histogram(out: &mut String, name: &str, help: &str, hist: &FixedHistogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bound, count) in hist.snapshot() {
        cumulative += count;
        let le = if bound.is_infinite() {
            "+Inf".to_owned()
        } else {
            format!("{bound}")
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_sum {}", hist.sum());
    let _ = writeln!(out, "{name}_count {}", hist.count());
}

/// Per-running-job convergence gauges from the jobs' own stats
/// collectors: sweeps completed, whole-chain R̂, and total ESS per
/// parameter, labelled by (escaped) job id.
fn job_progress_gauges(out: &mut String, store: &JobStore) {
    let running = store.running_progress();
    let _ = writeln!(
        out,
        "# HELP srm_job_sweeps_completed Sweeps completed so far across a running job's chains."
    );
    let _ = writeln!(out, "# TYPE srm_job_sweeps_completed gauge");
    let _ = writeln!(
        out,
        "# HELP srm_job_rhat Whole-chain Gelman-Rubin R-hat at the latest checkpoint."
    );
    let _ = writeln!(out, "# TYPE srm_job_rhat gauge");
    let _ = writeln!(
        out,
        "# HELP srm_job_ess Total effective sample size at the latest checkpoint."
    );
    let _ = writeln!(out, "# TYPE srm_job_ess gauge");
    let _ = writeln!(
        out,
        "# HELP srm_job_ess_per_sec Effective samples per CPU-second of sampling at the latest checkpoint."
    );
    let _ = writeln!(out, "# TYPE srm_job_ess_per_sec gauge");
    for (id, stats) in &running {
        let job = escape_label(id);
        let _ = writeln!(
            out,
            "srm_job_sweeps_completed{{job=\"{job}\"}} {}",
            stats.sweeps_completed()
        );
        let latest = stats.latest_checkpoints();
        let refs: Vec<&ChainCheckpoint> = latest.iter().collect();
        for diag in aggregate(&refs) {
            let parameter = escape_label(&diag.parameter);
            if diag.rhat.is_finite() {
                let _ = writeln!(
                    out,
                    "srm_job_rhat{{job=\"{job}\",parameter=\"{parameter}\"}} {}",
                    diag.rhat
                );
            }
            if diag.ess.is_finite() {
                let _ = writeln!(
                    out,
                    "srm_job_ess{{job=\"{job}\",parameter=\"{parameter}\"}} {}",
                    diag.ess
                );
            }
            if diag.ess_per_sec > 0.0 {
                let _ = writeln!(
                    out,
                    "srm_job_ess_per_sec{{job=\"{job}\",parameter=\"{parameter}\"}} {}",
                    diag.ess_per_sec
                );
            }
        }
    }
}

/// Phase-time totals from the server's profiler, one series pair per
/// `/`-joined span path: cumulative seconds spent and entry count.
fn phase_series(out: &mut String, phases: &[PhaseSnapshot]) {
    let _ = writeln!(
        out,
        "# HELP srm_serve_phase_seconds_total Cumulative wall time inside each profiled phase."
    );
    let _ = writeln!(out, "# TYPE srm_serve_phase_seconds_total counter");
    let _ = writeln!(
        out,
        "# HELP srm_serve_phase_entries_total Times each profiled phase was entered."
    );
    let _ = writeln!(out, "# TYPE srm_serve_phase_entries_total counter");
    for phase in phases {
        let label = escape_label(&phase.path);
        let _ = writeln!(
            out,
            "srm_serve_phase_seconds_total{{phase=\"{label}\"}} {}",
            phase.total_ns as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "srm_serve_phase_entries_total{{phase=\"{label}\"}} {}",
            phase.count
        );
    }
}

/// Renders the `/metrics` page. `wal` is `None` when the server runs
/// without a state directory (no persistence series emitted).
#[must_use]
pub fn render_prometheus(
    metrics: &ServeMetrics,
    cache: &FitCache,
    stats: &StatsCollector,
    store: &JobStore,
    gauges: GaugeSnapshot,
    wal: Option<WalStats>,
) -> String {
    let GaugeSnapshot {
        queue_depth,
        jobs_running,
        conn_queue_depth,
        uptime_secs,
        phases,
        batches_active,
        access_log,
        flightrec,
    } = gauges;
    let mut out = String::new();
    // Build identity first: the same fields `/healthz` reports, as a
    // constant-1 gauge whose labels carry the values.
    let _ = writeln!(
        out,
        "# HELP srm_build_info Build identity (value is always 1; labels carry the fields)."
    );
    let _ = writeln!(out, "# TYPE srm_build_info gauge");
    let _ = writeln!(
        out,
        "srm_build_info{{version=\"{}\",schema=\"{SCHEMA_VERSION}\",manifest_schema=\"{MANIFEST_SCHEMA_VERSION}\",event_schema=\"{EVENT_SCHEMA_VERSION}\"}} 1",
        escape_label(env!("CARGO_PKG_VERSION")),
    );
    gauge(
        &mut out,
        "srm_serve_uptime_seconds",
        "Seconds since the server started.",
        uptime_secs,
    );
    counter(
        &mut out,
        "srm_serve_http_requests_total",
        "HTTP requests handled.",
        metrics.http_requests.get(),
    );
    counter(
        &mut out,
        "srm_serve_jobs_submitted_total",
        "Jobs accepted (queued or served from cache).",
        metrics.jobs_submitted.get(),
    );
    counter(
        &mut out,
        "srm_serve_jobs_rejected_total",
        "Jobs rejected with 429 because the queue was full.",
        metrics.jobs_rejected.get(),
    );
    counter(
        &mut out,
        "srm_serve_jobs_done_total",
        "Jobs completed successfully.",
        metrics.jobs_done.get(),
    );
    counter(
        &mut out,
        "srm_serve_jobs_failed_total",
        "Jobs that failed.",
        metrics.jobs_failed.get(),
    );
    counter(
        &mut out,
        "srm_serve_jobs_cancelled_total",
        "Jobs cancelled before completion.",
        metrics.jobs_cancelled.get(),
    );
    counter(
        &mut out,
        "srm_serve_cache_hits_total",
        "Fit-cache hits (results served without re-sampling).",
        cache.hits(),
    );
    counter(
        &mut out,
        "srm_serve_cache_misses_total",
        "Fit-cache misses.",
        cache.misses(),
    );
    counter(
        &mut out,
        "srm_store_evictions_total",
        "Fit-cache entries evicted under capacity pressure (LRU).",
        cache.evictions(),
    );
    counter(
        &mut out,
        "srm_serve_conns_rejected_total",
        "Connections rejected with 503 because the accept queue was full.",
        metrics.conns_rejected.get(),
    );
    counter(
        &mut out,
        "srm_serve_conns_reaped_total",
        "Stale connections reaped with 503 from the accept queue.",
        metrics.conns_reaped.get(),
    );
    gauge(
        &mut out,
        "srm_serve_conn_queue_depth",
        "Connections waiting in the accept queue.",
        conn_queue_depth as f64,
    );
    if let Some(wal) = wal {
        gauge(
            &mut out,
            "srm_wal_bytes",
            "Bytes currently in the write-ahead log.",
            wal.bytes as f64,
        );
        counter(
            &mut out,
            "srm_wal_records_total",
            "Records appended to the write-ahead log since boot.",
            wal.appended,
        );
        counter(
            &mut out,
            "srm_store_snapshots_total",
            "State snapshots written since boot.",
            wal.snapshots,
        );
        counter(
            &mut out,
            "srm_store_errors_total",
            "WAL appends or snapshots that failed (memory-only state).",
            wal.errors,
        );
    }
    gauge(
        &mut out,
        "srm_serve_cache_entries",
        "Results stored in the fit cache.",
        cache.len() as f64,
    );
    gauge(
        &mut out,
        "srm_serve_queue_depth",
        "Jobs waiting on the queue.",
        queue_depth as f64,
    );
    gauge(
        &mut out,
        "srm_serve_jobs_running",
        "Jobs currently being computed.",
        jobs_running as f64,
    );
    counter(
        &mut out,
        "srm_serve_batches_submitted_total",
        "Batches accepted via POST /v1/batches.",
        metrics.batches_submitted.get(),
    );
    counter(
        &mut out,
        "srm_serve_batch_items_total",
        "Batch items accepted across all batches.",
        metrics.batch_items.get(),
    );
    counter(
        &mut out,
        "srm_serve_batch_cache_hits_total",
        "Batch items served without fresh sampling (duplicates and cache hits).",
        metrics.batch_cache_hits.get(),
    );
    gauge(
        &mut out,
        "srm_serve_batches_active",
        "Batches with at least one member job still pending.",
        batches_active as f64,
    );
    counter(
        &mut out,
        "srm_serve_debug_requests_total",
        "Requests to the read-only /v1/debug endpoints.",
        metrics.debug_requests.get(),
    );
    if let Some(log) = access_log {
        counter(
            &mut out,
            "srm_serve_access_log_lines_total",
            "Access-log lines appended.",
            log.lines,
        );
        counter(
            &mut out,
            "srm_serve_access_log_errors_total",
            "Access-log appends or rotations that failed (degraded).",
            log.errors,
        );
        counter(
            &mut out,
            "srm_serve_access_log_rotations_total",
            "Access-log size rotations completed.",
            log.rotations,
        );
    }
    gauge(
        &mut out,
        "srm_flightrec_enabled",
        "Whether the flight recorder is capturing (1) or not (0).",
        if flightrec.enabled { 1.0 } else { 0.0 },
    );
    gauge(
        &mut out,
        "srm_flightrec_threads",
        "Threads with a registered flight-recorder ring.",
        flightrec.threads as f64,
    );
    counter(
        &mut out,
        "srm_flightrec_recorded_total",
        "Events captured by the flight recorder since boot.",
        flightrec.recorded,
    );
    counter(
        &mut out,
        "srm_flightrec_dumps_total",
        "Flight-recorder dumps written successfully.",
        flightrec.dumps,
    );
    counter(
        &mut out,
        "srm_flightrec_dump_errors_total",
        "Flight-recorder dump attempts that failed (degraded).",
        flightrec.dump_errors,
    );
    let (queued, running, done, failed, cancelled) = store.counts();
    let _ = writeln!(
        out,
        "# HELP srm_serve_jobs_state Jobs in the store by lifecycle state."
    );
    let _ = writeln!(out, "# TYPE srm_serve_jobs_state gauge");
    for (state_label, count) in [
        ("queued", queued),
        ("running", running),
        ("done", done),
        ("failed", failed),
        ("cancelled", cancelled),
    ] {
        let _ = writeln!(
            out,
            "srm_serve_jobs_state{{state=\"{state_label}\"}} {count}"
        );
    }
    job_progress_gauges(&mut out, store);
    phase_series(&mut out, &phases);
    histogram(
        &mut out,
        "srm_serve_job_wall_ms",
        "Wall time of executed (non-cached) jobs, milliseconds.",
        &metrics.job_wall_ms,
    );
    counter(
        &mut out,
        "srm_serve_engine_retries_total",
        "Sweep retries across all jobs (from the engine's trace).",
        stats.retries_seen(),
    );
    counter(
        &mut out,
        "srm_serve_engine_panics_contained_total",
        "Chain panics contained across all jobs.",
        stats.panics_contained(),
    );
    counter(
        &mut out,
        "srm_serve_engine_events_total",
        "Trace events aggregated from all jobs.",
        stats.events_seen(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobRecord, JobStatus};
    use srm_obs::{AcceptStat, Event, MomentSummary, ParamCheckpoint, Recorder as _};
    use std::sync::Arc;

    fn checkpoint_event(chain: usize, sweep: usize) -> Event {
        Event::DiagnosticCheckpoint {
            checkpoint: ChainCheckpoint {
                chain,
                sweep,
                kept: sweep / 2 + 1,
                wall_ms: 500.0,
                params: vec![ParamCheckpoint {
                    parameter: "residual".into(),
                    moments: MomentSummary {
                        count: 20,
                        mean: 4.0 + chain as f64,
                        variance: 1.5,
                    },
                    half1: MomentSummary {
                        count: 10,
                        mean: 4.0,
                        variance: 1.4,
                    },
                    half2: MomentSummary {
                        count: 10,
                        mean: 4.1,
                        variance: 1.6,
                    },
                    ess: 12.0,
                    ess_per_sec: 24.0,
                    mcse: 0.35,
                }],
                accept: vec![AcceptStat {
                    parameter: "zeta0".into(),
                    steps: 40,
                    accepted: 17,
                }],
            },
        }
    }

    #[test]
    fn exposition_has_counters_gauges_and_histogram_series() {
        let metrics = ServeMetrics::new();
        metrics.http_requests.add(3);
        metrics.jobs_submitted.incr();
        metrics.job_wall_ms.observe(42.0);
        let cache = FitCache::new();
        let stats = StatsCollector::new();
        let store = JobStore::new();
        store.insert(JobRecord::new(
            "job-1".into(),
            JobKind::Fit,
            "k".into(),
            JobStatus::Queued,
        ));
        let page = render_prometheus(
            &metrics,
            &cache,
            &stats,
            &store,
            GaugeSnapshot {
                queue_depth: 2,
                jobs_running: 1,
                conn_queue_depth: 3,
                uptime_secs: 12.5,
                phases: vec![PhaseSnapshot {
                    path: "fit/chain".into(),
                    count: 4,
                    total_ns: 2_000_000_000,
                    self_ns: 2_000_000_000,
                    min_ns: 400_000_000,
                    max_ns: 600_000_000,
                    buckets: vec![0; srm_obs::HIST_BUCKETS],
                }],
                ..GaugeSnapshot::default()
            },
            None,
        );
        assert!(page.contains("srm_serve_http_requests_total 3"));
        assert!(page.contains("srm_serve_uptime_seconds 12.5"));
        assert!(page.contains(&format!(
            "srm_build_info{{version=\"{}\",schema=\"{SCHEMA_VERSION}\",manifest_schema=\"{MANIFEST_SCHEMA_VERSION}\",event_schema=\"{EVENT_SCHEMA_VERSION}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(page.contains("srm_serve_phase_seconds_total{phase=\"fit/chain\"} 2"));
        assert!(page.contains("srm_serve_phase_entries_total{phase=\"fit/chain\"} 4"));
        assert!(page.contains("srm_serve_jobs_submitted_total 1"));
        assert!(page.contains("srm_serve_queue_depth 2"));
        assert!(page.contains("srm_serve_jobs_running 1"));
        assert!(page.contains("srm_serve_conn_queue_depth 3"));
        assert!(page.contains("srm_store_evictions_total 0"));
        assert!(page.contains("srm_serve_conns_rejected_total 0"));
        assert!(page.contains("srm_serve_conns_reaped_total 0"));
        assert!(page.contains("srm_serve_batches_submitted_total 0"));
        assert!(page.contains("srm_serve_batch_items_total 0"));
        assert!(page.contains("srm_serve_batch_cache_hits_total 0"));
        assert!(page.contains("srm_serve_batches_active 0"));
        assert!(
            !page.contains("srm_wal_bytes"),
            "no WAL series without a state dir"
        );
        assert!(page.contains("srm_serve_jobs_state{state=\"queued\"} 1"));
        assert!(page.contains("srm_serve_jobs_state{state=\"done\"} 0"));
        assert!(page.contains("srm_serve_job_wall_ms_bucket{le=\"+Inf\"} 1"));
        assert!(page.contains("srm_serve_job_wall_ms_count 1"));
        assert!(page.contains("srm_serve_job_wall_ms_sum 42"));
        // Buckets are cumulative: the 100-bound bucket already counts
        // the 42 ms observation.
        assert!(page.contains("srm_serve_job_wall_ms_bucket{le=\"100\"} 1"));
        // Every HELP line pairs with a TYPE line.
        assert_eq!(
            page.matches("# HELP").count(),
            page.matches("# TYPE").count()
        );
    }

    #[test]
    fn exposition_lints_clean_with_debug_access_log_and_flightrec_series() {
        let metrics = ServeMetrics::new();
        metrics.debug_requests.incr();
        let page = render_prometheus(
            &metrics,
            &FitCache::new(),
            &StatsCollector::new(),
            &JobStore::new(),
            GaugeSnapshot {
                access_log: Some(crate::access_log::AccessLogStats {
                    lines: 9,
                    errors: 1,
                    rotations: 2,
                }),
                flightrec: srm_obs::FlightRecStats {
                    enabled: true,
                    capacity: 256,
                    threads: 3,
                    recorded: 17,
                    dumps: 1,
                    dump_errors: 0,
                },
                phases: vec![PhaseSnapshot {
                    // Label escaping must survive the lint.
                    path: "fit\"odd\\phase\n".into(),
                    count: 1,
                    total_ns: 1,
                    self_ns: 1,
                    min_ns: 1,
                    max_ns: 1,
                    buckets: vec![0; srm_obs::HIST_BUCKETS],
                }],
                ..GaugeSnapshot::default()
            },
            Some(WalStats {
                bytes: 128,
                records: 4,
                appended: 4,
                snapshots: 1,
                errors: 0,
            }),
        );
        assert!(page.contains("srm_serve_debug_requests_total 1"));
        assert!(page.contains("srm_serve_access_log_lines_total 9"));
        assert!(page.contains("srm_serve_access_log_errors_total 1"));
        assert!(page.contains("srm_serve_access_log_rotations_total 2"));
        assert!(page.contains("srm_flightrec_enabled 1"));
        assert!(page.contains("srm_flightrec_threads 3"));
        assert!(page.contains("srm_flightrec_recorded_total 17"));
        assert!(page.contains("srm_flightrec_dumps_total 1"));
        assert!(page.contains("srm_flightrec_dump_errors_total 0"));
        let violations = lint_exposition(&page);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn lint_flags_malformed_expositions() {
        // Sample without HELP/TYPE.
        let v = lint_exposition("orphan_metric 1\n");
        assert!(v.iter().any(|m| m.contains("no TYPE")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("no HELP")), "{v:?}");
        // Duplicate family announcement.
        let page = "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n\
                    # HELP a_total A again.\n# TYPE a_total counter\n";
        let v = lint_exposition(page);
        assert!(v.iter().any(|m| m.contains("duplicate HELP")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("duplicate TYPE")), "{v:?}");
        // Counter not ending in _total.
        let v = lint_exposition("# HELP a A.\n# TYPE a counter\na 1\n");
        assert!(
            v.iter().any(|m| m.contains("must end in `_total`")),
            "{v:?}"
        );
        // Interleaved families.
        let page = "# HELP a_total A.\n# TYPE a_total counter\na_total{k=\"1\"} 1\n\
                    # HELP b_total B.\n# TYPE b_total counter\nb_total 1\n\
                    a_total{k=\"2\"} 1\n";
        let v = lint_exposition(page);
        assert!(v.iter().any(|m| m.contains("restarted")), "{v:?}");
        // Raw quote inside a label value (unescaped).
        let page = "# HELP a_total A.\n# TYPE a_total counter\na_total{k=\"x\\qy\"} 1\n";
        let v = lint_exposition(page);
        assert!(v.iter().any(|m| m.contains("invalid escape")), "{v:?}");
        // Non-numeric value.
        let page = "# HELP g G.\n# TYPE g gauge\ng nope\n";
        let v = lint_exposition(page);
        assert!(v.iter().any(|m| m.contains("non-numeric")), "{v:?}");
    }

    #[test]
    fn running_jobs_expose_convergence_gauges() {
        let store = JobStore::new();
        let progress = Arc::new(StatsCollector::new());
        progress.record(&checkpoint_event(0, 49));
        progress.record(&checkpoint_event(1, 49));
        let mut record =
            JobRecord::new("job-7".into(), JobKind::Fit, "k".into(), JobStatus::Running);
        record.progress = Some(Arc::clone(&progress));
        store.insert(record);
        // A second running job with no progress attached is skipped.
        store.insert(JobRecord::new(
            "job-8".into(),
            JobKind::Fit,
            "k".into(),
            JobStatus::Running,
        ));

        let page = render_prometheus(
            &ServeMetrics::new(),
            &FitCache::new(),
            &StatsCollector::new(),
            &store,
            GaugeSnapshot {
                jobs_running: 2,
                ..GaugeSnapshot::default()
            },
            None,
        );
        assert!(page.contains("srm_serve_jobs_state{state=\"running\"} 2"));
        // Two chains at sweep 49 each → 100 sweeps completed.
        assert!(
            page.contains("srm_job_sweeps_completed{job=\"job-7\"} 100"),
            "{page}"
        );
        assert!(
            page.contains("srm_job_rhat{job=\"job-7\",parameter=\"residual\"}"),
            "{page}"
        );
        assert!(
            page.contains("srm_job_ess{job=\"job-7\",parameter=\"residual\"} 24"),
            "{page}"
        );
        // Two chains, 500 ms of sampling each: 24 ESS over one
        // CPU-second.
        assert!(
            page.contains("srm_job_ess_per_sec{job=\"job-7\",parameter=\"residual\"} 24"),
            "{page}"
        );
        assert!(!page.contains("job-8\"}"), "{page}");
    }

    #[test]
    fn wal_series_appear_when_a_state_dir_is_configured() {
        let page = render_prometheus(
            &ServeMetrics::new(),
            &FitCache::new(),
            &StatsCollector::new(),
            &JobStore::new(),
            GaugeSnapshot::default(),
            Some(WalStats {
                bytes: 88,
                records: 5,
                appended: 12,
                snapshots: 2,
                errors: 0,
            }),
        );
        assert!(page.contains("srm_wal_bytes 88"));
        assert!(page.contains("srm_wal_records_total 12"));
        assert!(page.contains("srm_store_snapshots_total 2"));
        assert!(page.contains("srm_store_errors_total 0"));
        assert_eq!(
            page.matches("# HELP").count(),
            page.matches("# TYPE").count()
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("line\nbreak"), "line\\nbreak");
    }
}
