//! The bounded job queue between the HTTP front end and the worker
//! pool.
//!
//! Backpressure lives here: [`JobQueue::push`] fails immediately with
//! [`PushError::Full`] when the queue is at capacity (the HTTP layer
//! turns that into `429 Too Many Requests` + `Retry-After`), and a
//! closed queue rejects new work while still draining what was
//! accepted — the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::job::JobSpec;

/// One accepted job waiting for a worker.
pub struct QueuedJob {
    /// Job id (`job-N`).
    pub id: String,
    /// The parsed request.
    pub spec: JobSpec,
    /// Cooperative deadline derived from the request's `timeout_ms`.
    pub deadline: Option<Instant>,
    /// Per-job trace sink opened at submit time, if tracing is on.
    pub trace: Option<std::sync::Arc<srm_obs::JsonlSink>>,
    /// When the job entered the queue (or re-entered it at boot
    /// recovery) — feeds the `queue-wait` phase of the server's
    /// profile.
    pub submitted: Instant,
}

impl std::fmt::Debug for QueuedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedJob").field("id", &self.id).finish()
    }
}

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — try again later (HTTP 429).
    Full,
    /// The queue is closed for new work (HTTP 503, shutting down).
    Closed,
}

struct Inner {
    items: VecDeque<QueuedJob>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO of accepted jobs.
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .finish()
    }
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl JobQueue {
    /// A queue holding at most `capacity` waiting jobs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, failing fast when full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`].
    pub fn push(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut inner = lock_ignoring_poison(&self.inner);
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the queue is closed *and*
    /// drained; `None` tells the worker to exit.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = lock_ignoring_poison(&self.inner);
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Enqueues a job recovered from the state directory at boot,
    /// bypassing the capacity check — recovered work was already
    /// accepted (and 201'd) in a previous life, so it must not be
    /// bounced by backpressure meant for *new* submissions.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`JobQueue::close`].
    pub fn requeue(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut inner = lock_ignoring_poison(&self.inner);
        if inner.closed {
            return Err(PushError::Closed);
        }
        inner.items.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Closes the queue: no new pushes, waiting jobs still drain.
    pub fn close(&self) {
        lock_ignoring_poison(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Number of jobs currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.inner).items.len()
    }

    /// The configured capacity (maximum waiting jobs for `push`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether no jobs are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use srm_obs::json::parse;

    fn spec() -> JobSpec {
        let body = parse(r#"{"kind":"fit","dataset":"short_campaign_25"}"#).unwrap();
        JobSpec::from_json(&body).unwrap()
    }

    fn job(id: &str) -> QueuedJob {
        QueuedJob {
            id: id.into(),
            spec: spec(),
            deadline: None,
            trace: None,
            submitted: Instant::now(),
        }
    }

    #[test]
    fn push_pop_is_fifo() {
        let q = JobQueue::new(4);
        q.push(job("a")).unwrap();
        q.push(job("b")).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().id, "a");
        assert_eq!(q.pop().unwrap().id, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects() {
        let q = JobQueue::new(1);
        q.push(job("a")).unwrap();
        assert_eq!(q.push(job("b")).unwrap_err(), PushError::Full);
    }

    #[test]
    fn requeue_bypasses_capacity_but_not_close() {
        let q = JobQueue::new(1);
        q.push(job("a")).unwrap();
        assert_eq!(q.push(job("b")).unwrap_err(), PushError::Full);
        q.requeue(job("recovered")).unwrap();
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.requeue(job("late")).unwrap_err(), PushError::Closed);
    }

    #[test]
    fn closed_queue_rejects_but_drains() {
        let q = JobQueue::new(4);
        q.push(job("a")).unwrap();
        q.close();
        assert_eq!(q.push(job("b")).unwrap_err(), PushError::Closed);
        assert_eq!(q.pop().unwrap().id, "a");
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_wakes_on_close() {
        let q = std::sync::Arc::new(JobQueue::new(2));
        let q2 = std::sync::Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop().is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap());
    }
}
