//! The HTTP server: accept loop, routing, worker pool, and the
//! graceful-shutdown drain.
//!
//! One thread owns a non-blocking [`TcpListener`] and polls it
//! alongside the shutdown flag; each accepted connection is handled
//! on a short-lived thread with both read and write timeouts, so a
//! slow or stalled client can delay only its own response, never the
//! accept loop or the other endpoints. Handler threads are capped —
//! beyond the cap the accept loop falls back to serial (inline)
//! handling, which the timeouts keep bounded. The expensive work
//! happens on the worker pool, which feeds off the bounded
//! [`JobQueue`]. On shutdown the accept loop stops taking
//! connections, joins in-flight handlers, closes the queue, and the
//! workers finish every job that was already accepted before
//! exiting — the drain contract documented in DESIGN.md §11.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use srm_obs::json::{parse, Value};
use srm_obs::{
    aggregate, build_info_value, ChainCheckpoint, Event, JsonlSink, Recorder, StatsCollector, Tee,
};

use crate::cache::FitCache;
use crate::engine::run_job;
use crate::http::{read_request, Request, Response};
use crate::job::{JobRecord, JobSpec, JobStatus, JobStore};
use crate::metrics::{render_prometheus, ServeMetrics};
use crate::queue::{JobQueue, PushError, QueuedJob};
use crate::signal;

/// How often the accept loop re-checks the shutdown flag while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// Per-connection read timeout (slow or silent clients).
const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Per-connection write timeout (clients that stop reading).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Cap on concurrent connection-handler threads; beyond it new
/// connections are handled inline on the accept thread.
const MAX_CONNECTION_THREADS: usize = 64;

/// A test latch that holds workers at the top of job execution.
///
/// While paused, every worker blocks in [`Gate::wait_ready`] right
/// after popping a job — the queue stays drained of exactly one job
/// per worker and nothing else moves. Tests use this to fill the
/// queue deterministically and assert the 429 backpressure path
/// without racing the workers.
#[derive(Debug, Default)]
pub struct Gate {
    paused: Mutex<bool>,
    ready: Condvar,
}

impl Gate {
    /// A new, open gate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Holds workers at the gate until [`Gate::release`].
    pub fn pause(&self) {
        *lock_ignoring_poison(&self.paused) = true;
    }

    /// Opens the gate and wakes every waiting worker.
    pub fn release(&self) {
        *lock_ignoring_poison(&self.paused) = false;
        self.ready.notify_all();
    }

    /// Blocks while the gate is paused.
    pub fn wait_ready(&self) {
        let mut paused = lock_ignoring_poison(&self.paused);
        while *paused {
            paused = self
                .ready
                .wait(paused)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it get 429.
    pub queue_capacity: usize,
    /// Directory for per-job trace and manifest files (created if
    /// missing). `None` disables per-job files.
    pub trace_dir: Option<String>,
    /// Value of the `Retry-After` header on 429 responses.
    pub retry_after_secs: u64,
    /// Max terminal (done/failed/cancelled) job records retained;
    /// the oldest are evicted first, so a very old job id eventually
    /// answers 404. Queued and running jobs are never evicted.
    pub job_history_limit: usize,
    /// Max result documents in the fit cache (FIFO eviction).
    pub cache_capacity: usize,
    /// Whether the accept loop also honours the process-wide
    /// [`signal`] flag (SIGTERM/SIGINT). CLI servers set this; tests
    /// use [`Server::request_shutdown`] so parallel servers don't
    /// shut each other down.
    pub watch_signals: bool,
    /// Optional worker latch for deterministic backpressure tests.
    pub gate: Option<Arc<Gate>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 16,
            trace_dir: None,
            retry_after_secs: 1,
            job_history_limit: 1_024,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            watch_signals: false,
            gate: None,
        }
    }
}

/// Shared state behind every server thread.
#[derive(Debug)]
pub struct ServerState {
    /// Every job the server has seen.
    pub store: JobStore,
    /// The bounded queue between the HTTP layer and the workers.
    pub queue: JobQueue,
    /// Content-addressed result cache.
    pub cache: FitCache,
    /// HTTP/job counters for `/metrics`.
    pub metrics: ServeMetrics,
    /// Engine-level aggregates teed from every job's recorder.
    pub stats: Arc<StatsCollector>,
    shutdown: AtomicBool,
    running: AtomicU64,
    trace_dir: Option<String>,
    retry_after_secs: u64,
    watch_signals: bool,
    gate: Option<Arc<Gate>>,
}

impl ServerState {
    /// Whether shutdown has begun.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || (self.watch_signals && signal::requested())
    }

    /// Jobs currently executing on workers.
    #[must_use]
    pub fn jobs_running(&self) -> u64 {
        self.running.load(Ordering::SeqCst)
    }

    fn trace_path(&self, id: &str) -> Option<String> {
        self.trace_dir
            .as_ref()
            .map(|dir| format!("{dir}/{id}.trace.jsonl"))
    }

    fn manifest_path(&self, id: &str) -> Option<String> {
        self.trace_dir
            .as_ref()
            .map(|dir| format!("{dir}/{id}.manifest.json"))
    }
}

/// A running estimation service.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the bind fails or the trace
    /// directory cannot be created.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        if let Some(dir) = &config.trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            store: JobStore::with_limit(config.job_history_limit),
            queue: JobQueue::new(config.queue_capacity),
            cache: FitCache::with_capacity(config.cache_capacity),
            metrics: ServeMetrics::new(),
            stats: Arc::new(StatsCollector::new()),
            shutdown: AtomicBool::new(false),
            running: AtomicU64::new(0),
            trace_dir: config.trace_dir,
            retry_after_secs: config.retry_after_secs,
            watch_signals: config.watch_signals,
            gate: config.gate,
        });

        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let worker_state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&worker_state))
            })
            .collect();
        Ok(Self {
            addr,
            state,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for inspection by tests and the CLI.
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Begins graceful shutdown: stop accepting, drain the queue.
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop has exited and every worker has
    /// drained; returns the final state for summary reporting.
    #[must_use]
    pub fn join(mut self) -> Arc<ServerState> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        Arc::clone(&self.state)
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        handlers.retain(|h| !h.is_finished());
        if state.shutting_down() {
            state.shutdown.store(true, Ordering::SeqCst);
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if handlers.len() >= MAX_CONNECTION_THREADS {
                    // Saturated: degrade to serial handling (the
                    // read/write timeouts bound the stall) rather
                    // than spawn without limit.
                    handle_connection(state, stream);
                } else {
                    let conn_state = Arc::clone(state);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(&conn_state, stream)
                    }));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Let in-flight responses finish (bounded by the timeouts), then
    // close the queue: new pushes are rejected but the workers finish
    // what was already accepted.
    for handler in handlers {
        let _ = handler.join();
    }
    state.queue.close();
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    state.metrics.http_requests.incr();
    let response = match read_request(&mut stream) {
        Ok(request) => route(state, &request),
        Err(e) => Response::error(400, "bad-request", &format!("malformed request: {e}")),
    };
    let _ = response.write_to(&mut stream);
}

fn route(state: &Arc<ServerState>, request: &Request) -> Response {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/v1/jobs") => submit_job(state, &request.body),
        ("GET", "/healthz") => health(state),
        ("GET", "/metrics") => Response::text(
            200,
            render_prometheus(
                &state.metrics,
                &state.cache,
                &state.stats,
                &state.store,
                state.queue.len(),
                state.jobs_running(),
            ),
        ),
        (method, _) => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                if let Some(id) = rest.strip_suffix("/progress") {
                    if method == "GET" {
                        job_progress(state, id)
                    } else {
                        Response::error(405, "method-not-allowed", "use GET")
                    }
                } else {
                    match method {
                        "GET" => job_status(state, rest),
                        "DELETE" => cancel_job(state, rest),
                        _ => Response::error(405, "method-not-allowed", "use GET or DELETE"),
                    }
                }
            } else if let Some(id) = path.strip_prefix("/v1/results/") {
                if method == "GET" {
                    job_result(state, id)
                } else {
                    Response::error(405, "method-not-allowed", "use GET")
                }
            } else if matches!(path, "/v1/jobs" | "/healthz" | "/metrics") {
                Response::error(405, "method-not-allowed", "wrong method for this path")
            } else {
                Response::error(404, "not-found", &format!("no route for `{path}`"))
            }
        }
    }
}

fn health(state: &Arc<ServerState>) -> Response {
    let (queued, running, done, failed, cancelled) = state.store.counts();
    let status = if state.shutting_down() {
        "draining"
    } else {
        "ok"
    };
    Response::json(
        200,
        &Value::obj(vec![
            ("status", Value::Str(status.to_owned())),
            ("build", build_info_value()),
            (
                "jobs",
                Value::obj(vec![
                    ("queued", Value::Num(queued as f64)),
                    ("running", Value::Num(running as f64)),
                    ("done", Value::Num(done as f64)),
                    ("failed", Value::Num(failed as f64)),
                    ("cancelled", Value::Num(cancelled as f64)),
                ]),
            ),
            ("queue_depth", Value::Num(state.queue.len() as f64)),
            ("jobs_running", Value::Num(state.jobs_running() as f64)),
        ]),
    )
}

fn submit_job(state: &Arc<ServerState>, body: &[u8]) -> Response {
    if state.shutting_down() {
        return Response::error(503, "shutting-down", "server is draining; retry elsewhere");
    }
    let text = String::from_utf8_lossy(body);
    let json = match parse(&text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, "bad-json", &format!("body is not JSON: {e}")),
    };
    let spec = match JobSpec::from_json(&json) {
        Ok(s) => s,
        Err(message) => return Response::error(400, "bad-request", &message),
    };
    let cache_key = spec.cache_key();

    if let Some(result) = state.cache.lookup(&cache_key) {
        return serve_from_cache(state, &spec, &cache_key, result);
    }

    let id = state.store.allocate_id();
    let mut record = JobRecord::new(id.clone(), spec.kind, cache_key.clone(), JobStatus::Queued);
    record.cached = false;
    state.store.insert(record);

    let trace = open_trace(state, &id);
    let recorder = job_recorder(state, trace.as_ref());
    recorder.record(&Event::JobStart {
        job_id: id.clone(),
        kind: spec.kind.label().to_owned(),
        cache_key: cache_key.clone(),
    });
    recorder.record(&Event::CacheMiss {
        cache_key: cache_key.clone(),
    });

    let deadline = spec
        .timeout_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let push = state.queue.push(QueuedJob {
        id: id.clone(),
        spec,
        deadline,
        trace,
    });
    match push {
        Ok(()) => {
            state.metrics.jobs_submitted.incr();
            Response::json(
                202,
                &Value::obj(vec![
                    ("id", Value::Str(id)),
                    ("status", Value::Str("queued".to_owned())),
                    ("cached", Value::Bool(false)),
                    ("cache_key", Value::Str(cache_key)),
                ]),
            )
        }
        Err(reject) => {
            state.store.remove(&id);
            if let Some(path) = state.trace_path(&id) {
                let _ = std::fs::remove_file(path);
            }
            match reject {
                PushError::Full => {
                    state.metrics.jobs_rejected.incr();
                    Response::error(429, "queue-full", "job queue is at capacity; retry later")
                        .with_header("Retry-After", &state.retry_after_secs.to_string())
                }
                PushError::Closed => {
                    Response::error(503, "shutting-down", "server is draining; retry elsewhere")
                }
            }
        }
    }
}

fn serve_from_cache(
    state: &Arc<ServerState>,
    spec: &JobSpec,
    cache_key: &str,
    result: Value,
) -> Response {
    let id = state.store.allocate_id();
    let mut record = JobRecord::new(id.clone(), spec.kind, cache_key.to_owned(), JobStatus::Done);
    record.cached = true;
    record.result = Some(result);
    state.store.insert(record);
    state.metrics.jobs_submitted.incr();
    state.metrics.jobs_done.incr();

    let trace = open_trace(state, &id);
    let recorder = job_recorder(state, trace.as_ref());
    recorder.record(&Event::JobStart {
        job_id: id.clone(),
        kind: spec.kind.label().to_owned(),
        cache_key: cache_key.to_owned(),
    });
    recorder.record(&Event::CacheHit {
        cache_key: cache_key.to_owned(),
    });
    recorder.record(&Event::JobDone {
        job_id: id.clone(),
        status: "done".to_owned(),
        cached: true,
        wall_ms: 0.0,
    });
    if let Some(sink) = trace {
        let _ = sink.flush();
    }

    Response::json(
        201,
        &Value::obj(vec![
            ("id", Value::Str(id)),
            ("status", Value::Str("done".to_owned())),
            ("cached", Value::Bool(true)),
            ("cache_key", Value::Str(cache_key.to_owned())),
        ]),
    )
}

fn open_trace(state: &Arc<ServerState>, id: &str) -> Option<Arc<JsonlSink>> {
    let path = state.trace_path(id)?;
    JsonlSink::create(&path).ok().map(Arc::new)
}

fn job_recorder(state: &Arc<ServerState>, trace: Option<&Arc<JsonlSink>>) -> Tee {
    let mut sinks: Vec<Arc<dyn Recorder>> = vec![Arc::clone(&state.stats) as Arc<dyn Recorder>];
    if let Some(sink) = trace {
        sinks.push(Arc::clone(sink) as Arc<dyn Recorder>);
    }
    Tee::new(sinks)
}

fn job_status(state: &Arc<ServerState>, id: &str) -> Response {
    state.store.get(id).map_or_else(
        || Response::error(404, "not-found", &format!("unknown job `{id}`")),
        |record| Response::json(200, &record.status_value()),
    )
}

/// `GET /v1/jobs/{id}/progress` — the job's live convergence state:
/// sweeps completed, the latest per-chain checkpoint payloads, and
/// the cross-chain aggregate (R̂, split-R̂, ESS, MCSE). A queued job
/// (or a cache hit, which never samples) reports zero sweeps and
/// empty arrays; a finished job keeps reporting its final checkpoint.
fn job_progress(state: &Arc<ServerState>, id: &str) -> Response {
    let Some(record) = state.store.get(id) else {
        return Response::error(404, "not-found", &format!("unknown job `{id}`"));
    };
    let (sweeps, seen, chains, diagnostics) = match &record.progress {
        Some(stats) => {
            let latest = stats.latest_checkpoints();
            let refs: Vec<&ChainCheckpoint> = latest.iter().collect();
            let diagnostics = aggregate(&refs);
            (
                stats.sweeps_completed(),
                stats.checkpoints_seen(),
                latest,
                diagnostics,
            )
        }
        None => (0, 0, Vec::new(), Vec::new()),
    };
    let chain_values: Vec<Value> = chains
        .iter()
        .map(|c| {
            Value::obj(vec![
                ("chain", Value::Num(c.chain as f64)),
                ("sweep", Value::Num(c.sweep as f64)),
                ("kept", Value::Num(c.kept as f64)),
                (
                    "params",
                    Value::Arr(c.params.iter().map(|p| p.to_value()).collect()),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        &Value::obj(vec![
            ("id", Value::Str(record.id.clone())),
            ("status", Value::Str(record.status.label().to_owned())),
            ("sweeps_completed", Value::Num(sweeps as f64)),
            ("checkpoints_seen", Value::Num(seen as f64)),
            ("chains", Value::Arr(chain_values)),
            (
                "aggregate",
                Value::Arr(diagnostics.iter().map(|d| d.to_value()).collect()),
            ),
        ]),
    )
}

fn job_result(state: &Arc<ServerState>, id: &str) -> Response {
    let Some(record) = state.store.get(id) else {
        return Response::error(404, "not-found", &format!("unknown job `{id}`"));
    };
    match record.status {
        JobStatus::Queued | JobStatus::Running => Response::json(202, &record.status_value()),
        JobStatus::Cancelled => Response::error(410, "cancelled", "job was cancelled"),
        JobStatus::Failed => {
            let (kind, message) = record
                .error
                .unwrap_or_else(|| ("unknown".to_owned(), "job failed".to_owned()));
            Response::error(500, &kind, &message)
        }
        JobStatus::Done => match record.result {
            Some(result) => Response::json(200, &result),
            None => Response::error(500, "missing-result", "done job has no stored result"),
        },
    }
}

fn cancel_job(state: &Arc<ServerState>, id: &str) -> Response {
    let outcome = state.store.with(id, |record| match record.status {
        JobStatus::Queued => {
            record.cancel_requested = true;
            record.status = JobStatus::Cancelled;
            (200, "cancelled")
        }
        JobStatus::Running => {
            record.cancel_requested = true;
            (202, "cancelling")
        }
        JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled => (409, "finished"),
    });
    match outcome {
        None => Response::error(404, "not-found", &format!("unknown job `{id}`")),
        Some((409, _)) => Response::error(
            409,
            "already-finished",
            "job already reached a terminal state",
        ),
        Some((status, label)) => {
            if status == 200 {
                state.metrics.jobs_cancelled.incr();
            }
            Response::json(
                status,
                &Value::obj(vec![
                    ("id", Value::Str(id.to_owned())),
                    ("status", Value::Str(label.to_owned())),
                ]),
            )
        }
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        if let Some(gate) = &state.gate {
            gate.wait_ready();
        }
        execute(state, &job);
    }
}

fn execute(state: &Arc<ServerState>, job: &QueuedJob) {
    let recorder = job_recorder(state, job.trace.as_ref());
    // Claim the job; a DELETE that landed while it was queued already
    // moved it to Cancelled (and counted it), so just acknowledge.
    let claimed = state
        .store
        .with(&job.id, |record| {
            if record.status == JobStatus::Cancelled || record.cancel_requested {
                record.status = JobStatus::Cancelled;
                false
            } else {
                record.status = JobStatus::Running;
                true
            }
        })
        .unwrap_or(false);
    if !claimed {
        finish(job, &recorder, "cancelled", 0.0);
        return;
    }

    state.running.fetch_add(1, Ordering::SeqCst);
    let per_job = Arc::new(StatsCollector::new());
    // Attach the job's collector to its record so the progress
    // endpoint and the per-job /metrics gauges can read the streaming
    // checkpoints while the sampler runs.
    state.store.with(&job.id, |record| {
        record.progress = Some(Arc::clone(&per_job));
    });
    let mut sinks: Vec<Arc<dyn Recorder>> = vec![
        Arc::clone(&state.stats) as Arc<dyn Recorder>,
        Arc::clone(&per_job) as Arc<dyn Recorder>,
    ];
    if let Some(sink) = &job.trace {
        sinks.push(Arc::clone(sink) as Arc<dyn Recorder>);
    }
    let engine_recorder = Tee::new(sinks);
    let started = Instant::now();
    let outcome = run_job(&job.spec, job.deadline, &engine_recorder);
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    state.running.fetch_sub(1, Ordering::SeqCst);

    let cancel_requested = state.store.get(&job.id).is_some_and(|r| r.cancel_requested);
    if cancel_requested {
        // The result is discarded, not cached: the client asked for
        // the job to die and must not observe a partial success.
        state.store.with(&job.id, |record| {
            record.status = JobStatus::Cancelled;
            record.wall_ms = wall_ms;
        });
        state.metrics.jobs_cancelled.incr();
        finish(job, &recorder, "cancelled", wall_ms);
        return;
    }

    match outcome {
        Ok(output) => {
            state
                .cache
                .insert(&job.spec.cache_key(), output.result.clone());
            state.store.with(&job.id, |record| {
                record.status = JobStatus::Done;
                record.result = Some(output.result.clone());
                record.wall_ms = wall_ms;
            });
            state.metrics.jobs_done.incr();
            state.metrics.job_wall_ms.observe(wall_ms);
            if let Some(path) = state.manifest_path(&job.id) {
                let mut manifest = output.manifest;
                manifest.fill_from_stats(&per_job, output.kept_draws);
                let _ = manifest.write(&path);
            }
            finish(job, &recorder, "done", wall_ms);
        }
        Err(error) => {
            state.store.with(&job.id, |record| {
                record.status = JobStatus::Failed;
                record.error = Some((error.kind().to_owned(), error.to_string()));
                record.wall_ms = wall_ms;
            });
            state.metrics.jobs_failed.incr();
            finish(job, &recorder, "failed", wall_ms);
        }
    }
}

fn finish(job: &QueuedJob, recorder: &Tee, status: &str, wall_ms: f64) {
    recorder.record(&Event::JobDone {
        job_id: job.id.clone(),
        status: status.to_owned(),
        cached: false,
        wall_ms,
    });
    if let Some(sink) = &job.trace {
        let _ = sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    pub(crate) fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: srm\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let payload = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, payload)
    }

    #[test]
    fn healthz_reports_build_and_counts() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (status, body) = http(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert!(doc.get("build").unwrap().get("crate_version").is_some());
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn unknown_routes_and_methods_are_rejected() {
        let server = Server::start(ServerConfig::default()).unwrap();
        assert_eq!(http(server.addr(), "GET", "/nope", "").0, 404);
        assert_eq!(http(server.addr(), "PUT", "/healthz", "").0, 405);
        assert_eq!(http(server.addr(), "PATCH", "/v1/jobs/job-1", "").0, 405);
        assert_eq!(http(server.addr(), "GET", "/v1/jobs/job-9", "").0, 404);
        assert_eq!(http(server.addr(), "GET", "/v1/results/job-9", "").0, 404);
        assert_eq!(http(server.addr(), "DELETE", "/v1/jobs/job-9", "").0, 404);
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn bad_submissions_get_400() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (status, body) = http(server.addr(), "POST", "/v1/jobs", "not json");
        assert_eq!(status, 400);
        assert!(body.contains("bad-json"));
        let (status, body) = http(server.addr(), "POST", "/v1/jobs", r#"{"kind":"fit"}"#);
        assert_eq!(status, 400);
        assert!(body.contains("missing data"));
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn submit_poll_and_fetch_a_fit_job() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/v1/jobs",
            r#"{"kind":"fit","dataset":"short_campaign_25","model":"model0",
                "chains":1,"samples":120,"burn_in":40,"seed":9}"#,
        );
        assert_eq!(status, 202);
        let id = parse(&body)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (_, status_body) = http(server.addr(), "GET", &format!("/v1/jobs/{id}"), "");
            let label = parse(&status_body)
                .unwrap()
                .get("status")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned();
            if label == "done" {
                break;
            }
            assert_ne!(label, "failed", "{status_body}");
            assert!(Instant::now() < deadline, "job did not finish in time");
            std::thread::sleep(Duration::from_millis(20));
        }
        let (status, result) = http(server.addr(), "GET", &format!("/v1/results/{id}"), "");
        assert_eq!(status, 200);
        let doc = parse(&result).unwrap();
        assert!(doc
            .get("residual")
            .unwrap()
            .get("mean")
            .unwrap()
            .as_f64()
            .is_some());
        let (status, page) = http(server.addr(), "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(page.contains("srm_serve_jobs_done_total 1"));
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn cancel_of_queued_job_is_immediate() {
        // A paused gate keeps the single worker busy with nothing —
        // the submitted job stays queued until we cancel it.
        let gate = Arc::new(Gate::new());
        gate.pause();
        let server = Server::start(ServerConfig {
            workers: 1,
            gate: Some(Arc::clone(&gate)),
            ..ServerConfig::default()
        })
        .unwrap();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/v1/jobs",
            r#"{"kind":"fit","dataset":"short_campaign_25","chains":1,"samples":100,"burn_in":40}"#,
        );
        assert_eq!(status, 202);
        let id = parse(&body)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let (status, _) = http(server.addr(), "DELETE", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200);
        let (status, _) = http(server.addr(), "GET", &format!("/v1/results/{id}"), "");
        assert_eq!(status, 410);
        let (status, _) = http(server.addr(), "DELETE", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 409);
        gate.release();
        server.request_shutdown();
        let state = server.join();
        assert_eq!(state.metrics.jobs_cancelled.get(), 1);
    }
}
