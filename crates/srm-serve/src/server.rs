//! The HTTP server: accept loop, connection scheduler, routing,
//! worker pool, and the graceful-shutdown drain.
//!
//! One thread owns a non-blocking [`TcpListener`] and polls it
//! alongside the shutdown flag. Accepted connections go onto a
//! **bounded connection queue** serviced by a fixed pool of reusable
//! handler threads — when the queue is full the accept thread answers
//! 503 inline and moves on, and a connection that sat in the queue
//! longer than the reap threshold is answered 503 without being read.
//! Ten thousand slow pollers therefore cost at most `conn_backlog`
//! queue slots and `http_handlers` threads, never a thread apiece.
//! Each serviced connection gets read and write timeouts, so a
//! stalled client can delay only its own handler.
//!
//! The expensive work happens on the worker pool, which feeds off the
//! bounded [`JobQueue`]. With a `state_dir` configured, every job
//! transition is appended to the write-ahead log (see
//! [`crate::store`]) and boot replays it — completed results and
//! cache entries survive `kill -9`, and in-flight jobs are re-queued.
//! On shutdown the accept loop stops taking connections, the handler
//! pool drains, the job queue closes, the workers finish every job
//! that was already accepted, and a final snapshot is written — the
//! drain contract documented in DESIGN.md §11 and §13.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use srm_obs::json::{parse, Value};
use srm_obs::{
    aggregate, build_info_value, flightrec, process_trace_id, ChainCheckpoint, Event,
    FlightRecorder, JsonlSink, Recorder, StatsCollector, Tee, TraceId, TRACE_HEADER,
};
use srm_store::SyncPolicy;

use crate::access_log::{AccessLog, DEFAULT_ACCESS_LOG_MAX_BYTES};
use crate::batch::{BatchItemRef, BatchRecord, BatchStore};
use crate::cache::FitCache;
use crate::engine::run_job;
use crate::http::{read_request, Request, Response};
use crate::job::{JobRecord, JobSpec, JobStatus, JobStore, DEFAULT_SHARDS};
use crate::metrics::{render_prometheus, GaugeSnapshot, ServeMetrics};
use crate::queue::{JobQueue, PushError, QueuedJob};
use crate::signal;
use crate::store::{Persister, DEFAULT_SNAPSHOT_EVERY};

/// How often the accept loop re-checks the shutdown flag while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// Per-connection read timeout (slow or silent clients).
const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Per-connection write timeout (clients that stop reading).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// A connection that waited longer than this in the accept queue is
/// reaped with 503 instead of being read — its client has either
/// timed out already or is part of a flood worth shedding.
const CONN_REAP_AFTER: Duration = Duration::from_secs(10);

/// A bounded FIFO of accepted-but-unserviced connections, between the
/// accept thread and the handler pool.
#[derive(Debug, Default)]
struct ConnQueue {
    inner: Mutex<ConnInner>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct ConnInner {
    items: VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl ConnQueue {
    /// Enqueues an accepted connection; gives the stream back when
    /// the queue is full or closed so the caller can shed it.
    fn push(&self, stream: TcpStream, capacity: usize) -> Result<(), TcpStream> {
        let mut inner = lock_ignoring_poison(&self.inner);
        if inner.closed || inner.items.len() >= capacity {
            return Err(stream);
        }
        inner.items.push_back((stream, Instant::now()));
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available or the queue is closed
    /// *and* drained; `None` tells the handler to exit.
    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut inner = lock_ignoring_poison(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock_ignoring_poison(&self.inner).closed = true;
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        lock_ignoring_poison(&self.inner).items.len()
    }
}

/// A test latch that holds workers at the top of job execution.
///
/// While paused, every worker blocks in [`Gate::wait_ready`] right
/// after popping a job — the queue stays drained of exactly one job
/// per worker and nothing else moves. Tests use this to fill the
/// queue deterministically and assert the 429 backpressure path
/// without racing the workers.
#[derive(Debug, Default)]
pub struct Gate {
    paused: Mutex<bool>,
    ready: Condvar,
}

impl Gate {
    /// A new, open gate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Holds workers at the gate until [`Gate::release`].
    pub fn pause(&self) {
        *lock_ignoring_poison(&self.paused) = true;
    }

    /// Opens the gate and wakes every waiting worker.
    pub fn release(&self) {
        *lock_ignoring_poison(&self.paused) = false;
        self.ready.notify_all();
    }

    /// Blocks while the gate is paused.
    pub fn wait_ready(&self) {
        let mut paused = lock_ignoring_poison(&self.paused);
        while *paused {
            paused = self
                .ready
                .wait(paused)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it get 429.
    pub queue_capacity: usize,
    /// Directory for per-job trace and manifest files (created if
    /// missing). `None` disables per-job files.
    pub trace_dir: Option<String>,
    /// Value of the `Retry-After` header on 429 responses.
    pub retry_after_secs: u64,
    /// Max terminal (done/failed/cancelled) job records retained;
    /// the oldest are evicted first, so a very old job id eventually
    /// answers 404. Queued and running jobs are never evicted.
    pub job_history_limit: usize,
    /// Max result documents in the fit cache (LRU eviction).
    pub cache_capacity: usize,
    /// State directory for the write-ahead log and snapshots.
    /// `None` disables persistence (memory-only, the pre-durability
    /// behaviour).
    pub state_dir: Option<String>,
    /// When WAL appends reach stable storage. [`SyncPolicy::Never`]
    /// survives SIGKILL (the kernel holds the bytes);
    /// [`SyncPolicy::Always`] also survives power loss.
    pub wal_sync: SyncPolicy,
    /// WAL appends between snapshots (snapshot + log truncation).
    pub snapshot_every: u64,
    /// Lock shards for the job store and fit cache.
    pub shards: usize,
    /// Reusable connection-handler threads servicing the accept
    /// queue.
    pub http_handlers: usize,
    /// Bounded accept-queue capacity; beyond it new connections are
    /// answered 503 inline.
    pub conn_backlog: usize,
    /// Whether the accept loop also honours the process-wide
    /// [`signal`] flag (SIGTERM/SIGINT). CLI servers set this; tests
    /// use [`Server::request_shutdown`] so parallel servers don't
    /// shut each other down.
    pub watch_signals: bool,
    /// Optional worker latch for deterministic backpressure tests.
    pub gate: Option<Arc<Gate>>,
    /// Structured JSONL access-log path; `None` disables the log.
    pub access_log: Option<String>,
    /// Rotate the access log before it would exceed this many bytes.
    pub access_log_max_bytes: u64,
    /// Turn on the process-global flight recorder (see
    /// [`srm_obs::flightrec`]) and tee every job's events into it.
    pub flight_recorder: bool,
    /// Per-thread flight-recorder ring capacity.
    pub flightrec_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 16,
            trace_dir: None,
            retry_after_secs: 1,
            job_history_limit: 1_024,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            state_dir: None,
            wal_sync: SyncPolicy::Never,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            shards: DEFAULT_SHARDS,
            http_handlers: 8,
            conn_backlog: 256,
            watch_signals: false,
            gate: None,
            access_log: None,
            access_log_max_bytes: DEFAULT_ACCESS_LOG_MAX_BYTES,
            flight_recorder: false,
            flightrec_capacity: srm_obs::DEFAULT_FLIGHTREC_CAPACITY,
        }
    }
}

/// Shared state behind every server thread.
#[derive(Debug)]
pub struct ServerState {
    /// Every job the server has seen.
    pub store: JobStore,
    /// The bounded queue between the HTTP layer and the workers.
    pub queue: JobQueue,
    /// Content-addressed result cache.
    pub cache: FitCache,
    /// Batch registry: batch ids, member jobs, and the reverse index
    /// from job ids to batches awaiting them.
    pub batches: BatchStore,
    /// HTTP/job counters for `/metrics`.
    pub metrics: ServeMetrics,
    /// Engine-level aggregates teed from every job's recorder.
    pub stats: Arc<StatsCollector>,
    /// Request-lifecycle phase profiler (queue-wait, fit, serialize,
    /// wal-append) feeding the `/metrics` phase gauges.
    pub profiler: Arc<srm_obs::Profiler>,
    /// When the server started — `/metrics` uptime gauge.
    started: Instant,
    /// Structured per-request JSONL log; `None` when disabled.
    pub access_log: Option<AccessLog>,
    /// Where flight-recorder dumps land (state dir, else trace dir);
    /// `None` disables dumps.
    flightrec_dir: Option<std::path::PathBuf>,
    /// The WAL + snapshot layer; `None` without a `state_dir`.
    persister: Option<Persister>,
    conns: ConnQueue,
    conn_backlog: usize,
    shutdown: AtomicBool,
    running: AtomicU64,
    trace_dir: Option<String>,
    retry_after_secs: u64,
    watch_signals: bool,
    gate: Option<Arc<Gate>>,
}

impl ServerState {
    /// Whether shutdown has begun.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || (self.watch_signals && signal::requested())
    }

    /// Jobs currently executing on workers.
    #[must_use]
    pub fn jobs_running(&self) -> u64 {
        self.running.load(Ordering::SeqCst)
    }

    /// Seconds since the server booted.
    #[must_use]
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn trace_path(&self, id: &str) -> Option<String> {
        self.trace_dir
            .as_ref()
            .map(|dir| format!("{dir}/{id}.trace.jsonl"))
    }

    fn manifest_path(&self, id: &str) -> Option<String> {
        self.trace_dir
            .as_ref()
            .map(|dir| format!("{dir}/{id}.manifest.json"))
    }

    /// The persistence layer's counters, when a state dir is set.
    #[must_use]
    pub fn wal_stats(&self) -> Option<crate::store::WalStats> {
        self.persister.as_ref().map(Persister::stats)
    }

    /// Dumps the flight recorder into the configured dump directory.
    /// `None` when the recorder is off or no directory is configured;
    /// a failed write is already counted by the recorder (degradation
    /// policy: count, keep serving).
    pub fn dump_flightrec(&self, reason: &str) -> Option<std::path::PathBuf> {
        if !flightrec::enabled() {
            return None;
        }
        let dir = self.flightrec_dir.as_ref()?;
        flightrec::dump_to_dir(dir, reason).ok()
    }

    /// Logs a terminal transition for `id` and snapshots if the
    /// cadence is due. No-op without a state dir.
    fn persist_terminal(&self, id: &str) {
        if let Some(persister) = &self.persister {
            if let Some(record) = self.store.get(id) {
                persister.record_terminal(&record);
                persister.maybe_snapshot(&self.store, &self.cache, &self.batches);
            }
        }
    }
}

/// A running estimation service.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the accept loop, the connection
    /// handler pool, and the worker pool. With a `state_dir`, first
    /// recovers persisted state (snapshot + WAL replay), re-queues
    /// jobs that were in flight when the previous process died, and
    /// compacts the log.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the bind fails or the trace or
    /// state directory cannot be initialised.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        if let Some(dir) = &config.trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        let mut recovered = crate::store::RecoveredState::default();
        let persister = match &config.state_dir {
            Some(dir) => {
                let (persister, state) = Persister::open(
                    std::path::Path::new(dir),
                    config.wal_sync,
                    config.snapshot_every,
                )?;
                recovered = state;
                Some(persister)
            }
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let store = JobStore::with_limit_and_shards(config.job_history_limit, config.shards);
        let cache = FitCache::with_capacity_and_shards(config.cache_capacity, config.shards);
        for record in recovered.jobs.drain(..) {
            store.insert(record);
        }
        store.set_next_id(recovered.next_id);
        for (key, result) in recovered.cache.drain(..) {
            cache.insert(&key, result);
        }
        // Rebuild the batch registry. A batch's `remaining` count is
        // runtime state: recompute it as the distinct member jobs that
        // are not terminal in the recovered store (in-flight jobs were
        // reset to queued above and will be re-queued below).
        let batches = BatchStore::new();
        for wire in recovered.batches.drain(..) {
            let Some(record) = BatchRecord::from_wire(&wire) else {
                continue;
            };
            let mut pending: Vec<String> = Vec::new();
            for item in &record.items {
                if !pending.contains(&item.job_id)
                    && store
                        .get(&item.job_id)
                        .is_some_and(|r| !r.status.is_terminal())
                {
                    pending.push(item.job_id.clone());
                }
            }
            batches.insert(record, &pending);
        }
        batches.set_next_id(recovered.next_batch_id);

        let flightrec_dir = config
            .state_dir
            .clone()
            .or_else(|| config.trace_dir.clone())
            .map(std::path::PathBuf::from);
        if config.flight_recorder {
            flightrec::enable(config.flightrec_capacity);
            if let Some(dir) = &flightrec_dir {
                // One hook per process: every server sharing the
                // process also shares the global recorder.
                static PANIC_HOOK: std::sync::Once = std::sync::Once::new();
                let dir = dir.clone();
                PANIC_HOOK.call_once(move || flightrec::install_panic_hook(dir));
            }
        }

        let state = Arc::new(ServerState {
            store,
            queue: JobQueue::new(config.queue_capacity),
            cache,
            batches,
            metrics: ServeMetrics::new(),
            stats: Arc::new(StatsCollector::new()),
            profiler: Arc::new(srm_obs::Profiler::new()),
            started: Instant::now(),
            access_log: config
                .access_log
                .map(|path| AccessLog::new(path, config.access_log_max_bytes)),
            flightrec_dir,
            persister,
            conns: ConnQueue::default(),
            conn_backlog: config.conn_backlog.max(1),
            shutdown: AtomicBool::new(false),
            running: AtomicU64::new(0),
            trace_dir: config.trace_dir,
            retry_after_secs: config.retry_after_secs,
            watch_signals: config.watch_signals,
            gate: config.gate,
        });

        // Re-queue work that was queued or running when the previous
        // process died. Deadlines restart from boot: the original
        // submit time died with the old process, and punishing a
        // recovered job for downtime it did not cause would make
        // recovery lossy.
        for (id, spec) in recovered.pending.drain(..) {
            let trace = open_trace(&state, &id, trace_id_of(&spec));
            let deadline = spec
                .timeout_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            let _ = state.queue.requeue(QueuedJob {
                id,
                spec,
                deadline,
                trace,
                submitted: Instant::now(),
            });
        }
        // Boot-time compaction: fold the replayed WAL into a fresh
        // snapshot so the next crash replays a short log.
        if let Some(persister) = &state.persister {
            persister.snapshot_now(&state.store, &state.cache, &state.batches);
        }

        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        let handlers = (0..config.http_handlers.max(1))
            .map(|_| {
                let handler_state = Arc::clone(&state);
                std::thread::spawn(move || handler_loop(&handler_state))
            })
            .collect();
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let worker_state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&worker_state))
            })
            .collect();
        Ok(Self {
            addr,
            state,
            accept: Some(accept),
            handlers,
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for inspection by tests and the CLI.
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Begins graceful shutdown: stop accepting, drain the queue.
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop, handler pool, and worker pool
    /// have drained (in that order), writes a final snapshot, and
    /// returns the final state for summary reporting.
    #[must_use]
    pub fn join(mut self) -> Arc<ServerState> {
        // The accept loop exits on shutdown and closes the conn
        // queue; the handlers drain what was already accepted.
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
        // Only then close the job queue: a submission a handler was
        // still writing is either on the queue (drained below) or was
        // rejected — never silently dropped.
        self.state.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(persister) = &self.state.persister {
            persister.snapshot_now(&self.state.store, &self.state.cache, &self.state.batches);
        }
        // Preserve the tail of the event stream across restarts: the
        // drain dump is what `srm trace grep` stitches into a timeline
        // when a SIGTERM interrupted an investigation.
        let _ = self.state.dump_flightrec("drain");
        Arc::clone(&self.state)
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        if state.shutting_down() {
            state.shutdown.store(true, Ordering::SeqCst);
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(stream) = state.conns.push(stream, state.conn_backlog) {
                    // Accept queue full: shed the connection with an
                    // inline best-effort 503 — cheaper than parsing
                    // its request, and the client learns to back off.
                    state.metrics.conns_rejected.incr();
                    shed_connection(stream, "overloaded", "accept queue is full; retry later");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Wake the handler pool; it drains already-accepted connections
    // (bounded by the timeouts) and exits.
    state.conns.close();
}

/// One reusable connection-handler thread: pops accepted connections,
/// reaps the ones that waited past the threshold, services the rest.
fn handler_loop(state: &Arc<ServerState>) {
    while let Some((stream, accepted_at)) = state.conns.pop() {
        let queue_wait = accepted_at.elapsed();
        if queue_wait > CONN_REAP_AFTER {
            state.metrics.conns_reaped.incr();
            shed_connection(stream, "overloaded", "connection waited too long; retry");
            continue;
        }
        handle_connection(state, stream, queue_wait);
    }
}

/// Writes a 503 without reading the request; used for load shedding,
/// where spending read-timeout seconds on the victim would defeat the
/// point.
fn shed_connection(mut stream: TcpStream, kind: &str, message: &str) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = Response::error(503, kind, message)
        .with_header("Connection", "close")
        .write_to(&mut stream);
}

/// Per-request correlation context threaded through [`route`]: the
/// minted trace id plus the flags the access log needs after the
/// handler returns.
struct RequestCtx {
    trace_id: TraceId,
    cache_hit: std::cell::Cell<bool>,
}

/// The request's trace id: the inbound `x-srm-trace-id` header when it
/// parses, else an id derived from the request's content hash (FNV-1a
/// over method, path, and body) and the per-boot nonce. Derivation is
/// deterministic — identical content in the same boot maps to the same
/// id — and never consumes sampler randomness.
fn mint_trace_id(request: &Request) -> TraceId {
    if let Some(id) = request.header(TRACE_HEADER).and_then(TraceId::parse) {
        return id;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for bytes in [
        request.method.as_bytes(),
        b"\n",
        request.path.as_bytes(),
        b"\n",
        request.body.as_slice(),
    ] {
        for &b in bytes {
            hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    TraceId::derive(hash, srm_obs::boot_nonce())
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream, queue_wait: Duration) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    state.metrics.http_requests.incr();
    let handle_started = Instant::now();
    let (response, method, path, trace_id, cache_hit) = match read_request(&mut stream) {
        Ok(request) => {
            let ctx = RequestCtx {
                trace_id: mint_trace_id(&request),
                cache_hit: std::cell::Cell::new(false),
            };
            let response = route(state, &request, &ctx);
            (
                response,
                request.method,
                request.path,
                ctx.trace_id,
                ctx.cache_hit.get(),
            )
        }
        Err(e) => (
            Response::error(400, "bad-request", &format!("malformed request: {e}")),
            "?".to_owned(),
            "?".to_owned(),
            process_trace_id(),
            false,
        ),
    };
    let trace_hex = trace_id.to_hex();
    // Echo the id so clients learn derived ids without grepping logs.
    let response = response.with_header(TRACE_HEADER, &trace_hex);
    let handle_ns = u64::try_from(handle_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let serialize_started = Instant::now();
    let _ = response.write_to(&mut stream);
    let serialize_ns = u64::try_from(serialize_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let queue_ns = u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX);
    state
        .profiler
        .record_ns_for("http/queue-wait", queue_ns, Some(&trace_hex));
    state
        .profiler
        .record_ns_for("http/handle", handle_ns, Some(&trace_hex));
    state
        .profiler
        .record_ns_for("http/serialize", serialize_ns, Some(&trace_hex));
    let access = Event::Access {
        method,
        path,
        status: response.status,
        bytes: response.body.len() as u64,
        cache_hit,
        queue_wait_ms: queue_ns as f64 / 1e6,
        engine_ms: handle_ns as f64 / 1e6,
        serialize_ms: serialize_ns as f64 / 1e6,
    };
    if let Some(log) = &state.access_log {
        log.log(&trace_hex, &access);
    }
    flightrec::record_event(&access, &trace_hex);
}

fn route(state: &Arc<ServerState>, request: &Request, ctx: &RequestCtx) -> Response {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/v1/jobs") => submit_job(state, &request.body, ctx),
        ("POST", "/v1/batches") => submit_batch(state, &request.body, ctx),
        ("GET", "/healthz") => health(state),
        ("GET", "/v1/debug/profile") => debug_profile(state),
        ("GET", "/v1/debug/events") => debug_events(state),
        ("GET", "/v1/debug/queue") => debug_queue(state),
        ("GET", "/v1/debug/store") => debug_store(state),
        ("POST", "/v1/debug/flightrec") => debug_flightrec_dump(state),
        ("GET", "/metrics") => Response::text(
            200,
            render_prometheus(
                &state.metrics,
                &state.cache,
                &state.stats,
                &state.store,
                GaugeSnapshot {
                    queue_depth: state.queue.len(),
                    jobs_running: state.jobs_running(),
                    conn_queue_depth: state.conns.len(),
                    uptime_secs: state.uptime_secs(),
                    phases: state.profiler.snapshot(),
                    batches_active: state.batches.active(),
                    access_log: state.access_log.as_ref().map(AccessLog::stats),
                    flightrec: flightrec::stats(),
                },
                state.wal_stats(),
            ),
        ),
        (method, _) => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                if let Some(id) = rest.strip_suffix("/progress") {
                    if method == "GET" {
                        job_progress(state, id)
                    } else {
                        Response::error(405, "method-not-allowed", "use GET")
                    }
                } else {
                    match method {
                        "GET" => job_status(state, rest),
                        "DELETE" => cancel_job(state, rest),
                        _ => Response::error(405, "method-not-allowed", "use GET or DELETE"),
                    }
                }
            } else if let Some(id) = path.strip_prefix("/v1/results/") {
                if method == "GET" {
                    job_result(state, id)
                } else {
                    Response::error(405, "method-not-allowed", "use GET")
                }
            } else if let Some(id) = path.strip_prefix("/v1/batches/") {
                if method == "GET" {
                    batch_status(state, id)
                } else {
                    Response::error(405, "method-not-allowed", "use GET")
                }
            } else if matches!(path, "/v1/jobs" | "/v1/batches" | "/healthz" | "/metrics")
                || matches!(
                    path,
                    "/v1/debug/profile"
                        | "/v1/debug/events"
                        | "/v1/debug/queue"
                        | "/v1/debug/store"
                        | "/v1/debug/flightrec"
                )
            {
                Response::error(405, "method-not-allowed", "wrong method for this path")
            } else {
                Response::error(404, "not-found", &format!("no route for `{path}`"))
            }
        }
    }
}

fn health(state: &Arc<ServerState>) -> Response {
    let (queued, running, done, failed, cancelled) = state.store.counts();
    let status = if state.shutting_down() {
        "draining"
    } else {
        "ok"
    };
    Response::json(
        200,
        &Value::obj(vec![
            ("status", Value::Str(status.to_owned())),
            ("build", build_info_value()),
            (
                "jobs",
                Value::obj(vec![
                    ("queued", Value::Num(queued as f64)),
                    ("running", Value::Num(running as f64)),
                    ("done", Value::Num(done as f64)),
                    ("failed", Value::Num(failed as f64)),
                    ("cancelled", Value::Num(cancelled as f64)),
                ]),
            ),
            ("queue_depth", Value::Num(state.queue.len() as f64)),
            ("jobs_running", Value::Num(state.jobs_running() as f64)),
        ]),
    )
}

/// `GET /v1/debug/profile` — the live span-profiler state: per-phase
/// aggregates plus the bounded ring of recent trace-tagged intervals.
fn debug_profile(state: &Arc<ServerState>) -> Response {
    state.metrics.debug_requests.incr();
    let phases: Vec<Value> = state
        .profiler
        .snapshot()
        .iter()
        .map(|p| {
            Value::obj(vec![
                ("path", Value::Str(p.path.clone())),
                ("count", Value::Num(p.count as f64)),
                ("total_ns", Value::Num(p.total_ns as f64)),
                ("self_ns", Value::Num(p.self_ns as f64)),
                ("min_ns", Value::Num(p.min_ns as f64)),
                ("max_ns", Value::Num(p.max_ns as f64)),
            ])
        })
        .collect();
    let recent: Vec<Value> = state
        .profiler
        .recent()
        .iter()
        .map(srm_obs::TracedInterval::to_value)
        .collect();
    Response::json(
        200,
        &Value::obj(vec![
            ("phases", Value::Arr(phases)),
            ("recent", Value::Arr(recent)),
        ]),
    )
}

/// `GET /v1/debug/events` — the flight recorder's counters and the
/// merged contents of every thread ring, in capture order.
fn debug_events(state: &Arc<ServerState>) -> Response {
    state.metrics.debug_requests.incr();
    let stats = flightrec::stats();
    Response::json(
        200,
        &Value::obj(vec![
            ("enabled", Value::Bool(stats.enabled)),
            ("capacity", Value::Num(stats.capacity as f64)),
            ("threads", Value::Num(stats.threads as f64)),
            ("recorded", Value::Num(stats.recorded as f64)),
            ("dumps", Value::Num(stats.dumps as f64)),
            ("dump_errors", Value::Num(stats.dump_errors as f64)),
            ("events", Value::Arr(flightrec::snapshot())),
        ]),
    )
}

/// `GET /v1/debug/queue` — job-queue and connection-queue depths.
fn debug_queue(state: &Arc<ServerState>) -> Response {
    state.metrics.debug_requests.incr();
    Response::json(
        200,
        &Value::obj(vec![
            ("queue_depth", Value::Num(state.queue.len() as f64)),
            ("queue_capacity", Value::Num(state.queue.capacity() as f64)),
            ("jobs_running", Value::Num(state.jobs_running() as f64)),
            ("conn_queue_depth", Value::Num(state.conns.len() as f64)),
            ("conn_backlog", Value::Num(state.conn_backlog as f64)),
            ("uptime_secs", Value::Num(state.uptime_secs())),
            ("draining", Value::Bool(state.shutting_down())),
        ]),
    )
}

/// `GET /v1/debug/store` — job counts, cache size, batch registry,
/// WAL/snapshot counters, and access-log health.
fn debug_store(state: &Arc<ServerState>) -> Response {
    state.metrics.debug_requests.incr();
    let (queued, running, done, failed, cancelled) = state.store.counts();
    let mut fields: Vec<(&str, Value)> = vec![
        (
            "jobs",
            Value::obj(vec![
                ("queued", Value::Num(queued as f64)),
                ("running", Value::Num(running as f64)),
                ("done", Value::Num(done as f64)),
                ("failed", Value::Num(failed as f64)),
                ("cancelled", Value::Num(cancelled as f64)),
            ]),
        ),
        ("cache_entries", Value::Num(state.cache.len() as f64)),
        ("batches_active", Value::Num(state.batches.active() as f64)),
    ];
    if let Some(wal) = state.wal_stats() {
        fields.push((
            "wal",
            Value::obj(vec![
                ("bytes", Value::Num(wal.bytes as f64)),
                ("records", Value::Num(wal.records as f64)),
                ("appended", Value::Num(wal.appended as f64)),
                ("snapshots", Value::Num(wal.snapshots as f64)),
                ("errors", Value::Num(wal.errors as f64)),
            ]),
        ));
    }
    if let Some(log) = &state.access_log {
        let stats = log.stats();
        fields.push((
            "access_log",
            Value::obj(vec![
                ("path", Value::Str(log.path().display().to_string())),
                ("lines", Value::Num(stats.lines as f64)),
                ("errors", Value::Num(stats.errors as f64)),
                ("rotations", Value::Num(stats.rotations as f64)),
            ]),
        ));
    }
    Response::json(200, &Value::obj(fields))
}

/// `POST /v1/debug/flightrec` — dump the flight recorder on demand.
fn debug_flightrec_dump(state: &Arc<ServerState>) -> Response {
    state.metrics.debug_requests.incr();
    match state.dump_flightrec("on-demand") {
        Some(path) => Response::json(
            200,
            &Value::obj(vec![("dumped", Value::Str(path.display().to_string()))]),
        ),
        None => Response::error(
            409,
            "flightrec-unavailable",
            "flight recorder is disabled, has no dump directory, or the dump failed",
        ),
    }
}

fn submit_job(state: &Arc<ServerState>, body: &[u8], ctx: &RequestCtx) -> Response {
    if state.shutting_down() {
        return Response::error(503, "shutting-down", "server is draining; retry elsewhere");
    }
    let text = String::from_utf8_lossy(body);
    let json = match parse(&text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, "bad-json", &format!("body is not JSON: {e}")),
    };
    let mut spec = match JobSpec::from_json(&json) {
        Ok(s) => s,
        Err(message) => return Response::error(400, "bad-request", &message),
    };
    spec.trace_id = ctx.trace_id.to_hex();
    let cache_key = spec.cache_key();

    if let Some(result) = state.cache.lookup(&cache_key) {
        return serve_from_cache(state, &spec, &cache_key, result, ctx);
    }

    let id = state.store.allocate_id();
    let record = JobRecord::new(id.clone(), spec.kind, cache_key.clone(), JobStatus::Queued)
        .with_trace_id(&spec.trace_id);
    state.store.insert(record);
    if let Some(persister) = &state.persister {
        persister.record_submit(&id, &spec);
    }

    let trace = open_trace(state, &id, ctx.trace_id);
    let recorder = job_recorder(state, trace.as_ref(), ctx.trace_id);
    recorder.record(&Event::JobStart {
        job_id: id.clone(),
        kind: spec.kind.label().to_owned(),
        cache_key: cache_key.clone(),
    });
    recorder.record(&Event::CacheMiss {
        cache_key: cache_key.clone(),
    });

    let deadline = spec
        .timeout_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let push = state.queue.push(QueuedJob {
        id: id.clone(),
        spec,
        deadline,
        trace,
        submitted: Instant::now(),
    });
    match push {
        Ok(()) => {
            state.metrics.jobs_submitted.incr();
            Response::json(
                202,
                &Value::obj(vec![
                    ("id", Value::Str(id)),
                    ("trace_id", Value::Str(ctx.trace_id.to_hex())),
                    ("status", Value::Str("queued".to_owned())),
                    ("cached", Value::Bool(false)),
                    ("cache_key", Value::Str(cache_key)),
                ]),
            )
        }
        Err(reject) => {
            state.store.remove(&id);
            if let Some(persister) = &state.persister {
                persister.record_drop(&id);
            }
            if let Some(path) = state.trace_path(&id) {
                let _ = std::fs::remove_file(path);
            }
            match reject {
                PushError::Full => {
                    state.metrics.jobs_rejected.incr();
                    Response::error(429, "queue-full", "job queue is at capacity; retry later")
                        .with_header("Retry-After", &state.retry_after_secs.to_string())
                }
                PushError::Closed => {
                    Response::error(503, "shutting-down", "server is draining; retry elsewhere")
                }
            }
        }
    }
}

fn serve_from_cache(
    state: &Arc<ServerState>,
    spec: &JobSpec,
    cache_key: &str,
    result: Value,
    ctx: &RequestCtx,
) -> Response {
    ctx.cache_hit.set(true);
    let id = cache_served_job(state, spec, cache_key, result);
    Response::json(
        201,
        &Value::obj(vec![
            ("id", Value::Str(id)),
            ("trace_id", Value::Str(spec.trace_id.clone())),
            ("status", Value::Str("done".to_owned())),
            ("cached", Value::Bool(true)),
            ("cache_key", Value::Str(cache_key.to_owned())),
        ]),
    )
}

/// Allocates an already-done job record for a fit-cache hit and emits
/// its lifecycle events — the shared tail of [`serve_from_cache`] and
/// batch submission.
fn cache_served_job(
    state: &Arc<ServerState>,
    spec: &JobSpec,
    cache_key: &str,
    result: Value,
) -> String {
    let id = state.store.allocate_id();
    let mut record = JobRecord::new(id.clone(), spec.kind, cache_key.to_owned(), JobStatus::Done)
        .with_trace_id(&spec.trace_id);
    record.cached = true;
    record.result = Some(result);
    state.store.insert(record);
    state.persist_terminal(&id);
    state.metrics.jobs_submitted.incr();
    state.metrics.jobs_done.incr();

    let trace = open_trace(state, &id, trace_id_of(spec));
    let recorder = job_recorder(state, trace.as_ref(), trace_id_of(spec));
    recorder.record(&Event::JobStart {
        job_id: id.clone(),
        kind: spec.kind.label().to_owned(),
        cache_key: cache_key.to_owned(),
    });
    recorder.record(&Event::CacheHit {
        cache_key: cache_key.to_owned(),
    });
    recorder.record(&Event::JobDone {
        job_id: id.clone(),
        status: "done".to_owned(),
        cached: true,
        wall_ms: 0.0,
    });
    if let Some(sink) = trace {
        let _ = sink.flush();
    }
    id
}

/// The job's trace id, recovered from its spec; falls back to the
/// process id for specs persisted before trace correlation existed.
fn trace_id_of(spec: &JobSpec) -> TraceId {
    TraceId::parse(&spec.trace_id).unwrap_or_else(process_trace_id)
}

fn open_trace(state: &Arc<ServerState>, id: &str, trace_id: TraceId) -> Option<Arc<JsonlSink>> {
    let path = state.trace_path(id)?;
    JsonlSink::create(&path)
        .ok()
        .map(|sink| Arc::new(sink.with_trace_id(&trace_id.to_hex())))
}

fn job_recorder(
    state: &Arc<ServerState>,
    trace: Option<&Arc<JsonlSink>>,
    trace_id: TraceId,
) -> Tee {
    let mut sinks: Vec<Arc<dyn Recorder>> = vec![Arc::clone(&state.stats) as Arc<dyn Recorder>];
    if let Some(sink) = trace {
        sinks.push(Arc::clone(sink) as Arc<dyn Recorder>);
    }
    sinks.push(Arc::new(FlightRecorder::new(trace_id)) as Arc<dyn Recorder>);
    Tee::new(sinks)
}

fn job_status(state: &Arc<ServerState>, id: &str) -> Response {
    state.store.get(id).map_or_else(
        || Response::error(404, "not-found", &format!("unknown job `{id}`")),
        |record| Response::json(200, &record.status_value()),
    )
}

/// `GET /v1/jobs/{id}/progress` — the job's live convergence state:
/// sweeps completed, the latest per-chain checkpoint payloads, and
/// the cross-chain aggregate (R̂, split-R̂, ESS, MCSE). A queued job
/// (or a cache hit, which never samples) reports zero sweeps and
/// empty arrays; a finished job keeps reporting its final checkpoint.
fn job_progress(state: &Arc<ServerState>, id: &str) -> Response {
    let Some(record) = state.store.get(id) else {
        return Response::error(404, "not-found", &format!("unknown job `{id}`"));
    };
    let (sweeps, seen, chains, diagnostics) = match &record.progress {
        Some(stats) => {
            let latest = stats.latest_checkpoints();
            let refs: Vec<&ChainCheckpoint> = latest.iter().collect();
            let diagnostics = aggregate(&refs);
            (
                stats.sweeps_completed(),
                stats.checkpoints_seen(),
                latest,
                diagnostics,
            )
        }
        None => (0, 0, Vec::new(), Vec::new()),
    };
    let chain_values: Vec<Value> = chains
        .iter()
        .map(|c| {
            Value::obj(vec![
                ("chain", Value::Num(c.chain as f64)),
                ("sweep", Value::Num(c.sweep as f64)),
                ("kept", Value::Num(c.kept as f64)),
                ("wall_ms", Value::Num(c.wall_ms)),
                (
                    "params",
                    Value::Arr(c.params.iter().map(|p| p.to_value()).collect()),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        &Value::obj(vec![
            ("id", Value::Str(record.id.clone())),
            ("trace_id", Value::Str(record.trace_id.clone())),
            ("status", Value::Str(record.status.label().to_owned())),
            ("sweeps_completed", Value::Num(sweeps as f64)),
            ("checkpoints_seen", Value::Num(seen as f64)),
            ("chains", Value::Arr(chain_values)),
            (
                "aggregate",
                Value::Arr(diagnostics.iter().map(|d| d.to_value()).collect()),
            ),
        ]),
    )
}

fn job_result(state: &Arc<ServerState>, id: &str) -> Response {
    let Some(record) = state.store.get(id) else {
        return Response::error(404, "not-found", &format!("unknown job `{id}`"));
    };
    match record.status {
        JobStatus::Queued | JobStatus::Running => Response::json(202, &record.status_value()),
        JobStatus::Cancelled => Response::error(410, "cancelled", "job was cancelled"),
        JobStatus::Failed => {
            let (kind, message) = record
                .error
                .unwrap_or_else(|| ("unknown".to_owned(), "job failed".to_owned()));
            Response::error(500, &kind, &message)
        }
        JobStatus::Done => match record.result {
            Some(result) => Response::json(200, &result),
            None => Response::error(500, "missing-result", "done job has no stored result"),
        },
    }
}

fn cancel_job(state: &Arc<ServerState>, id: &str) -> Response {
    let outcome = state.store.with(id, |record| match record.status {
        JobStatus::Queued => {
            record.cancel_requested = true;
            record.status = JobStatus::Cancelled;
            (200, "cancelled")
        }
        JobStatus::Running => {
            record.cancel_requested = true;
            (202, "cancelling")
        }
        JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled => (409, "finished"),
    });
    match outcome {
        None => Response::error(404, "not-found", &format!("unknown job `{id}`")),
        Some((409, _)) => Response::error(
            409,
            "already-finished",
            "job already reached a terminal state",
        ),
        Some((status, label)) => {
            if status == 200 {
                state.metrics.jobs_cancelled.incr();
                state.persist_terminal(id);
                note_batch_terminal(state, id);
            }
            Response::json(
                status,
                &Value::obj(vec![
                    ("id", Value::Str(id.to_owned())),
                    ("status", Value::Str(label.to_owned())),
                ]),
            )
        }
    }
}

/// What will become of one batch item, decided before anything is
/// allocated so admission can stay all-or-nothing.
enum ItemPlan {
    /// Same cache key as an earlier item of this batch: share its job.
    Alias(usize),
    /// Fit-cache hit: allocate an already-done job around the result.
    Cached(Value),
    /// Needs sampling: allocate a queued job.
    Fresh,
}

/// `POST /v1/batches` — fans one shared fit spec over N datasets.
///
/// Every item becomes an ordinary job (same submit path, cache, WAL,
/// and workers as `POST /v1/jobs`), so item results are byte-identical
/// to individually submitted jobs with the derived seeds. Admission is
/// all-or-nothing: the whole batch is rejected with 429 unless every
/// item that needs sampling fits on the job queue together.
fn submit_batch(state: &Arc<ServerState>, body: &[u8], ctx: &RequestCtx) -> Response {
    if state.shutting_down() {
        return Response::error(503, "shutting-down", "server is draining; retry elsewhere");
    }
    let text = String::from_utf8_lossy(body);
    let json = match parse(&text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, "bad-json", &format!("body is not JSON: {e}")),
    };
    let mut request = match crate::batch::parse_batch(&json) {
        Ok(r) => r,
        Err(message) => return Response::error(400, "bad-request", &message),
    };
    // Every item inherits the batch's trace id: one submission, one
    // correlation key across all member jobs. The id is excluded from
    // cache keys, so inheriting it never splits the fit cache.
    let batch_trace = ctx.trace_id.to_hex();
    for (_, spec) in &mut request.items {
        spec.trace_id = batch_trace.clone();
    }

    // Plan first, mutate second: classify every item without touching
    // the job store so a capacity rejection leaves no trace.
    let mut plans: Vec<ItemPlan> = Vec::with_capacity(request.items.len());
    let mut first_by_key: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for (index, (_, spec)) in request.items.iter().enumerate() {
        let key = spec.cache_key();
        if let Some(&first) = first_by_key.get(&key) {
            plans.push(ItemPlan::Alias(first));
            continue;
        }
        first_by_key.insert(key, index);
        match state.cache.lookup(&spec.cache_key()) {
            Some(result) => plans.push(ItemPlan::Cached(result)),
            None => plans.push(ItemPlan::Fresh),
        }
    }
    let fresh = plans
        .iter()
        .filter(|p| matches!(p, ItemPlan::Fresh))
        .count();
    if state.queue.len() + fresh > state.queue.capacity() {
        state.metrics.jobs_rejected.add(fresh as u64);
        return Response::error(
            429,
            "queue-full",
            "job queue cannot take the whole batch; retry later",
        )
        .with_header("Retry-After", &state.retry_after_secs.to_string());
    }

    let batch_id = state.batches.allocate_id();
    let mut items: Vec<BatchItemRef> = Vec::with_capacity(plans.len());
    let mut queued: Vec<QueuedJob> = Vec::new();
    let mut pending_ids: Vec<String> = Vec::new();
    let mut cache_hits = 0u64;
    for (plan, (label, spec)) in plans.into_iter().zip(request.items) {
        let seed = spec.mcmc.seed;
        match plan {
            ItemPlan::Alias(first) => {
                cache_hits += 1;
                let job_id = items[first].job_id.clone();
                items.push(BatchItemRef {
                    label,
                    job_id,
                    seed,
                    cached: true,
                });
            }
            ItemPlan::Cached(result) => {
                cache_hits += 1;
                let key = spec.cache_key();
                let job_id = cache_served_job(state, &spec, &key, result);
                items.push(BatchItemRef {
                    label,
                    job_id,
                    seed,
                    cached: true,
                });
            }
            ItemPlan::Fresh => {
                let key = spec.cache_key();
                let id = state.store.allocate_id();
                state.store.insert(
                    JobRecord::new(id.clone(), spec.kind, key.clone(), JobStatus::Queued)
                        .with_trace_id(&spec.trace_id),
                );
                if let Some(persister) = &state.persister {
                    persister.record_submit(&id, &spec);
                }
                let trace = open_trace(state, &id, ctx.trace_id);
                let recorder = job_recorder(state, trace.as_ref(), ctx.trace_id);
                recorder.record(&Event::JobStart {
                    job_id: id.clone(),
                    kind: spec.kind.label().to_owned(),
                    cache_key: key.clone(),
                });
                recorder.record(&Event::CacheMiss { cache_key: key });
                state.metrics.jobs_submitted.incr();
                let deadline = spec
                    .timeout_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                queued.push(QueuedJob {
                    id: id.clone(),
                    spec,
                    deadline,
                    trace,
                    submitted: Instant::now(),
                });
                pending_ids.push(id.clone());
                items.push(BatchItemRef {
                    label,
                    job_id: id,
                    seed,
                    cached: false,
                });
            }
        }
    }

    let record = BatchRecord {
        id: batch_id.clone(),
        master_seed: request.master_seed,
        items,
        cache_hits,
        remaining: 0, // set by BatchStore::insert
        submitted: Instant::now(),
    };
    state.stats.record(&Event::BatchStart {
        batch_id: batch_id.clone(),
        items: record.items.len(),
        master_seed: request.master_seed,
    });
    // Register the batch BEFORE queueing its jobs so a fast worker's
    // terminal transition always finds it in the reverse index.
    state.batches.insert(record.clone(), &pending_ids);
    if let Some(persister) = &state.persister {
        persister.record_batch(&record);
    }
    state.metrics.batches_submitted.incr();
    state.metrics.batch_items.add(record.items.len() as u64);
    state.metrics.batch_cache_hits.add(cache_hits);

    // Items terminal at submit (cache-served jobs and their aliases)
    // never pass through a worker, so their batch events fire here.
    let pending: std::collections::HashSet<&String> = pending_ids.iter().collect();
    for (index, item) in record.items.iter().enumerate() {
        if !pending.contains(&item.job_id) {
            state.stats.record(&Event::BatchItemDone {
                batch_id: batch_id.clone(),
                item: index,
                label: item.label.clone(),
                status: "done".to_owned(),
                cached: true,
                wall_ms: 0.0,
            });
        }
    }
    if pending_ids.is_empty() {
        ctx.cache_hit.set(true);
        state.stats.record(&Event::BatchDone {
            batch_id: batch_id.clone(),
            items: record.items.len(),
            failed: 0,
            cache_hits: cache_hits as usize,
            wall_ms: 0.0,
        });
    }

    for job in queued {
        let id = job.id.clone();
        // Capacity was pre-checked; requeue only fails once shutdown
        // closed the queue, in which case the job dies cancelled.
        if state.queue.requeue(job).is_err() {
            state.store.with(&id, |r| {
                r.status = JobStatus::Cancelled;
            });
            state.persist_terminal(&id);
            state.metrics.jobs_cancelled.incr();
            note_batch_terminal(state, &id);
        }
    }

    match state.batches.get(&batch_id) {
        Some(registered) => Response::json(202, &batch_rollup(state, &registered)),
        None => Response::error(500, "missing-batch", "batch vanished during submission"),
    }
}

/// `GET /v1/batches/{id}` — per-item status/results and the progress
/// rollup.
fn batch_status(state: &Arc<ServerState>, id: &str) -> Response {
    match state.batches.get(id) {
        Some(record) => Response::json(200, &batch_rollup(state, &record)),
        None => Response::error(404, "not-found", &format!("unknown batch `{id}`")),
    }
}

/// Renders a batch document: per-item status (with the result inlined
/// once the item's job is done) plus lifecycle counts.
fn batch_rollup(state: &Arc<ServerState>, record: &BatchRecord) -> Value {
    let mut counts = [0usize; 5]; // queued running done failed cancelled
    let items: Vec<Value> = record
        .items
        .iter()
        .map(|item| {
            let job = state.store.get(&item.job_id);
            let status = job.as_ref().map_or("unknown", |r| r.status.label());
            if let Some(r) = &job {
                counts[match r.status {
                    JobStatus::Queued => 0,
                    JobStatus::Running => 1,
                    JobStatus::Done => 2,
                    JobStatus::Failed => 3,
                    JobStatus::Cancelled => 4,
                }] += 1;
            }
            let mut fields: Vec<(&str, Value)> = vec![
                ("label", Value::Str(item.label.clone())),
                ("job", Value::Str(item.job_id.clone())),
                ("seed", Value::Num(item.seed as f64)),
                ("cached", Value::Bool(item.cached)),
                ("status", Value::Str(status.to_owned())),
            ];
            if let Some(r) = job {
                fields.push(("trace_id", Value::Str(r.trace_id.clone())));
                fields.push(("wall_ms", Value::Num(r.wall_ms)));
                if let Some(result) = r.result {
                    fields.push(("result", result));
                }
                if let Some((kind, message)) = r.error {
                    fields.push(("error_kind", Value::Str(kind)));
                    fields.push(("error_message", Value::Str(message)));
                }
            }
            Value::obj(fields)
        })
        .collect();
    let status = if record.remaining == 0 {
        "done"
    } else {
        "running"
    };
    // All member jobs inherit the submit request's trace id, so the
    // first item's record carries the batch-level correlation key.
    let batch_trace = record
        .items
        .first()
        .and_then(|item| state.store.get(&item.job_id))
        .map(|r| r.trace_id)
        .unwrap_or_default();
    Value::obj(vec![
        ("id", Value::Str(record.id.clone())),
        ("trace_id", Value::Str(batch_trace)),
        ("status", Value::Str(status.to_owned())),
        ("master_seed", Value::Num(record.master_seed as f64)),
        ("cache_hits", Value::Num(record.cache_hits as f64)),
        ("remaining", Value::Num(record.remaining as f64)),
        (
            "progress",
            Value::obj(vec![
                ("total", Value::Num(record.items.len() as f64)),
                ("queued", Value::Num(counts[0] as f64)),
                ("running", Value::Num(counts[1] as f64)),
                ("done", Value::Num(counts[2] as f64)),
                ("failed", Value::Num(counts[3] as f64)),
                ("cancelled", Value::Num(counts[4] as f64)),
            ]),
        ),
        ("items", Value::Arr(items)),
    ])
}

/// Tells the batch registry that `job_id` reached a terminal state and
/// emits `batch-item-done` (per affected item) and `batch-done` (when
/// a batch's last job finishes) into the server's event stream.
fn note_batch_terminal(state: &Arc<ServerState>, job_id: &str) {
    let progresses = state.batches.note_terminal(job_id);
    if progresses.is_empty() {
        return;
    }
    let (status, cached) = state.store.get(job_id).map_or_else(
        || ("done".to_owned(), false),
        |r| (r.status.label().to_owned(), r.cached),
    );
    for progress in progresses {
        let Some(record) = state.batches.get(&progress.batch_id) else {
            continue;
        };
        for index in &progress.item_indices {
            let Some(item) = record.items.get(*index) else {
                continue;
            };
            state.stats.record(&Event::BatchItemDone {
                batch_id: progress.batch_id.clone(),
                item: *index,
                label: item.label.clone(),
                status: status.clone(),
                cached: cached || item.cached,
                wall_ms: progress.wall_ms,
            });
        }
        if progress.remaining == 0 {
            let failed = record
                .items
                .iter()
                .filter(|item| {
                    state.store.get(&item.job_id).is_some_and(|r| {
                        matches!(r.status, JobStatus::Failed | JobStatus::Cancelled)
                    })
                })
                .count();
            state.stats.record(&Event::BatchDone {
                batch_id: progress.batch_id.clone(),
                items: record.items.len(),
                failed,
                cache_hits: record.cache_hits as usize,
                wall_ms: progress.wall_ms,
            });
        }
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        if let Some(gate) = &state.gate {
            gate.wait_ready();
        }
        execute(state, &job);
    }
}

fn execute(state: &Arc<ServerState>, job: &QueuedJob) {
    // Install the server profiler for the whole job lifecycle so the
    // fit span, the engine's serialize span, and the WAL appends from
    // persist_terminal all land in the same profile; the engine
    // forwards it to its chain workers via `profile::current()`.
    let _profile_guard = srm_obs::profile::install(Some(&state.profiler));
    let trace_id = trace_id_of(&job.spec);
    let trace_hex = trace_id.to_hex();
    // Queue wait is a cross-thread interval (submit happened on a
    // handler thread), so it is recorded directly rather than spanned.
    state.profiler.record_ns_for(
        "queue-wait",
        u64::try_from(job.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX),
        Some(&trace_hex),
    );
    let recorder = job_recorder(state, job.trace.as_ref(), trace_id);
    // Claim the job; a DELETE that landed while it was queued already
    // moved it to Cancelled (and counted it), so just acknowledge.
    let claimed = state
        .store
        .with(&job.id, |record| {
            if record.status == JobStatus::Cancelled || record.cancel_requested {
                record.status = JobStatus::Cancelled;
                false
            } else {
                record.status = JobStatus::Running;
                true
            }
        })
        .unwrap_or(false);
    if !claimed {
        state.persist_terminal(&job.id);
        note_batch_terminal(state, &job.id);
        finish(job, &recorder, "cancelled", 0.0);
        return;
    }
    if let Some(persister) = &state.persister {
        persister.record_claim(&job.id);
    }

    state.running.fetch_add(1, Ordering::SeqCst);
    let per_job = Arc::new(StatsCollector::new());
    // Attach the job's collector to its record so the progress
    // endpoint and the per-job /metrics gauges can read the streaming
    // checkpoints while the sampler runs.
    state.store.with(&job.id, |record| {
        record.progress = Some(Arc::clone(&per_job));
    });
    let mut sinks: Vec<Arc<dyn Recorder>> = vec![
        Arc::clone(&state.stats) as Arc<dyn Recorder>,
        Arc::clone(&per_job) as Arc<dyn Recorder>,
    ];
    if let Some(sink) = &job.trace {
        sinks.push(Arc::clone(sink) as Arc<dyn Recorder>);
    }
    sinks.push(Arc::new(FlightRecorder::new(trace_id)) as Arc<dyn Recorder>);
    let engine_recorder = Tee::new(sinks);
    let started = Instant::now();
    let outcome = {
        let _fit_span = srm_obs::profile::span("fit");
        run_job(&job.spec, job.deadline, &engine_recorder)
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    state.running.fetch_sub(1, Ordering::SeqCst);

    let cancel_requested = state.store.get(&job.id).is_some_and(|r| r.cancel_requested);
    if cancel_requested {
        // The result is discarded, not cached: the client asked for
        // the job to die and must not observe a partial success.
        state.store.with(&job.id, |record| {
            record.status = JobStatus::Cancelled;
            record.wall_ms = wall_ms;
        });
        state.persist_terminal(&job.id);
        state.metrics.jobs_cancelled.incr();
        note_batch_terminal(state, &job.id);
        finish(job, &recorder, "cancelled", wall_ms);
        return;
    }

    match outcome {
        Ok(output) => {
            state
                .cache
                .insert(&job.spec.cache_key(), output.result.clone());
            state.store.with(&job.id, |record| {
                record.status = JobStatus::Done;
                record.result = Some(output.result.clone());
                record.wall_ms = wall_ms;
            });
            state.persist_terminal(&job.id);
            state.metrics.jobs_done.incr();
            state.metrics.job_wall_ms.observe(wall_ms);
            note_batch_terminal(state, &job.id);
            if let Some(path) = state.manifest_path(&job.id) {
                let mut manifest = output.manifest;
                manifest.fill_from_stats(&per_job, output.kept_draws);
                let _ = manifest.write(&path);
            }
            finish(job, &recorder, "done", wall_ms);
        }
        Err(error) => {
            state.store.with(&job.id, |record| {
                record.status = JobStatus::Failed;
                record.error = Some((error.kind().to_owned(), error.to_string()));
                record.wall_ms = wall_ms;
            });
            state.persist_terminal(&job.id);
            state.metrics.jobs_failed.incr();
            note_batch_terminal(state, &job.id);
            // An engine failure is exactly the moment the recent event
            // history matters: capture it before the rings move on.
            let _ = state.dump_flightrec("engine-failure");
            finish(job, &recorder, "failed", wall_ms);
        }
    }
}

fn finish(job: &QueuedJob, recorder: &Tee, status: &str, wall_ms: f64) {
    recorder.record(&Event::JobDone {
        job_id: job.id.clone(),
        status: status.to_owned(),
        cached: false,
        wall_ms,
    });
    if let Some(sink) = &job.trace {
        let _ = sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    pub(crate) fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let (status, _, payload) = http_with_headers(addr, method, path, &[], body);
        (status, payload)
    }

    /// Like [`http`] but sends extra request headers and returns the
    /// raw response head for header assertions.
    pub(crate) fn http_with_headers(
        addr: SocketAddr,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: srm\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            request.push_str(&format!("{name}: {value}\r\n"));
        }
        request.push_str("\r\n");
        request.push_str(body);
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let (head, payload) = raw
            .split_once("\r\n\r\n")
            .map(|(h, b)| (h.to_owned(), b.to_owned()))
            .unwrap_or_default();
        (status, head, payload)
    }

    fn header_value(head: &str, name: &str) -> Option<String> {
        head.lines().find_map(|line| {
            let (n, v) = line.split_once(':')?;
            (n.eq_ignore_ascii_case(name)).then(|| v.trim().to_owned())
        })
    }

    #[test]
    fn trace_header_is_honoured_end_to_end() {
        let dir = std::env::temp_dir().join(format!("srm_serve_trace_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = ServerConfig {
            trace_dir: Some(dir.join("traces").to_string_lossy().into_owned()),
            access_log: Some(dir.join("access.jsonl").to_string_lossy().into_owned()),
            ..ServerConfig::default()
        };
        let server = Server::start(config).unwrap();
        let pinned = "00112233445566778899aabbccddeeff";
        let (status, head, body) = http_with_headers(
            server.addr(),
            "POST",
            "/v1/jobs",
            &[(TRACE_HEADER, pinned)],
            r#"{"kind":"fit","dataset":"short_campaign_25","model":"model0",
                "chains":1,"samples":60,"burn_in":20,"seed":11}"#,
        );
        assert_eq!(status, 202, "{body}");
        assert_eq!(header_value(&head, TRACE_HEADER).as_deref(), Some(pinned));
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("trace_id").unwrap().as_str(), Some(pinned));
        let id = doc.get("id").unwrap().as_str().unwrap().to_owned();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (_, status_body) = http(server.addr(), "GET", &format!("/v1/jobs/{id}"), "");
            let status_doc = parse(&status_body).unwrap();
            // The poll itself carries no header, but the job's record
            // keeps the id it was submitted under.
            assert_eq!(status_doc.get("trace_id").unwrap().as_str(), Some(pinned));
            if status_doc.get("status").unwrap().as_str() == Some("done") {
                break;
            }
            assert_ne!(status_doc.get("status").unwrap().as_str(), Some("failed"));
            assert!(Instant::now() < deadline, "job did not finish in time");
            std::thread::sleep(Duration::from_millis(20));
        }
        let (_, progress) = http(server.addr(), "GET", &format!("/v1/jobs/{id}/progress"), "");
        assert_eq!(
            parse(&progress).unwrap().get("trace_id").unwrap().as_str(),
            Some(pinned)
        );
        // Every line of the per-job trace carries the pinned id.
        let trace_text =
            std::fs::read_to_string(dir.join("traces").join(format!("{id}.trace.jsonl"))).unwrap();
        assert!(trace_text.lines().count() > 2);
        for line in trace_text.lines() {
            let value = parse(line).unwrap();
            assert_eq!(
                value.get("trace_id").unwrap().as_str(),
                Some(pinned),
                "{line}"
            );
        }
        let state = server.state();
        server.request_shutdown();
        let _ = server.join();
        // The access log wrote the submit line under the pinned id
        // (the line lands after the response, so read it post-drain).
        let log_text = std::fs::read_to_string(dir.join("access.jsonl")).unwrap();
        let submit_line = log_text
            .lines()
            .find(|l| l.contains("POST") && l.contains(pinned))
            .expect("no access-log line for the pinned submit");
        let value = parse(submit_line).unwrap();
        assert_eq!(value.get("type").unwrap().as_str(), Some("access"));
        assert_eq!(value.get("path").unwrap().as_str(), Some("/v1/jobs"));
        assert!(matches!(value.get("cache_hit"), Some(&Value::Bool(false))));
        assert!(state.access_log.as_ref().unwrap().stats().lines >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn derived_trace_ids_are_deterministic_per_request_content() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (_, head1, _) = http_with_headers(server.addr(), "GET", "/healthz", &[], "");
        let (_, head2, _) = http_with_headers(server.addr(), "GET", "/healthz", &[], "");
        let (_, head3, _) = http_with_headers(server.addr(), "GET", "/metrics", &[], "");
        let id1 = header_value(&head1, TRACE_HEADER).unwrap();
        let id2 = header_value(&head2, TRACE_HEADER).unwrap();
        let id3 = header_value(&head3, TRACE_HEADER).unwrap();
        assert_eq!(id1.len(), 32);
        assert_eq!(id1, id2, "same content must derive the same id");
        assert_ne!(id1, id3, "different content must derive different ids");
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn debug_endpoints_expose_live_state() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (status, body) = http(server.addr(), "GET", "/v1/debug/profile", "");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert!(doc.get("phases").is_some());
        assert!(doc.get("recent").is_some());
        let (status, body) = http(server.addr(), "GET", "/v1/debug/events", "");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert!(doc.get("recorded").is_some());
        assert!(doc.get("events").is_some());
        let (status, body) = http(server.addr(), "GET", "/v1/debug/queue", "");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("queue_capacity").unwrap().as_f64(), Some(16.0));
        assert!(matches!(doc.get("draining"), Some(&Value::Bool(false))));
        let (status, body) = http(server.addr(), "GET", "/v1/debug/store", "");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert!(doc.get("jobs").is_some());
        assert!(doc.get("cache_entries").is_some());
        assert_eq!(http(server.addr(), "GET", "/v1/debug/nope", "").0, 404);
        assert_eq!(http(server.addr(), "POST", "/v1/debug/queue", "").0, 405);
        let (_, page) = http(server.addr(), "GET", "/metrics", "");
        assert!(page.contains("srm_serve_debug_requests_total 4"), "{page}");
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn flight_recorder_captures_and_dumps_job_events() {
        let dir = std::env::temp_dir().join(format!("srm_serve_flightrec_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = ServerConfig {
            trace_dir: Some(dir.to_string_lossy().into_owned()),
            flight_recorder: true,
            ..ServerConfig::default()
        };
        let server = Server::start(config).unwrap();
        let pinned = "feedfacecafebeef0000000000000042";
        let (status, _, body) = http_with_headers(
            server.addr(),
            "POST",
            "/v1/jobs",
            &[(TRACE_HEADER, pinned)],
            r#"{"kind":"fit","dataset":"short_campaign_25","model":"model0",
                "chains":1,"samples":60,"burn_in":20,"seed":12}"#,
        );
        assert_eq!(status, 202, "{body}");
        let id = parse(&body)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (_, status_body) = http(server.addr(), "GET", &format!("/v1/jobs/{id}"), "");
            let label = parse(&status_body)
                .unwrap()
                .get("status")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned();
            if label == "done" {
                break;
            }
            assert!(Instant::now() < deadline, "job did not finish in time");
            std::thread::sleep(Duration::from_millis(20));
        }
        let (status, body) = http(server.addr(), "GET", "/v1/debug/events", "");
        assert_eq!(status, 200);
        assert!(body.contains(pinned), "recorder missed the job's events");
        let (status, body) = http(server.addr(), "POST", "/v1/debug/flightrec", "");
        assert_eq!(status, 200, "{body}");
        let dumped = parse(&body)
            .unwrap()
            .get("dumped")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let dump_text = std::fs::read_to_string(&dumped).unwrap();
        let header = parse(dump_text.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("type").unwrap().as_str(), Some("flightrec-dump"));
        assert_eq!(header.get("reason").unwrap().as_str(), Some("on-demand"));
        assert!(dump_text.contains(pinned));
        server.request_shutdown();
        let _ = server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn healthz_reports_build_and_counts() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (status, body) = http(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert!(doc.get("build").unwrap().get("crate_version").is_some());
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn unknown_routes_and_methods_are_rejected() {
        let server = Server::start(ServerConfig::default()).unwrap();
        assert_eq!(http(server.addr(), "GET", "/nope", "").0, 404);
        assert_eq!(http(server.addr(), "PUT", "/healthz", "").0, 405);
        assert_eq!(http(server.addr(), "PATCH", "/v1/jobs/job-1", "").0, 405);
        assert_eq!(http(server.addr(), "GET", "/v1/jobs/job-9", "").0, 404);
        assert_eq!(http(server.addr(), "GET", "/v1/results/job-9", "").0, 404);
        assert_eq!(http(server.addr(), "DELETE", "/v1/jobs/job-9", "").0, 404);
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn bad_submissions_get_400() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (status, body) = http(server.addr(), "POST", "/v1/jobs", "not json");
        assert_eq!(status, 400);
        assert!(body.contains("bad-json"));
        let (status, body) = http(server.addr(), "POST", "/v1/jobs", r#"{"kind":"fit"}"#);
        assert_eq!(status, 400);
        assert!(body.contains("missing data"));
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn submit_poll_and_fetch_a_fit_job() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/v1/jobs",
            r#"{"kind":"fit","dataset":"short_campaign_25","model":"model0",
                "chains":1,"samples":120,"burn_in":40,"seed":9}"#,
        );
        assert_eq!(status, 202);
        let id = parse(&body)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (_, status_body) = http(server.addr(), "GET", &format!("/v1/jobs/{id}"), "");
            let label = parse(&status_body)
                .unwrap()
                .get("status")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned();
            if label == "done" {
                break;
            }
            assert_ne!(label, "failed", "{status_body}");
            assert!(Instant::now() < deadline, "job did not finish in time");
            std::thread::sleep(Duration::from_millis(20));
        }
        let (status, result) = http(server.addr(), "GET", &format!("/v1/results/{id}"), "");
        assert_eq!(status, 200);
        let doc = parse(&result).unwrap();
        assert!(doc
            .get("residual")
            .unwrap()
            .get("mean")
            .unwrap()
            .as_f64()
            .is_some());
        let (status, page) = http(server.addr(), "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(page.contains("srm_serve_jobs_done_total 1"));
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn cancel_of_queued_job_is_immediate() {
        // A paused gate keeps the single worker busy with nothing —
        // the submitted job stays queued until we cancel it.
        let gate = Arc::new(Gate::new());
        gate.pause();
        let server = Server::start(ServerConfig {
            workers: 1,
            gate: Some(Arc::clone(&gate)),
            ..ServerConfig::default()
        })
        .unwrap();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/v1/jobs",
            r#"{"kind":"fit","dataset":"short_campaign_25","chains":1,"samples":100,"burn_in":40}"#,
        );
        assert_eq!(status, 202);
        let id = parse(&body)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let (status, _) = http(server.addr(), "DELETE", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200);
        let (status, _) = http(server.addr(), "GET", &format!("/v1/results/{id}"), "");
        assert_eq!(status, 410);
        let (status, _) = http(server.addr(), "DELETE", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 409);
        gate.release();
        server.request_shutdown();
        let state = server.join();
        assert_eq!(state.metrics.jobs_cancelled.get(), 1);
    }

    fn wait_batch_done(addr: SocketAddr, id: &str) -> Value {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, body) = http(addr, "GET", &format!("/v1/batches/{id}"), "");
            assert_eq!(status, 200, "{body}");
            let doc = parse(&body).unwrap();
            if doc.get("status").unwrap().as_str() == Some("done") {
                return doc;
            }
            assert!(Instant::now() < deadline, "batch did not finish in time");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn wait_job_result(addr: SocketAddr, id: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, result) = http(addr, "GET", &format!("/v1/results/{id}"), "");
            if status == 200 {
                return result;
            }
            assert_eq!(status, 202, "{result}");
            assert!(Instant::now() < deadline, "job did not finish in time");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    const BATCH_BODY: &str = r#"{"model":"model0","chains":1,"samples":120,"burn_in":40,"seed":7,
        "items":[{"label":"named","dataset":"short_campaign_25"},
                 {"label":"inline","counts":[5,3,4,1,2,0,1]}]}"#;

    #[test]
    fn batch_items_match_individually_submitted_jobs_byte_for_byte() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let (status, body) = http(server.addr(), "POST", "/v1/batches", BATCH_BODY);
        assert_eq!(status, 202, "{body}");
        let batch_id = parse(&body)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let doc = wait_batch_done(server.addr(), &batch_id);
        let items = doc.get("items").unwrap().as_arr().unwrap().to_vec();
        assert_eq!(items.len(), 2);
        assert_eq!(
            doc.get("progress").unwrap().get("done").unwrap().as_f64(),
            Some(2.0)
        );

        // Re-run each item as a lone job on a FRESH server (no shared
        // cache) with the batch's derived seed: results must be
        // byte-identical — the batch item IS that job.
        let lone = Server::start(ServerConfig::default()).unwrap();
        let singles = [
            r#"{"kind":"fit","dataset":"short_campaign_25","model":"model0","chains":1,"samples":120,"burn_in":40,"seed":SEED}"#,
            r#"{"kind":"fit","counts":[5,3,4,1,2,0,1],"model":"model0","chains":1,"samples":120,"burn_in":40,"seed":SEED}"#,
        ];
        for (item, template) in items.iter().zip(singles) {
            assert_eq!(item.get("status").unwrap().as_str(), Some("done"));
            let seed = item.get("seed").unwrap().as_f64().unwrap() as u64;
            let job_id = item.get("job").unwrap().as_str().unwrap();
            let batched = wait_job_result(server.addr(), job_id);
            // The rollup inlines the identical result document.
            assert_eq!(
                item.get("result").unwrap().to_json(),
                parse(&batched).unwrap().to_json()
            );
            let (status, submitted) = http(
                lone.addr(),
                "POST",
                "/v1/jobs",
                &template.replace("SEED", &seed.to_string()),
            );
            assert_eq!(status, 202, "{submitted}");
            let lone_id = parse(&submitted)
                .unwrap()
                .get("id")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned();
            assert_eq!(wait_job_result(lone.addr(), &lone_id), batched);
        }
        lone.request_shutdown();
        let _ = lone.join();
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn batch_duplicates_alias_and_resubmission_is_fully_cached() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let body = r#"{"model":"model0","chains":1,"samples":100,"burn_in":40,"seed":3,
            "items":[{"label":"a","counts":[4,2,1,0,1]},
                     {"label":"twin","counts":[4,2,1,0,1]},
                     {"label":"b","counts":[2,2,2,1]}]}"#;
        let (status, first) = http(server.addr(), "POST", "/v1/batches", body);
        assert_eq!(status, 202, "{first}");
        let first = parse(&first).unwrap();
        // The in-batch duplicate aliases item `a`'s job: same job id,
        // no extra sampling.
        assert_eq!(first.get("cache_hits").unwrap().as_f64(), Some(1.0));
        let items = first.get("items").unwrap().as_arr().unwrap().to_vec();
        assert_eq!(
            items[0].get("job").unwrap().as_str(),
            items[1].get("job").unwrap().as_str()
        );
        assert_eq!(items[1].get("cached"), Some(&Value::Bool(true)));
        let batch_id = first.get("id").unwrap().as_str().unwrap().to_owned();
        let _ = wait_batch_done(server.addr(), &batch_id);
        let sampled_before = server.state().metrics.job_wall_ms.count();

        // Resubmitting the identical batch answers entirely from the
        // fit cache: done at submit, zero new sampling.
        let (status, second) = http(server.addr(), "POST", "/v1/batches", body);
        assert_eq!(status, 202, "{second}");
        let second = parse(&second).unwrap();
        assert_eq!(second.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(second.get("cache_hits").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            server.state().metrics.job_wall_ms.count(),
            sampled_before,
            "cached batch must not execute any job"
        );
        let (_, page) = http(server.addr(), "GET", "/metrics", "");
        assert!(page.contains("srm_serve_batches_submitted_total 2"));
        assert!(page.contains("srm_serve_batch_items_total 6"));
        assert!(page.contains("srm_serve_batch_cache_hits_total 4"));
        assert!(page.contains("srm_serve_batches_active 0"));
        server.request_shutdown();
        let _ = server.join();
    }

    #[test]
    fn restart_recovers_the_batch_registry() {
        let dir = std::env::temp_dir().join(format!("srm_serve_batchwal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServerConfig {
            state_dir: Some(dir.to_string_lossy().into_owned()),
            workers: 1,
            ..ServerConfig::default()
        };

        let server = Server::start(config()).unwrap();
        let (status, body) = http(server.addr(), "POST", "/v1/batches", BATCH_BODY);
        assert_eq!(status, 202, "{body}");
        let batch_id = parse(&body)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let done = wait_batch_done(server.addr(), &batch_id);
        server.request_shutdown();
        let _ = server.join();

        // The registry, per-item job links, and results all survive a
        // process death; new batch ids keep counting upward.
        let server = Server::start(config()).unwrap();
        let recovered = wait_batch_done(server.addr(), &batch_id);
        assert_eq!(
            recovered.get("items").unwrap().to_json(),
            done.get("items").unwrap().to_json()
        );
        assert_eq!(server.state().batches.allocate_id(), "batch-2");
        server.request_shutdown();
        let _ = server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_recovers_results_and_serves_repeats_from_cache() {
        let dir = std::env::temp_dir().join(format!("srm_serve_restart_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServerConfig {
            state_dir: Some(dir.to_string_lossy().into_owned()),
            workers: 1,
            ..ServerConfig::default()
        };
        let body = r#"{"kind":"fit","dataset":"short_campaign_25","model":"model0",
            "chains":1,"samples":120,"burn_in":40,"seed":9}"#;

        let server = Server::start(config()).unwrap();
        let (status, submitted) = http(server.addr(), "POST", "/v1/jobs", body);
        assert_eq!(status, 202);
        let id = parse(&submitted)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let deadline = Instant::now() + Duration::from_secs(60);
        let first = loop {
            let (status, result) = http(server.addr(), "GET", &format!("/v1/results/{id}"), "");
            if status == 200 {
                break result;
            }
            assert_eq!(status, 202, "{result}");
            assert!(Instant::now() < deadline, "job did not finish in time");
            std::thread::sleep(Duration::from_millis(20));
        };
        server.request_shutdown();
        let _ = server.join();

        // Same state dir, new process-lifetime: the finished job, its
        // byte-identical result, and the fit cache all come back.
        let server = Server::start(config()).unwrap();
        let (status, recovered) = http(server.addr(), "GET", &format!("/v1/results/{id}"), "");
        assert_eq!(status, 200);
        assert_eq!(recovered, first);
        let (status, repeat) = http(server.addr(), "POST", "/v1/jobs", body);
        assert_eq!(status, 201, "{repeat}");
        assert!(matches!(
            parse(&repeat).unwrap().get("cached"),
            Some(Value::Bool(true))
        ));
        server.request_shutdown();
        let _ = server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
