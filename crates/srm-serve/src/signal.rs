//! SIGTERM/SIGINT handling for graceful shutdown.
//!
//! The handler does the only async-signal-safe thing possible: it
//! stores into a process-wide [`AtomicBool`]. The accept loop polls
//! that flag (servers started with
//! [`crate::server::ServerConfig::watch_signals`]) and begins the
//! drain sequence — stop accepting jobs, close the queue, join the
//! workers — on its own thread, where arbitrary code is safe again.
//!
//! `std` links libc on every Unix target, so declaring `signal(2)`
//! adds no dependency; on non-Unix targets installation is a no-op
//! and shutdown is driven programmatically.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal (or a programmatic [`request`]) has
/// been observed.
#[must_use]
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raises the process-wide shutdown flag, exactly as a signal would.
/// Used by tests and by embedders without signal delivery.
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only — real servers exit after shutdown).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Installs the SIGTERM and SIGINT handlers. Idempotent; a no-op off
/// Unix.
pub fn install_handlers() {
    sys::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; the handler pointer outlives the process.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_round_trip() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install_handlers();
        install_handlers();
    }
}
