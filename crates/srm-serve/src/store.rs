//! Crash-durable persistence for the serve tier.
//!
//! This module layers job/cache semantics over the generic primitives
//! in the `srm-store` crate: every [`JobStore`] transition and every
//! fit-cache insert is appended to a checksummed write-ahead log, and
//! a full-state snapshot is written (atomically) every
//! `snapshot_every` appends, after which the log is truncated. Boot
//! calls [`Persister::open`], which loads the snapshot, replays the
//! log over it (tolerating a torn tail), and returns the recovered
//! state plus the jobs that were queued or running when the process
//! died — the server re-queues those and, because cache keys are
//! content-addressed and the sampler is seed-deterministic, they
//! re-fit to bit-identical results.
//!
//! ## Recovery invariants
//!
//! 1. **Store first, log second.** Callers mutate the in-memory store
//!    and then append the WAL op. A snapshot collects live store
//!    state *while holding the WAL lock*, so every transition is in
//!    the snapshot, in the log, or (harmlessly) in both.
//! 2. **Replay is idempotent and monotone.** Each op carries enough
//!    to be applied standalone, and a job's status only moves forward
//!    (queued → running → terminal); re-applying an op a snapshot
//!    already captured cannot rewind a record.
//! 3. **Torn tails lose at most the unsynced suffix.** A record
//!    either replays whole or not at all (checksummed framing); an
//!    interrupted snapshot is invisible (temp file + rename).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use srm_obs::json::{parse, Value};
use srm_obs::Counter;
use srm_store::{crash_point, load_snapshot, read_records, write_snapshot, SyncPolicy, WalWriter};

use crate::batch::{BatchRecord, BatchStore};
use crate::job::{JobKind, JobRecord, JobSpec, JobStatus, JobStore};
use crate::FitCache;

/// WAL file name inside the state directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside the state directory.
pub const SNAPSHOT_FILE: &str = "snapshot.srm";
/// Default number of WAL appends between snapshots.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn status_from_label(label: &str) -> Option<JobStatus> {
    match label {
        "queued" => Some(JobStatus::Queued),
        "running" => Some(JobStatus::Running),
        "done" => Some(JobStatus::Done),
        "failed" => Some(JobStatus::Failed),
        "cancelled" => Some(JobStatus::Cancelled),
        _ => None,
    }
}

/// Forward-only ordering on statuses: replaying an op can never move
/// a record backwards through its lifecycle.
fn status_rank(status: JobStatus) -> u8 {
    match status {
        JobStatus::Queued => 0,
        JobStatus::Running => 1,
        JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled => 2,
    }
}

/// Numeric suffix of a `job-N` id.
fn job_number(id: &str) -> u64 {
    id.rsplit('-')
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// One job's state as rebuilt by replay.
#[derive(Debug)]
struct ReplayJob {
    record: JobRecord,
    spec: Option<Value>,
}

/// Everything [`Persister::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Every job record, terminal ones with their result/error. Jobs
    /// that were queued or running have been reset to queued.
    pub jobs: Vec<JobRecord>,
    /// `(id, spec)` for jobs to put back on the queue, in submission
    /// order.
    pub pending: Vec<(String, JobSpec)>,
    /// Cache entries in recency order (least recently used first).
    pub cache: Vec<(String, Value)>,
    /// The job number the next allocation must use.
    pub next_id: u64,
    /// Batch registry records in wire form, ascending batch order.
    /// The server rebuilds [`BatchRecord`]s from these and recomputes
    /// each batch's pending-job set against the recovered job store.
    pub batches: Vec<Value>,
    /// The batch number the next allocation must use.
    pub next_batch_id: u64,
}

/// Counters the metrics endpoint exports for the persistence layer.
#[derive(Debug, Clone, Copy)]
pub struct WalStats {
    /// Bytes currently in the log (header included).
    pub bytes: u64,
    /// Records currently in the log (drops to 0 after a snapshot).
    pub records: u64,
    /// Records appended since boot (monotone, for
    /// `srm_wal_records_total`).
    pub appended: u64,
    /// Snapshots written since boot.
    pub snapshots: u64,
    /// Appends or snapshots that failed (state kept in memory only).
    pub errors: u64,
}

/// The serve tier's write-ahead log + snapshot manager.
///
/// All appends and snapshots serialize on one internal lock; the hot
/// path holds it only for an in-memory `write_all` (plus an
/// `fdatasync` under `--wal-sync always`).
#[derive(Debug)]
pub struct Persister {
    dir: PathBuf,
    wal: Mutex<WalWriter>,
    /// Wire specs of not-yet-terminal jobs, so snapshots can persist
    /// enough to re-queue them after a crash.
    pending_specs: Mutex<HashMap<String, Value>>,
    snapshot_every: u64,
    appends_since_snapshot: AtomicU64,
    appended: Counter,
    snapshots: Counter,
    errors: Counter,
}

impl Persister {
    /// Opens (or initialises) a state directory: loads the snapshot,
    /// replays the WAL over it, compacts (fresh snapshot + truncated
    /// log), and returns the recovered state.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when the directory cannot be created or
    /// the WAL cannot be opened for writing. Corrupt snapshots and
    /// torn WAL tails are *not* errors — they degrade to whatever
    /// valid prefix was recoverable.
    pub fn open(
        dir: &Path,
        policy: SyncPolicy,
        snapshot_every: u64,
    ) -> io::Result<(Self, RecoveredState)> {
        std::fs::create_dir_all(dir)?;
        let mut jobs: HashMap<String, ReplayJob> = HashMap::new();
        let mut cache: Vec<(String, Value)> = Vec::new();
        let mut batches: HashMap<String, Value> = HashMap::new();
        let mut next_id: u64 = 1;
        let mut next_batch_id: u64 = 1;

        if let Some(payload) = load_snapshot(&dir.join(SNAPSHOT_FILE))? {
            if let Ok(doc) = parse(&String::from_utf8_lossy(&payload)) {
                apply_snapshot(
                    &doc,
                    &mut jobs,
                    &mut cache,
                    &mut batches,
                    &mut next_id,
                    &mut next_batch_id,
                );
            }
        }
        let (records, report) = read_records(&dir.join(WAL_FILE))?;
        for payload in &records {
            if let Ok(op) = parse(&String::from_utf8_lossy(payload)) {
                apply_op(&op, &mut jobs, &mut cache, &mut batches);
            }
        }
        let wal = WalWriter::open(&dir.join(WAL_FILE), policy, &report)?;

        let mut recovered = RecoveredState {
            cache,
            ..RecoveredState::default()
        };
        let mut replayed_batches: Vec<Value> = batches.into_values().collect();
        replayed_batches
            .sort_by_key(|wire| wire.get("id").and_then(Value::as_str).map_or(0, job_number));
        for wire in &replayed_batches {
            if let Some(id) = wire.get("id").and_then(Value::as_str) {
                next_batch_id = next_batch_id.max(job_number(id) + 1);
            }
        }
        recovered.batches = replayed_batches;
        recovered.next_batch_id = next_batch_id;
        let mut replayed: Vec<ReplayJob> = jobs.into_values().collect();
        replayed.sort_by_key(|j| job_number(&j.record.id));
        let mut pending_specs: HashMap<String, Value> = HashMap::new();
        for mut job in replayed {
            next_id = next_id.max(job_number(&job.record.id) + 1);
            if !job.record.status.is_terminal() {
                match job
                    .spec
                    .take()
                    .map(|wire| (JobSpec::from_wire(&wire), wire))
                {
                    Some((Ok(spec), wire)) => {
                        job.record.status = JobStatus::Queued;
                        pending_specs.insert(job.record.id.clone(), wire);
                        recovered.pending.push((job.record.id.clone(), spec));
                    }
                    _ => {
                        // The spec was lost or no longer validates;
                        // surface that instead of silently dropping
                        // the job.
                        job.record.status = JobStatus::Failed;
                        job.record.error = Some((
                            "recovery".to_owned(),
                            "job spec could not be recovered from the state directory".to_owned(),
                        ));
                    }
                }
            }
            recovered.jobs.push(job.record);
        }
        recovered.next_id = next_id;

        let persister = Self {
            dir: dir.to_path_buf(),
            wal: Mutex::new(wal),
            pending_specs: Mutex::new(pending_specs),
            snapshot_every: snapshot_every.max(1),
            appends_since_snapshot: AtomicU64::new(0),
            appended: Counter::new(),
            snapshots: Counter::new(),
            errors: Counter::new(),
        };
        Ok((persister, recovered))
    }

    /// The state directory this persister writes to.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn append(&self, op: Value) {
        let _span = srm_obs::profile::span("wal-append");
        let payload = op.to_json();
        let mut wal = lock_ignoring_poison(&self.wal);
        if let Err(e) = wal.append(payload.as_bytes()) {
            // Durability degrades, service continues: the op stays in
            // memory and the next successful snapshot re-captures it.
            self.errors.incr();
            eprintln!("srm-serve: WAL append failed: {e}");
        }
        drop(wal);
        self.appended.incr();
        self.appends_since_snapshot.fetch_add(1, Ordering::Relaxed);
    }

    /// Logs a job submission (the full wire spec).
    pub fn record_submit(&self, id: &str, spec: &JobSpec) {
        let wire = spec.to_wire();
        lock_ignoring_poison(&self.pending_specs).insert(id.to_owned(), wire.clone());
        self.append(Value::obj(vec![
            ("op", Value::Str("submit".to_owned())),
            ("id", Value::Str(id.to_owned())),
            ("spec", wire),
        ]));
    }

    /// Logs a worker claiming a job (queued → running).
    pub fn record_claim(&self, id: &str) {
        self.append(Value::obj(vec![
            ("op", Value::Str("claim".to_owned())),
            ("id", Value::Str(id.to_owned())),
        ]));
    }

    /// Logs a terminal transition, carrying the whole outcome so the
    /// op can rebuild the record standalone (cache-served jobs never
    /// had a `submit` op).
    pub fn record_terminal(&self, record: &JobRecord) {
        lock_ignoring_poison(&self.pending_specs).remove(&record.id);
        let op = match record.status {
            JobStatus::Done => "done",
            JobStatus::Failed => "fail",
            JobStatus::Cancelled => "cancel",
            JobStatus::Queued | JobStatus::Running => return,
        };
        let mut fields: Vec<(&str, Value)> = vec![
            ("op", Value::Str(op.to_owned())),
            ("id", Value::Str(record.id.clone())),
            ("kind", Value::Str(record.kind.label().to_owned())),
            ("key", Value::Str(record.cache_key.clone())),
            ("cached", Value::Bool(record.cached)),
            ("wall_ms", Value::Num(record.wall_ms)),
        ];
        if !record.trace_id.is_empty() {
            fields.push(("trace_id", Value::Str(record.trace_id.clone())));
        }
        if let Some(result) = &record.result {
            fields.push(("result", result.clone()));
        }
        if let Some((kind, message)) = &record.error {
            fields.push(("error_kind", Value::Str(kind.clone())));
            fields.push(("error_message", Value::Str(message.clone())));
        }
        self.append(Value::obj(fields));
    }

    /// Logs a batch registration (the full wire record). Batch
    /// membership never changes after submit, so one op per batch is
    /// the whole registry trail; item jobs persist through their own
    /// ops.
    pub fn record_batch(&self, record: &BatchRecord) {
        self.append(Value::obj(vec![
            ("op", Value::Str("batch".to_owned())),
            ("batch", record.to_wire()),
        ]));
    }

    /// Logs the removal of a record whose queue push was rejected
    /// after the id was allocated (429), so replay drops it too.
    pub fn record_drop(&self, id: &str) {
        lock_ignoring_poison(&self.pending_specs).remove(id);
        self.append(Value::obj(vec![
            ("op", Value::Str("drop".to_owned())),
            ("id", Value::Str(id.to_owned())),
        ]));
    }

    /// Writes a snapshot and truncates the log if `snapshot_every`
    /// appends have accumulated. Call after terminal transitions.
    pub fn maybe_snapshot(&self, store: &JobStore, cache: &FitCache, batches: &BatchStore) {
        if self.appends_since_snapshot.load(Ordering::Relaxed) >= self.snapshot_every {
            self.snapshot_now(store, cache, batches);
        }
    }

    /// Unconditionally snapshots live state and truncates the log.
    ///
    /// The WAL lock is held across collect + write + truncate: every
    /// transition that reached the store before collection is in the
    /// snapshot; any that had not yet appended lands in the fresh log
    /// and replays idempotently over the snapshot.
    pub fn snapshot_now(&self, store: &JobStore, cache: &FitCache, batches: &BatchStore) {
        let mut wal = lock_ignoring_poison(&self.wal);
        let doc = {
            let pending = lock_ignoring_poison(&self.pending_specs);
            snapshot_doc(store, cache, batches, &pending)
        };
        crash_point("snapshot-write");
        if let Err(e) = write_snapshot(&self.dir.join(SNAPSHOT_FILE), doc.to_json().as_bytes()) {
            self.errors.incr();
            eprintln!("srm-serve: snapshot write failed: {e}");
            return;
        }
        if let Err(e) = wal.reset() {
            self.errors.incr();
            eprintln!("srm-serve: WAL truncate failed: {e}");
            return;
        }
        drop(wal);
        self.appends_since_snapshot.store(0, Ordering::Relaxed);
        self.snapshots.incr();
    }

    /// Current log/snapshot counters for `/metrics`.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        let wal = lock_ignoring_poison(&self.wal);
        WalStats {
            bytes: wal.bytes(),
            records: wal.records(),
            appended: self.appended.get(),
            snapshots: self.snapshots.get(),
            errors: self.errors.get(),
        }
    }
}

/// Serialises the full live state.
fn snapshot_doc(
    store: &JobStore,
    cache: &FitCache,
    batches: &BatchStore,
    pending: &HashMap<String, Value>,
) -> Value {
    let jobs: Vec<Value> = store
        .all_records()
        .into_iter()
        .map(|record| {
            let mut fields: Vec<(&str, Value)> = vec![
                ("id", Value::Str(record.id.clone())),
                ("kind", Value::Str(record.kind.label().to_owned())),
                ("key", Value::Str(record.cache_key.clone())),
                ("status", Value::Str(record.status.label().to_owned())),
                ("cached", Value::Bool(record.cached)),
                ("wall_ms", Value::Num(record.wall_ms)),
            ];
            if !record.trace_id.is_empty() {
                fields.push(("trace_id", Value::Str(record.trace_id.clone())));
            }
            if let Some(spec) = pending.get(&record.id) {
                fields.push(("spec", spec.clone()));
            }
            if let Some(result) = &record.result {
                fields.push(("result", result.clone()));
            }
            if let Some((kind, message)) = &record.error {
                fields.push(("error_kind", Value::Str(kind.clone())));
                fields.push(("error_message", Value::Str(message.clone())));
            }
            Value::obj(fields)
        })
        .collect();
    let cache_entries: Vec<Value> = cache
        .entries()
        .into_iter()
        .map(|(key, result)| Value::obj(vec![("key", Value::Str(key)), ("result", result)]))
        .collect();
    let batch_entries: Vec<Value> = batches
        .all_records()
        .into_iter()
        .map(|record| record.to_wire())
        .collect();
    Value::obj(vec![
        ("version", Value::Num(1.0)),
        ("next_id", Value::Num(store.next_job_number() as f64)),
        (
            "next_batch_id",
            Value::Num(batches.next_batch_number() as f64),
        ),
        ("jobs", Value::Arr(jobs)),
        ("cache", Value::Arr(cache_entries)),
        ("batches", Value::Arr(batch_entries)),
    ])
}

/// Rebuilds a replay map from a snapshot document. Malformed entries
/// are skipped — a snapshot is a best-effort floor, the WAL replays
/// on top.
fn apply_snapshot(
    doc: &Value,
    jobs: &mut HashMap<String, ReplayJob>,
    cache: &mut Vec<(String, Value)>,
    batches: &mut HashMap<String, Value>,
    next_id: &mut u64,
    next_batch_id: &mut u64,
) {
    if let Some(n) = doc.get("next_id").and_then(Value::as_f64) {
        if n >= 1.0 {
            *next_id = n as u64;
        }
    }
    if let Some(n) = doc.get("next_batch_id").and_then(Value::as_f64) {
        if n >= 1.0 {
            *next_batch_id = n as u64;
        }
    }
    for entry in doc.get("jobs").and_then(Value::as_arr).unwrap_or(&[]) {
        let Some(job) = replay_job_from(entry) else {
            continue;
        };
        jobs.insert(job.record.id.clone(), job);
    }
    for entry in doc.get("cache").and_then(Value::as_arr).unwrap_or(&[]) {
        let (Some(key), Some(result)) = (
            entry.get("key").and_then(Value::as_str),
            entry.get("result"),
        ) else {
            continue;
        };
        cache.push((key.to_owned(), result.clone()));
    }
    for entry in doc.get("batches").and_then(Value::as_arr).unwrap_or(&[]) {
        let Some(id) = entry.get("id").and_then(Value::as_str) else {
            continue;
        };
        batches.insert(id.to_owned(), entry.clone());
    }
}

/// Builds a [`ReplayJob`] from a snapshot job entry or a terminal WAL
/// op (both carry the same field names).
fn replay_job_from(entry: &Value) -> Option<ReplayJob> {
    let id = entry.get("id").and_then(Value::as_str)?;
    let kind = JobKind::parse(entry.get("kind").and_then(Value::as_str).unwrap_or(""))?;
    let key = entry.get("key").and_then(Value::as_str).unwrap_or("");
    let status = status_from_label(entry.get("status").and_then(Value::as_str).unwrap_or(""))?;
    let mut record = JobRecord::new(id.to_owned(), kind, key.to_owned(), status);
    record.cached = entry.get("cached") == Some(&Value::Bool(true));
    record.wall_ms = entry.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0);
    if let Some(trace_id) = entry.get("trace_id").and_then(Value::as_str) {
        record.trace_id = trace_id.to_owned();
    }
    record.result = entry.get("result").cloned();
    if let Some(kind) = entry.get("error_kind").and_then(Value::as_str) {
        let message = entry
            .get("error_message")
            .and_then(Value::as_str)
            .unwrap_or("");
        record.error = Some((kind.to_owned(), message.to_owned()));
    }
    Some(ReplayJob {
        record,
        spec: entry.get("spec").cloned(),
    })
}

/// Applies one WAL op to the replay map. Ops are idempotent and
/// status-monotone, so replaying an op the snapshot already captured
/// is a no-op.
fn apply_op(
    op: &Value,
    jobs: &mut HashMap<String, ReplayJob>,
    cache: &mut Vec<(String, Value)>,
    batches: &mut HashMap<String, Value>,
) {
    let Some(name) = op.get("op").and_then(Value::as_str) else {
        return;
    };
    if name == "batch" {
        if let Some(id) = op
            .get("batch")
            .and_then(|wire| wire.get("id"))
            .and_then(Value::as_str)
        {
            if let Some(wire) = op.get("batch") {
                batches.insert(id.to_owned(), wire.clone());
            }
        }
        return;
    }
    let Some(id) = op.get("id").and_then(Value::as_str) else {
        return;
    };
    match name {
        "submit" => {
            let Some(spec_wire) = op.get("spec") else {
                return;
            };
            let Ok(spec) = JobSpec::from_wire(spec_wire) else {
                return;
            };
            jobs.entry(id.to_owned()).or_insert_with(|| ReplayJob {
                record: JobRecord::new(
                    id.to_owned(),
                    spec.kind,
                    spec.cache_key(),
                    JobStatus::Queued,
                )
                .with_trace_id(&spec.trace_id),
                spec: Some(spec_wire.clone()),
            });
        }
        "claim" => {
            if let Some(job) = jobs.get_mut(id) {
                if status_rank(JobStatus::Running) >= status_rank(job.record.status) {
                    job.record.status = JobStatus::Running;
                }
            }
        }
        "done" | "fail" | "cancel" => {
            let status = match name {
                "done" => "done",
                "fail" => "failed",
                _ => "cancelled",
            };
            // Terminal ops carry the whole outcome; synthesise the
            // `status` field and reuse the snapshot-entry shape.
            let mut fields: Vec<(&str, Value)> = vec![("status", Value::Str(status.to_owned()))];
            for name in [
                "id",
                "kind",
                "key",
                "cached",
                "wall_ms",
                "trace_id",
                "result",
                "error_kind",
                "error_message",
            ] {
                if let Some(value) = op.get(name) {
                    fields.push((name, value.clone()));
                }
            }
            let Some(job) = replay_job_from(&Value::obj(fields)) else {
                return;
            };
            if name == "done" && !job.record.cached {
                if let Some(result) = &job.record.result {
                    cache.retain(|(key, _)| key != &job.record.cache_key);
                    cache.push((job.record.cache_key.clone(), result.clone()));
                }
            }
            match jobs.get_mut(id) {
                Some(existing) => {
                    if status_rank(job.record.status) >= status_rank(existing.record.status) {
                        existing.record = job.record;
                        existing.spec = None;
                    }
                }
                None => {
                    jobs.insert(id.to_owned(), job);
                }
            }
        }
        "drop" => {
            jobs.remove(id);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_obs::json::parse;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srm_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fit_spec(seed: u64) -> JobSpec {
        let body = parse(&format!(
            r#"{{"kind":"fit","dataset":"musa_cc96","chains":1,"samples":50,"burn_in":10,"seed":{seed}}}"#
        ))
        .unwrap();
        JobSpec::from_json(&body).unwrap()
    }

    fn done_record(id: &str, spec: &JobSpec, tag: f64) -> JobRecord {
        let mut record =
            JobRecord::new(id.to_owned(), spec.kind, spec.cache_key(), JobStatus::Done);
        record.result = Some(Value::obj(vec![("answer", Value::Num(tag))]));
        record.wall_ms = 12.5;
        record
    }

    #[test]
    fn submit_claim_done_replays_to_a_done_record_with_cache_entry() {
        let dir = temp_dir("lifecycle");
        let spec = fit_spec(7);
        {
            let (p, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            assert!(recovered.jobs.is_empty());
            assert_eq!(recovered.next_id, 1);
            p.record_submit("job-1", &spec);
            p.record_claim("job-1");
            p.record_terminal(&done_record("job-1", &spec, 42.0));
        }
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert_eq!(recovered.jobs.len(), 1);
        let job = &recovered.jobs[0];
        assert_eq!(job.status, JobStatus::Done);
        assert_eq!(job.wall_ms, 12.5);
        assert!(recovered.pending.is_empty());
        assert_eq!(recovered.cache.len(), 1);
        assert_eq!(recovered.cache[0].0, spec.cache_key());
        assert_eq!(recovered.next_id, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_flight_jobs_come_back_as_pending_with_equal_specs() {
        let dir = temp_dir("pending");
        let spec = fit_spec(11);
        {
            let (p, _) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            p.record_submit("job-1", &spec);
            p.record_claim("job-1"); // running when the process dies
            p.record_submit("job-2", &spec); // still queued
        }
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert_eq!(recovered.pending.len(), 2);
        assert_eq!(recovered.pending[0].0, "job-1");
        assert_eq!(recovered.pending[1].0, "job-2");
        for (_, recovered_spec) in &recovered.pending {
            assert_eq!(recovered_spec.cache_key(), spec.cache_key());
            assert_eq!(recovered_spec.to_wire().to_json(), spec.to_wire().to_json());
        }
        for job in &recovered.jobs {
            assert_eq!(job.status, JobStatus::Queued);
        }
        assert_eq!(recovered.next_id, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_the_log_and_preserves_state() {
        let dir = temp_dir("compact");
        let spec = fit_spec(13);
        let store = JobStore::new();
        let cache = FitCache::with_capacity(8);
        {
            let (p, _) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            store.set_next_id(3);
            let record = done_record("job-1", &spec, 1.0);
            cache.insert(
                &record.cache_key,
                Value::obj(vec![("answer", Value::Num(1.0))]),
            );
            store.insert(record.clone());
            p.record_submit("job-1", &spec);
            p.record_claim("job-1");
            p.record_terminal(&record);
            assert!(p.stats().records >= 3);
            p.snapshot_now(&store, &cache, &BatchStore::new());
            let stats = p.stats();
            assert_eq!(stats.records, 0, "log should be truncated");
            assert_eq!(stats.snapshots, 1);
            assert_eq!(stats.errors, 0);
        }
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert_eq!(recovered.jobs.len(), 1);
        assert_eq!(recovered.jobs[0].status, JobStatus::Done);
        assert_eq!(recovered.cache.len(), 1);
        assert_eq!(recovered.next_id, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaying_an_op_already_in_the_snapshot_is_idempotent() {
        let dir = temp_dir("idempotent");
        let spec = fit_spec(17);
        let store = JobStore::new();
        let cache = FitCache::with_capacity(8);
        {
            let (p, _) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            let record = done_record("job-1", &spec, 5.0);
            store.insert(record.clone());
            p.record_submit("job-1", &spec);
            p.record_terminal(&record);
            p.snapshot_now(&store, &cache, &BatchStore::new());
            // Crash between store mutation and snapshot can leave the
            // same terminal op in both snapshot and (fresh) WAL.
            p.record_terminal(&record);
        }
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert_eq!(recovered.jobs.len(), 1);
        assert_eq!(recovered.jobs[0].status, JobStatus::Done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_claim_replayed_after_a_terminal_op_does_not_rewind() {
        let dir = temp_dir("monotone");
        let spec = fit_spec(19);
        {
            let (p, _) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            p.record_submit("job-1", &spec);
            let mut record = done_record("job-1", &spec, 2.0);
            record.status = JobStatus::Cancelled;
            record.result = None;
            p.record_terminal(&record);
            // A duplicated claim op after the cancel (e.g. from an op
            // captured by both snapshot and log) must not resurrect
            // the job.
            p.record_claim("job-1");
        }
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert_eq!(recovered.jobs.len(), 1);
        assert_eq!(recovered.jobs[0].status, JobStatus::Cancelled);
        assert!(recovered.pending.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_ids_survive_replay_through_wal_and_snapshot() {
        let dir = temp_dir("traceid");
        let mut spec = fit_spec(37);
        spec.trace_id = "0123456789abcdef0123456789abcdef".into();
        {
            let (p, _) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            p.record_submit("job-1", &spec);
            let record =
                done_record("job-2", &spec, 9.0).with_trace_id("fedcba9876543210fedcba9876543210");
            p.record_submit("job-2", &spec);
            p.record_terminal(&record);
        }
        // WAL replay restores both the pending and the terminal ids.
        let store = JobStore::new();
        let cache = FitCache::with_capacity(8);
        {
            let (p, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            assert_eq!(recovered.jobs[0].trace_id, spec.trace_id);
            assert_eq!(
                recovered.jobs[1].trace_id,
                "fedcba9876543210fedcba9876543210"
            );
            assert_eq!(recovered.pending[0].1.trace_id, spec.trace_id);
            for job in recovered.jobs {
                store.insert(job);
            }
            // Compact: the ids must survive the snapshot path too.
            p.snapshot_now(&store, &cache, &BatchStore::new());
        }
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert_eq!(recovered.jobs[0].trace_id, spec.trace_id);
        assert_eq!(
            recovered.jobs[1].trace_id,
            "fedcba9876543210fedcba9876543210"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_submissions_leave_no_trace_after_replay() {
        let dir = temp_dir("drop");
        let spec = fit_spec(23);
        {
            let (p, _) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            p.record_submit("job-1", &spec);
            p.record_drop("job-1");
        }
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert!(recovered.jobs.is_empty());
        assert!(recovered.pending.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_torn_wal_tail_recovers_the_valid_prefix() {
        let dir = temp_dir("torn");
        let spec = fit_spec(29);
        {
            let (p, _) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            p.record_submit("job-1", &spec);
            p.record_terminal(&done_record("job-1", &spec, 3.0));
        }
        // Simulate a crash mid-append: garbage after the last record.
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        file.write_all(&[0x7f, 0x00, 0x01, 0x02]).unwrap();
        drop(file);
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert_eq!(recovered.jobs.len(), 1);
        assert_eq!(recovered.jobs[0].status, JobStatus::Done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_ops_replay_through_log_and_snapshot() {
        use crate::batch::{BatchItemRef, BatchRecord, BatchStore};
        let dir = temp_dir("batch");
        let record = BatchRecord {
            id: "batch-3".to_owned(),
            master_seed: 42,
            items: vec![BatchItemRef {
                label: "a".to_owned(),
                job_id: "job-1".to_owned(),
                seed: 7,
                cached: false,
            }],
            cache_hits: 0,
            remaining: 1,
            submitted: std::time::Instant::now(),
        };
        {
            let (p, _) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            p.record_batch(&record);
        }
        // Replayed from the WAL alone.
        let batches = BatchStore::new();
        {
            let (p, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
            assert_eq!(recovered.batches.len(), 1);
            assert_eq!(recovered.next_batch_id, 4);
            let back = BatchRecord::from_wire(&recovered.batches[0]).unwrap();
            assert_eq!(back.id, "batch-3");
            assert_eq!(back.items[0].job_id, "job-1");
            batches.insert(back, &[]);
            // Compact: the batch must survive via the snapshot too.
            p.snapshot_now(&JobStore::new(), &FitCache::with_capacity(4), &batches);
            assert_eq!(p.stats().records, 0);
        }
        let (_, recovered) = Persister::open(&dir, SyncPolicy::Never, 1_000).unwrap();
        assert_eq!(recovered.batches.len(), 1);
        assert_eq!(recovered.next_batch_id, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maybe_snapshot_honours_the_cadence() {
        let dir = temp_dir("cadence");
        let spec = fit_spec(31);
        let store = JobStore::new();
        let cache = FitCache::with_capacity(8);
        let (p, _) = Persister::open(&dir, SyncPolicy::Never, 3).unwrap();
        p.record_submit("job-1", &spec);
        p.maybe_snapshot(&store, &cache, &BatchStore::new());
        assert_eq!(p.stats().snapshots, 0, "below cadence: no snapshot");
        p.record_claim("job-1");
        p.record_terminal(&done_record("job-1", &spec, 1.0));
        p.maybe_snapshot(&store, &cache, &BatchStore::new());
        assert_eq!(p.stats().snapshots, 1, "cadence reached: snapshot");
        assert_eq!(p.stats().records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
