//! End-to-end tests of the serving contract: bit-identical results
//! over HTTP, cache hits without re-sampling, and deterministic
//! backpressure with a graceful drain.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use srm_core::{Fit, FitConfig};
use srm_mcmc::runner::RunOptions;
use srm_mcmc::RetryPolicy;
use srm_obs::json::{parse, Value};
use srm_serve::{Gate, JobSpec, JobStatus, Server, ServerConfig};

/// One request over a fresh connection; returns (status, raw head,
/// body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: srm\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (head, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_owned(), payload.to_owned())
}

fn submit(addr: SocketAddr, body: &str) -> (u16, Value) {
    let (status, _, payload) = http(addr, "POST", "/v1/jobs", body);
    (status, parse(&payload).expect("json response"))
}

fn wait_done(addr: SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, _, payload) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        let doc = parse(&payload).expect("status json");
        match doc.get("status").and_then(Value::as_str) {
            Some("done") => return,
            Some("queued" | "running") => {}
            other => panic!("job {id} ended as {other:?}: {payload}"),
        }
        assert!(Instant::now() < deadline, "job {id} did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
}

const FIT_JOB: &str = r#"{"kind":"fit","dataset":"musa_cc96","truncate":48,
    "model":"model0","prior":"poisson","chains":2,"samples":200,
    "burn_in":80,"seed":11}"#;

#[test]
fn http_fit_is_bit_identical_to_direct_fit() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let addr = server.addr();

    let (status, doc) = submit(addr, FIT_JOB);
    assert_eq!(status, 202, "{doc:?}");
    let id = doc
        .get("id")
        .and_then(Value::as_str)
        .expect("id")
        .to_owned();
    wait_done(addr, &id);
    let (status, _, payload) = http(addr, "GET", &format!("/v1/results/{id}"), "");
    assert_eq!(status, 200);
    let result = parse(&payload).expect("result json");

    // The same spec through the library, bypassing HTTP entirely.
    let spec = JobSpec::from_json(&parse(FIT_JOB).expect("job json")).expect("spec");
    let direct = Fit::try_run(
        spec.prior,
        spec.model,
        &spec.data,
        &FitConfig {
            mcmc: spec.mcmc,
            ..FitConfig::default()
        },
        &RunOptions {
            retry: RetryPolicy::default(),
            ..RunOptions::none()
        },
    )
    .expect("direct fit");

    // JSON numbers round-trip through srm-obs' shortest formatting,
    // so equality here is bit-for-bit, not approximate.
    for (path, expected) in [
        (("residual", "mean"), direct.fit.residual.mean),
        (("residual", "median"), direct.fit.residual.median),
        (("residual", "sd"), direct.fit.residual.sd),
        (("waic", "total"), direct.fit.waic.total()),
        (("waic", "se"), direct.fit.waic.se()),
    ] {
        let got = result
            .get(path.0)
            .and_then(|v| v.get(path.1))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing {path:?}"));
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "{path:?}: {got} != {expected}"
        );
    }

    server.request_shutdown();
    let _ = server.join();
}

#[test]
fn repeat_submission_is_served_from_cache_without_sampling() {
    let trace_dir = std::env::temp_dir().join(format!("srm-serve-cache-{}", std::process::id()));
    let trace_dir_str = trace_dir.to_string_lossy().into_owned();
    let server = Server::start(ServerConfig {
        trace_dir: Some(trace_dir_str.clone()),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    let job = r#"{"kind":"fit","dataset":"short_campaign_25","model":"model0",
        "chains":1,"samples":150,"burn_in":60,"seed":4}"#;
    let (status, doc) = submit(addr, job);
    assert_eq!(status, 202, "{doc:?}");
    let first = doc
        .get("id")
        .and_then(Value::as_str)
        .expect("id")
        .to_owned();
    wait_done(addr, &first);
    let (_, _, first_result) = http(addr, "GET", &format!("/v1/results/{first}"), "");

    // Identical job again — answered synchronously from the cache.
    let (status, doc) = submit(addr, job);
    assert_eq!(status, 201, "{doc:?}");
    assert_eq!(doc.get("cached"), Some(&Value::Bool(true)));
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("done"));
    let second = doc
        .get("id")
        .and_then(Value::as_str)
        .expect("id")
        .to_owned();
    let (status, _, second_result) = http(addr, "GET", &format!("/v1/results/{second}"), "");
    assert_eq!(status, 200);
    assert_eq!(
        first_result, second_result,
        "cached result must be verbatim"
    );

    // The trace files are the proof of (no) work: the first job
    // sampled (sweep/chain events after its cache miss), the second
    // recorded a cache hit and nothing from the sampler.
    let first_trace =
        std::fs::read_to_string(trace_dir.join(format!("{first}.trace.jsonl"))).expect("trace 1");
    assert!(first_trace.contains("\"cache-miss\""), "{first_trace}");
    assert!(first_trace.contains("\"chain-start\""), "{first_trace}");
    let second_trace =
        std::fs::read_to_string(trace_dir.join(format!("{second}.trace.jsonl"))).expect("trace 2");
    assert!(second_trace.contains("\"cache-hit\""), "{second_trace}");
    assert!(!second_trace.contains("\"chain-start\""), "{second_trace}");
    assert!(!second_trace.contains("\"sweep\""), "{second_trace}");

    // The first job also leaves a manifest with the build block.
    let manifest = std::fs::read_to_string(trace_dir.join(format!("{first}.manifest.json")))
        .expect("manifest");
    assert!(manifest.contains("\"serve:fit\""), "{manifest}");

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("srm_serve_cache_hits_total 1"),
        "{metrics}"
    );

    server.request_shutdown();
    let _ = server.join();
    let _ = std::fs::remove_dir_all(trace_dir);
}

#[test]
fn progress_endpoint_reports_monotone_sweep_counts() {
    // The paused gate parks the worker after it pops the job but
    // before it claims it, so the first progress poll deterministically
    // observes the queued state (zero sweeps, no checkpoints).
    let gate = Arc::new(Gate::new());
    gate.pause();
    let server = Server::start(ServerConfig {
        workers: 1,
        gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    let job = r#"{"kind":"fit","dataset":"musa_cc96","truncate":48,"model":"model0",
        "chains":2,"samples":2500,"burn_in":500,"seed":21}"#;
    let (status, doc) = submit(addr, job);
    assert_eq!(status, 202, "{doc:?}");
    let id = doc
        .get("id")
        .and_then(Value::as_str)
        .expect("id")
        .to_owned();

    let (status, _, payload) = http(addr, "GET", &format!("/v1/jobs/{id}/progress"), "");
    assert_eq!(status, 200, "{payload}");
    let doc = parse(&payload).expect("progress json");
    assert_eq!(
        doc.get("sweeps_completed").and_then(Value::as_f64),
        Some(0.0)
    );
    assert_eq!(
        doc.get("checkpoints_seen").and_then(Value::as_f64),
        Some(0.0)
    );

    // Unknown ids 404 on the progress sub-resource like everywhere.
    assert_eq!(http(addr, "GET", "/v1/jobs/job-999/progress", "").0, 404);

    gate.release();
    let mut observed = vec![0u64];
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, _, payload) = http(addr, "GET", &format!("/v1/jobs/{id}/progress"), "");
        let doc = parse(&payload).expect("progress json");
        let sweeps = doc
            .get("sweeps_completed")
            .and_then(Value::as_f64)
            .expect("sweeps_completed") as u64;
        assert!(
            sweeps >= *observed.last().expect("non-empty"),
            "sweep count went backwards: {observed:?} then {sweeps}"
        );
        observed.push(sweeps);
        if doc.get("status").and_then(Value::as_str) == Some("done") {
            // The final checkpoint lands on each chain's last sweep,
            // so the finished job reports every sweep completed.
            assert_eq!(sweeps, 2 * (500 + 2500), "{payload}");
            let chains = doc.get("chains").and_then(Value::as_arr).expect("chains");
            assert_eq!(chains.len(), 2, "{payload}");
            let agg = doc
                .get("aggregate")
                .and_then(Value::as_arr)
                .expect("aggregate");
            assert!(
                agg.iter()
                    .any(|d| d.get("parameter").and_then(Value::as_str) == Some("residual")),
                "{payload}"
            );
            break;
        }
        assert!(Instant::now() < deadline, "job did not finish");
    }
    // The counter advanced from the queued zero to the final total.
    assert!(observed.iter().any(|&s| s > 0));

    server.request_shutdown();
    let _ = server.join();
}

#[test]
fn full_queue_gets_429_and_accepted_jobs_drain_on_shutdown() {
    // One worker held at the gate + capacity-one queue makes the
    // rejection deterministic: job A is in flight (paused), job B
    // fills the queue, job C must bounce.
    let gate = Arc::new(Gate::new());
    gate.pause();
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_secs: 7,
        gate: Some(Arc::clone(&gate)),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    let job = |seed: u32| {
        format!(
            r#"{{"kind":"fit","dataset":"short_campaign_25","chains":1,
                "samples":120,"burn_in":40,"seed":{seed}}}"#
        )
    };
    let (status, doc_a) = submit(addr, &job(1));
    assert_eq!(status, 202, "{doc_a:?}");
    // Wait for the worker to pop job A and park at the gate, so the
    // queue is observably empty before B and C go in.
    let parked = Instant::now() + Duration::from_secs(10);
    while !server.state().queue.is_empty() {
        assert!(Instant::now() < parked, "worker never picked up job A");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, doc_b) = submit(addr, &job(2));
    assert_eq!(status, 202, "{doc_b:?}");

    let (status, head, payload) = http(addr, "POST", "/v1/jobs", &job(3));
    assert_eq!(status, 429, "{payload}");
    assert!(head.contains("Retry-After: 7"), "{head}");
    assert!(payload.contains("queue-full"), "{payload}");
    // The rejected job left nothing behind.
    assert_eq!(server.state().metrics.jobs_rejected.get(), 1);

    // Graceful shutdown with the gate still closed: the drain starts,
    // then the worker is released and must finish A and B.
    server.request_shutdown();
    gate.release();
    let state = server.join();

    let id_a = doc_a.get("id").and_then(Value::as_str).expect("id a");
    let id_b = doc_b.get("id").and_then(Value::as_str).expect("id b");
    for id in [id_a, id_b] {
        let record = state.store.get(id).expect("record");
        assert_eq!(record.status, JobStatus::Done, "{id} not drained");
        assert!(record.result.is_some(), "{id} has no result");
    }
    let (_queued, _running, done, failed, cancelled) = state.store.counts();
    assert_eq!((done, failed, cancelled), (2, 0, 0));
    assert!(state.queue.is_empty());
}
