//! Test-only crash-point hook for the kill/restart fault harness.
//!
//! Production code sprinkles `crash_point("name")` calls at WAL and
//! snapshot boundaries. They are free no-ops unless the process was
//! started with
//!
//! ```text
//! SRM_CRASH_POINT=<name>[:N]
//! ```
//!
//! in its environment, in which case the N-th execution of that named
//! point (default: the first) aborts the process — the same abrupt
//! death as `kill -9`, but placed deterministically so recovery tests
//! can exercise every boundary: "log written but state not yet
//! applied", "snapshot tmp written but not renamed", and so on.
//!
//! The hook is armed per process via the environment rather than
//! `cfg(test)` so integration tests can arm the *real* binary they
//! spawn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable that arms a crash point: `<name>` or
/// `<name>:N` to abort on the N-th hit (1-based).
pub const CRASH_POINT_ENV: &str = "SRM_CRASH_POINT";

struct Armed {
    name: String,
    nth: u64,
    hits: AtomicU64,
}

fn armed() -> Option<&'static Armed> {
    static ARMED: OnceLock<Option<Armed>> = OnceLock::new();
    ARMED
        .get_or_init(|| {
            let spec = std::env::var(CRASH_POINT_ENV).ok()?;
            let spec = spec.trim();
            if spec.is_empty() {
                return None;
            }
            let (name, nth) = match spec.rsplit_once(':') {
                Some((name, count)) => match count.parse::<u64>() {
                    Ok(n) if n >= 1 => (name, n),
                    // Not a count — treat the whole spec as a name.
                    _ => (spec, 1),
                },
                None => (spec, 1),
            };
            Some(Armed {
                name: name.to_string(),
                nth,
                hits: AtomicU64::new(0),
            })
        })
        .as_ref()
}

/// Marks a named crash boundary. No-op unless this process was armed
/// for `name` via [`CRASH_POINT_ENV`], in which case the configured
/// hit aborts the process without unwinding or cleanup.
pub fn crash_point(name: &str) {
    let Some(armed) = armed() else { return };
    if armed.name != name {
        return;
    }
    let hit = armed.hits.fetch_add(1, Ordering::Relaxed) + 1;
    if hit == armed.nth {
        eprintln!("srm-store: crash point `{name}` hit {hit}: aborting");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `armed()` latches the environment once per process, so these
    // tests only cover the unarmed path (the integration harness
    // covers armed aborts in spawned processes).
    #[test]
    fn unarmed_crash_point_is_a_no_op() {
        crash_point("wal-append");
        crash_point("snapshot-renamed");
    }
}
