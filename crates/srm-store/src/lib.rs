//! srm-store — crash-durable persistence primitives for the serve
//! tier.
//!
//! Three small, dependency-free building blocks:
//!
//! - [`wal`]: an append-only **write-ahead log** of opaque byte
//!   records, each framed as `length + FNV-1a checksum + payload`.
//!   Replay tolerates torn or truncated tails: it recovers the longest
//!   valid record prefix and never panics on garbage.
//! - [`snapshot`]: **atomic file writes** (temp file + fsync + rename,
//!   then a best-effort directory fsync) and a checksummed snapshot
//!   container, so a crash can never leave a half-written snapshot —
//!   readers see either the old file or the new one, in full.
//! - [`crash`]: a **test-only crash-point hook**. Fault-harness tests
//!   arm a named point through the `SRM_CRASH_POINT` environment
//!   variable and the process aborts (as SIGKILL would) exactly at
//!   that WAL/snapshot boundary, deterministically on the N-th hit.
//!
//! The crate knows nothing about jobs or caches; srm-serve's `store`
//! module layers its record semantics on top. Keeping the framing
//! generic means the corruption property tests exercise exactly the
//! byte-level code the server trusts at boot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod snapshot;
pub mod wal;

pub use crash::crash_point;
pub use snapshot::{atomic_write_file, load_snapshot, write_snapshot};
pub use wal::{read_records, ReplayReport, SyncPolicy, WalWriter, WAL_MAGIC};

/// 64-bit FNV-1a over a byte slice — the checksum used by both the
/// WAL record framing and the snapshot container. Matches the
/// reference vectors asserted in srm-obs (`fnv1a_hex` is the same
/// function rendered as hex).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Same vectors srm-obs pins for its hex rendering.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
