//! Atomic file writes and a checksummed snapshot container.
//!
//! [`atomic_write_file`] is the publish primitive: write a temp file
//! in the same directory, fsync it, rename over the destination, then
//! best-effort fsync the directory. A crash at any step leaves either
//! the old file or the new one — never a half-written hybrid.
//!
//! Snapshots add a self-validating container on top: an 8-byte magic
//! (`SRMSNAP1`), a u64 LE FNV-1a checksum, then the payload. A
//! corrupted or foreign file loads as "no snapshot" rather than as
//! bad state.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use crate::{crash_point, fnv1a64};

/// Snapshot container magic: identifies the format and its version.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SRMSNAP1";

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, fsync, rename, best-effort directory fsync.
///
/// Crash point `snapshot-tmp` fires after the temp file is complete
/// but before the rename (old file still visible); `snapshot-renamed`
/// fires after the rename (new file visible, caller has not yet acted
/// on the success).
///
/// # Errors
///
/// Returns [`io::Error`] on any filesystem failure; the temp file is
/// removed on the error paths that can reach it.
pub fn atomic_write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!("{}.tmp", file_name.to_string_lossy()));

    let result = (|| {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
        drop(file);
        crash_point("snapshot-tmp");
        std::fs::rename(&tmp, path)?;
        crash_point("snapshot-renamed");
        // Make the rename itself durable. Failures here are ignored:
        // some filesystems refuse fsync on directories, and the write
        // is already atomic with respect to process death.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Writes a checksummed snapshot atomically.
///
/// # Errors
///
/// Returns [`io::Error`] on filesystem failure (see
/// [`atomic_write_file`]).
pub fn write_snapshot(path: &Path, payload: &[u8]) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 8 + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    atomic_write_file(path, &bytes)
}

/// Loads a snapshot payload, returning `None` when the file is
/// missing, truncated, has the wrong magic, or fails its checksum —
/// corruption means "start from the WAL alone", never an error.
///
/// # Errors
///
/// Returns [`io::Error`] only for real I/O failures (permissions,
/// hardware).
pub fn load_snapshot(path: &Path) -> io::Result<Option<Vec<u8>>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let header = SNAPSHOT_MAGIC.len() + 8;
    if bytes.len() < header || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Ok(None);
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[SNAPSHOT_MAGIC.len()..header]);
    let payload = &bytes[header..];
    if fnv1a64(payload) != u64::from_le_bytes(sum) {
        return Ok(None);
    }
    Ok(Some(payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("srm_snap_{tag}_{}.bin", std::process::id()))
    }

    #[test]
    fn snapshot_round_trips() {
        let path = temp_path("roundtrip");
        write_snapshot(&path, b"{\"jobs\":[]}").unwrap();
        assert_eq!(load_snapshot(&path).unwrap().unwrap(), b"{\"jobs\":[]}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_replaces_previous_content_and_leaves_no_tmp() {
        let path = temp_path("replace");
        atomic_write_file(&path, b"old").unwrap();
        atomic_write_file(&path, b"new").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        let mut tmp = path.clone();
        tmp.set_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(!tmp.exists(), "temp file should not survive a write");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_snapshot_loads_as_none() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_snapshot(&path).unwrap(), None);
    }

    #[test]
    fn corrupt_snapshot_loads_as_none() {
        let path = temp_path("corrupt");
        write_snapshot(&path, b"payload-payload").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), None);

        // Wrong magic entirely.
        std::fs::write(&path, b"NOTSNAPS0000000000").unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), None);

        // Shorter than the header.
        std::fs::write(&path, b"SRM").unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), None);
        let _ = std::fs::remove_file(&path);
    }
}
