//! Append-only write-ahead log with checksummed record framing.
//!
//! File layout: an 8-byte magic header (`SRMWAL01`) followed by
//! records, each framed as
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a(payload)][payload bytes]
//! ```
//!
//! The framing makes replay self-validating: a torn tail (partial
//! frame from a crash mid-append), a truncated file, or a corrupted
//! byte all fail either the length bound or the checksum, and replay
//! stops at the **longest valid record prefix** — never panicking,
//! never returning a record whose bytes were not fully and correctly
//! written. Appends are a single `write_all` of the whole frame, so
//! on a crash the kernel has either the full frame or a detectable
//! prefix of it.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

use crate::{crash_point, fnv1a64};

/// File magic: identifies the format and its version.
pub const WAL_MAGIC: &[u8; 8] = b"SRMWAL01";

/// Frame overhead per record: u32 length + u64 checksum.
pub const FRAME_OVERHEAD: usize = 4 + 8;

/// Upper bound on a single record payload. Anything larger in a
/// length field is treated as corruption, which keeps replay from
/// allocating unbounded memory on a flipped length byte.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// When appends are pushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every append: records survive power loss.
    Always,
    /// No explicit sync: records survive process death (SIGKILL)
    /// because the kernel holds them, but not a machine crash.
    Never,
}

impl SyncPolicy {
    /// Parses the CLI spelling (`always` | `off`).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for anything else.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(Self::Always),
            "off" => Ok(Self::Never),
            other => Err(format!("unknown --wal-sync value `{other}` (always|off)")),
        }
    }
}

/// What replay found in a log file.
///
/// The default value describes a log that does not exist yet —
/// what [`read_records`] reports for a missing file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Whether the file existed at all.
    pub existed: bool,
    /// Fully valid records recovered.
    pub records: u64,
    /// Byte offset of the end of the last valid record (including the
    /// magic header). [`WalWriter::open`] truncates to this offset so
    /// new appends never follow garbage.
    pub valid_bytes: u64,
    /// Whether trailing bytes were discarded (torn tail, bad checksum,
    /// bad magic, or impossible length).
    pub torn_tail: bool,
}

/// Reads every valid record from a log file, tolerating a torn or
/// corrupted tail.
///
/// A missing file is an empty log, not an error.
///
/// # Errors
///
/// Returns [`io::Error`] only for real I/O failures (permissions,
/// hardware); corruption is reported through [`ReplayReport`], never
/// as an error.
pub fn read_records(path: &Path) -> io::Result<(Vec<Vec<u8>>, ReplayReport)> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok((
                Vec::new(),
                ReplayReport {
                    existed: false,
                    records: 0,
                    valid_bytes: 0,
                    torn_tail: false,
                },
            ))
        }
        Err(e) => return Err(e),
    };
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // Wrong or truncated magic: salvage nothing, flag the tail.
        return Ok((
            Vec::new(),
            ReplayReport {
                existed: true,
                records: 0,
                valid_bytes: 0,
                torn_tail: !bytes.is_empty(),
            },
        ));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    // The scan ends at the first frame that is short, oversized, or
    // checksum-corrupt; `pos` then marks the valid prefix.
    while let Some(frame) = bytes.get(pos..pos + FRAME_OVERHEAD) {
        // Indexing is safe: `frame` has exactly FRAME_OVERHEAD bytes.
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let sum = u64::from_le_bytes([
            frame[4], frame[5], frame[6], frame[7], frame[8], frame[9], frame[10], frame[11],
        ]);
        if len > MAX_RECORD_BYTES {
            break;
        }
        let start = pos + FRAME_OVERHEAD;
        let Some(payload) = bytes.get(start..start + len) else {
            break;
        };
        if fnv1a64(payload) != sum {
            break;
        }
        records.push(payload.to_vec());
        pos = start + len;
    }
    let report = ReplayReport {
        existed: true,
        records: records.len() as u64,
        valid_bytes: pos as u64,
        torn_tail: pos != bytes.len(),
    };
    Ok((records, report))
}

/// An open write-ahead log, appending framed records.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    policy: SyncPolicy,
    bytes: u64,
    records: u64,
}

impl WalWriter {
    /// Opens (or creates) a log for appending.
    ///
    /// `report` must come from [`read_records`] on the same path: the
    /// file is truncated to `report.valid_bytes` first, so appends
    /// continue after the last valid record instead of after a torn
    /// tail. A fresh or unsalvageable file is rewritten with a clean
    /// magic header.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when the file cannot be opened, truncated
    /// or initialised.
    pub fn open(path: &Path, policy: SyncPolicy, report: &ReplayReport) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut writer = if report.valid_bytes >= WAL_MAGIC.len() as u64 {
            file.set_len(report.valid_bytes)?;
            file.seek(SeekFrom::End(0))?;
            Self {
                file,
                policy,
                bytes: report.valid_bytes,
                records: report.records,
            }
        } else {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            Self {
                file,
                policy,
                bytes: WAL_MAGIC.len() as u64,
                records: 0,
            }
        };
        if report.torn_tail {
            // The truncation itself should be durable before anything
            // is appended after it.
            writer.file.sync_data()?;
        }
        writer.maybe_sync()?;
        Ok(writer)
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        match self.policy {
            SyncPolicy::Always => self.file.sync_data(),
            SyncPolicy::Never => Ok(()),
        }
    }

    /// Appends one record (single `write_all` of the whole frame).
    ///
    /// Crash points: `wal-append` fires before the write reaches the
    /// file, `wal-appended` after it (and after the sync, when the
    /// policy asks for one).
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] on write or sync failure; the in-memory
    /// counters are only advanced on success.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        crash_point("wal-append");
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.maybe_sync()?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        crash_point("wal-appended");
        Ok(())
    }

    /// Truncates the log back to an empty (magic-only) state — called
    /// after a snapshot has durably captured everything the log held.
    ///
    /// Crash point `wal-reset` fires before the truncation, so the
    /// harness can exercise "snapshot written but log not yet
    /// truncated" (replay over the snapshot must be idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] on truncate/write failure.
    pub fn reset(&mut self) -> io::Result<()> {
        crash_point("wal-reset");
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(WAL_MAGIC)?;
        self.file.sync_data()?;
        self.bytes = WAL_MAGIC.len() as u64;
        self.records = 0;
        Ok(())
    }

    /// Bytes currently in the log (header included).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records currently in the log.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("srm_wal_{tag}_{}.log", std::process::id()))
    }

    fn fresh(path: &Path, policy: SyncPolicy) -> WalWriter {
        let _ = std::fs::remove_file(path);
        let (_, report) = read_records(path).unwrap();
        WalWriter::open(path, policy, &report).unwrap()
    }

    #[test]
    fn append_and_replay_round_trips() {
        let path = temp_path("roundtrip");
        let mut wal = fresh(&path, SyncPolicy::Always);
        for payload in [b"alpha".as_slice(), b"", b"gamma-gamma"] {
            wal.append(payload).unwrap();
        }
        assert_eq!(wal.records(), 3);
        let (records, report) = read_records(&path).unwrap();
        assert_eq!(
            records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma-gamma".to_vec()]
        );
        assert_eq!(report.records, 3);
        assert!(!report.torn_tail);
        assert_eq!(report.valid_bytes, wal.bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let (records, report) = read_records(&path).unwrap();
        assert!(records.is_empty());
        assert!(!report.existed);
        assert!(!report.torn_tail);
    }

    #[test]
    fn torn_tail_is_discarded_and_append_continues_cleanly() {
        let path = temp_path("torn");
        let mut wal = fresh(&path, SyncPolicy::Never);
        wal.append(b"kept").unwrap();
        drop(wal);
        // Simulate a crash mid-append: half a frame of garbage.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x99, 0x00, 0x00]).unwrap();
        drop(file);

        let (records, report) = read_records(&path).unwrap();
        assert_eq!(records, vec![b"kept".to_vec()]);
        assert!(report.torn_tail);

        // Re-opening truncates the tail; the next append replays fine.
        let mut wal = WalWriter::open(&path, SyncPolicy::Never, &report).unwrap();
        wal.append(b"after-crash").unwrap();
        let (records, report) = read_records(&path).unwrap();
        assert_eq!(records, vec![b"kept".to_vec(), b"after-crash".to_vec()]);
        assert!(!report.torn_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_salvages_nothing() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAWAL!rest of the file").unwrap();
        let (records, report) = read_records(&path).unwrap();
        assert!(records.is_empty());
        assert!(report.torn_tail);
        assert_eq!(report.valid_bytes, 0);
        // Opening over it rewrites a clean header.
        let mut wal = WalWriter::open(&path, SyncPolicy::Never, &report).unwrap();
        wal.append(b"fresh").unwrap();
        let (records, _) = read_records(&path).unwrap();
        assert_eq!(records, vec![b"fresh".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn impossible_length_stops_replay() {
        let path = temp_path("length");
        let mut wal = fresh(&path, SyncPolicy::Never);
        wal.append(b"ok").unwrap();
        drop(wal);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        // A frame claiming a payload far beyond MAX_RECORD_BYTES.
        file.write_all(&u32::MAX.to_le_bytes()).unwrap();
        file.write_all(&[0u8; 8]).unwrap();
        file.write_all(b"short").unwrap();
        drop(file);
        let (records, report) = read_records(&path).unwrap();
        assert_eq!(records, vec![b"ok".to_vec()]);
        assert!(report.torn_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_path("reset");
        let mut wal = fresh(&path, SyncPolicy::Always);
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), WAL_MAGIC.len() as u64);
        wal.append(b"three").unwrap();
        let (records, _) = read_records(&path).unwrap();
        assert_eq!(records, vec![b"three".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_policy_parses_cli_spellings() {
        assert_eq!(SyncPolicy::parse("always"), Ok(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("off"), Ok(SyncPolicy::Never));
        assert!(SyncPolicy::parse("sometimes").is_err());
    }
}
