//! Property tests for WAL replay under corruption.
//!
//! Strategy: build a valid log of random records, then damage it in a
//! random way (bit-flip a byte range, truncate the tail, or splice in
//! garbage) and assert the two recovery invariants:
//!
//! 1. replay never panics and never returns a record that was not in
//!    the original log;
//! 2. replay recovers the **longest valid prefix** — every record
//!    strictly before the first damaged byte is returned intact.
//!
//! The damage generator is seed-deterministic (SplitMix64), so a
//! failure reproduces exactly.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use std::path::PathBuf;

use srm_rand::{Rng, SplitMix64};
use srm_store::wal::FRAME_OVERHEAD;
use srm_store::{read_records, SyncPolicy, WalWriter, WAL_MAGIC};

const ITERATIONS: u64 = 200;

struct LogCase {
    path: PathBuf,
    records: Vec<Vec<u8>>,
    /// Byte offset where each record's frame starts.
    offsets: Vec<usize>,
    total_bytes: usize,
}

fn build_log(tag: &str, rng: &mut SplitMix64) -> LogCase {
    let path = std::env::temp_dir().join(format!(
        "srm_wal_prop_{tag}_{}_{}.log",
        std::process::id(),
        rng.next_u64()
    ));
    let _ = std::fs::remove_file(&path);
    let (_, report) = read_records(&path).expect("replay empty");
    let mut wal = WalWriter::open(&path, SyncPolicy::Never, &report).expect("open wal");

    let n_records = 1 + rng.next_below(12) as usize;
    let mut records = Vec::with_capacity(n_records);
    let mut offsets = Vec::with_capacity(n_records);
    let mut pos = WAL_MAGIC.len();
    for _ in 0..n_records {
        let len = rng.next_below(48) as usize;
        let payload: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        wal.append(&payload).expect("append");
        offsets.push(pos);
        pos += FRAME_OVERHEAD + payload.len();
        records.push(payload);
    }
    LogCase {
        path,
        records,
        offsets,
        total_bytes: pos,
    }
}

/// Records whose frames end at or before `first_damaged` must all be
/// recovered; nothing fabricated may appear.
fn check_prefix(case: &LogCase, recovered: &[Vec<u8>], first_damaged: usize) {
    let guaranteed = case
        .offsets
        .iter()
        .zip(&case.records)
        .take_while(|(offset, payload)| **offset + FRAME_OVERHEAD + payload.len() <= first_damaged)
        .count();
    assert!(
        recovered.len() >= guaranteed,
        "recovered {} records, expected at least the {} before byte {}",
        recovered.len(),
        guaranteed,
        first_damaged
    );
    for (i, payload) in recovered.iter().enumerate() {
        assert_eq!(
            payload, &case.records[i],
            "record {i} does not match the original log"
        );
    }
}

#[test]
fn bit_flips_recover_longest_valid_prefix_without_panicking() {
    let mut rng = SplitMix64::seed_from(0x5eed_u64);
    for _ in 0..ITERATIONS {
        let case = build_log("flip", &mut rng);
        let mut bytes = std::fs::read(&case.path).expect("read log");
        assert_eq!(bytes.len(), case.total_bytes);

        let start = rng.next_below(bytes.len() as u64) as usize;
        let span = 1 + rng.next_below(16) as usize;
        let end = (start + span).min(bytes.len());
        for byte in &mut bytes[start..end] {
            let mask = (rng.next_u64() & 0xff) as u8;
            // Guarantee at least one bit actually flips.
            *byte ^= if mask == 0 { 0x01 } else { mask };
        }
        std::fs::write(&case.path, &bytes).expect("write damaged log");

        let (recovered, report) = read_records(&case.path).expect("replay damaged log");
        check_prefix(&case, &recovered, start);
        assert!(report.valid_bytes <= bytes.len() as u64);
        // A flip inside record i can, with 2^-64 odds, still checksum;
        // in practice everything at and after the flip is dropped.
        assert!(report.torn_tail || recovered.len() == case.records.len());
        let _ = std::fs::remove_file(&case.path);
    }
}

#[test]
fn truncations_recover_longest_valid_prefix_without_panicking() {
    let mut rng = SplitMix64::seed_from(0x7acc_u64);
    for _ in 0..ITERATIONS {
        let case = build_log("trunc", &mut rng);
        let keep = rng.next_below(case.total_bytes as u64 + 1) as usize;
        let bytes = std::fs::read(&case.path).expect("read log");
        std::fs::write(&case.path, &bytes[..keep]).expect("truncate log");

        let (recovered, report) = read_records(&case.path).expect("replay truncated log");
        check_prefix(&case, &recovered, keep);
        // Truncation can never fabricate records: the recovered set is
        // exactly the records that fit entirely within `keep` bytes.
        let fit = case
            .offsets
            .iter()
            .zip(&case.records)
            .take_while(|(offset, payload)| **offset + FRAME_OVERHEAD + payload.len() <= keep)
            .count();
        assert_eq!(recovered.len(), fit);
        assert_eq!(report.torn_tail, keep != report.valid_bytes as usize);
        let _ = std::fs::remove_file(&case.path);
    }
}

#[test]
fn garbage_tails_recover_all_original_records() {
    let mut rng = SplitMix64::seed_from(0x9a4ba9e_u64);
    for _ in 0..ITERATIONS {
        let case = build_log("tail", &mut rng);
        let mut bytes = std::fs::read(&case.path).expect("read log");
        let extra = 1 + rng.next_below(64) as usize;
        for _ in 0..extra {
            bytes.push((rng.next_u64() & 0xff) as u8);
        }
        std::fs::write(&case.path, &bytes).expect("append garbage");

        let (recovered, report) = read_records(&case.path).expect("replay log with garbage tail");
        // All original records sit before the damage.
        assert_eq!(recovered, case.records);
        // The garbage tail may accidentally parse as frame headers of
        // a record that then fails its checksum or runs past EOF; it
        // can never *add* records, so the tail is flagged.
        assert!(report.torn_tail);
        let _ = std::fs::remove_file(&case.path);
    }
}
