//! Convergence report: run the Gibbs sampler with four chains and
//! print the full Gelman–Rubin / Geweke / ESS table, plus the
//! analytic-vs-sampled cross-check of Proposition 1.
//!
//! ```text
//! cargo run --release --example convergence_report
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::mcmc::diagnostics::{autocorrelation, report, split_rhat_rank_normalized};
use srm::prelude::*;
use srm::report::ascii::trace_plot;
use srm::report::Table;

fn main() {
    let data = datasets::musa_cc96().truncated(48).expect("valid day");
    let sampler = GibbsSampler::new(
        PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        DetectionModel::PadgettSpurrier,
        ZetaBounds::default(),
        &data,
    );
    let config = McmcConfig {
        chains: 4,
        burn_in: 1_000,
        samples: 4_000,
        thin: 1,
        seed: 17,
    };
    let output = run_chains(&sampler, &config);

    let mut table = Table::new(
        "Convergence diagnostics — model1, Poisson prior, 48 days",
        &["PSRF", "Geweke Z", "ESS", "MCSE"],
    );
    for name in output.names().to_vec() {
        let d = report(&output.per_chain(&name).expect("shared parameter set"));
        table.row(&name, &[d.psrf, d.geweke_z, d.ess, d.mcse]);
    }
    println!("{}", table.render());
    println!("pass criteria: PSRF < 1.1 and |Z| < 1.96 (the paper's thresholds)\n");

    // Modern companion diagnostic + visual check on the key quantity.
    let residual_chains = output.per_chain("residual").expect("shared parameter set");
    println!(
        "rank-normalised split-Rhat (residual): {:.4}",
        split_rhat_rank_normalized(&residual_chains)
    );
    let acf = autocorrelation(residual_chains[0], 5);
    println!(
        "residual ACF (chain 0, lags 1-5): {}",
        acf[1..]
            .iter()
            .map(|r| format!("{r:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("\nTrace of the residual count (chain 0):");
    print!("{}", trace_plot(residual_chains[0], 72, 10));
    println!();

    // Cross-check Proposition 1: conditional on each draw's (λ0, ζ),
    // the residual is exactly Poisson(λ0 Π q_i); the mixture over
    // draws must match the sampled residual mean.
    let residual = output.pooled("residual");
    let lambda0 = output.pooled("lambda0");
    let mu = output.pooled("mu");
    let theta = output.pooled("theta");
    let mut mixture_mean = 0.0;
    for i in 0..lambda0.len() {
        let probs = DetectionModel::PadgettSpurrier
            .probs(&[mu[i], theta[i]], data.len())
            .expect("sampled parameters valid");
        let survival: f64 = probs.iter().map(|p| (1.0 - p).ln()).sum();
        mixture_mean += lambda0[i] * survival.exp();
    }
    mixture_mean /= lambda0.len() as f64;
    let sampled_mean = residual.iter().sum::<f64>() / residual.len() as f64;
    println!("Proposition 1 cross-check:");
    println!("  E[residual] from sampled counts      : {sampled_mean:.3}");
    println!("  E[residual] from Poisson(λ0 Π q_i)   : {mixture_mean:.3}");
}
