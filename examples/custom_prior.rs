//! Custom priors via the unified Markov-filter view: the exact
//! residual posterior for *any* prior p.m.f. on the initial bug
//! content — the generalisation (Li, Dohi & Okamura 2023) that
//! subsumes both of the paper's priors.
//!
//! ```text
//! cargo run --release --example custom_prior
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::model::markov::{forward_filter, truncated_prior_pmf};
use srm::model::{nb_posterior, poisson_posterior, BugPrior, DetectionModel};
use srm::prelude::*;
use srm::report::Table;

fn main() {
    let data = datasets::musa_cc96().truncated(48).expect("valid day");
    // A gentle constant schedule (≈1.2 %/day ⇒ 42 expected detections
    // from ~150 bugs in 48 days) keeps the posterior informative
    // rather than collapsed.
    let zeta = [0.012];
    let probs = DetectionModel::Constant
        .probs(&zeta, data.len())
        .expect("valid parameters");

    let mut table = Table::new(
        "Exact residual posteriors at 48 days (fixed detection parameters)",
        &["mean", "sd", "median", "log-marginal"],
    );

    // 1. Poisson prior — filter must equal Proposition 1.
    let prior = BugPrior::poisson(200.0).expect("valid");
    let pmf = truncated_prior_pmf(&prior, 2_000);
    let filtered = forward_filter(&pmf, &probs, &data).expect("filter runs");
    let analytic = poisson_posterior(200.0, &probs, &data);
    table.row(
        "poisson(200) filter",
        &[
            filtered.mean(),
            filtered.variance().sqrt(),
            filtered.quantile(0.5) as f64,
            filtered.log_marginal,
        ],
    );
    table.row(
        "poisson(200) Prop.1",
        &[
            analytic.mean(),
            analytic.sd(),
            analytic.median() as f64,
            f64::NAN,
        ],
    );

    // 2. NB prior — filter must equal the corrected Proposition 2.
    let prior = BugPrior::neg_binomial(4.0, 0.02).expect("valid");
    let pmf = truncated_prior_pmf(&prior, 4_000);
    let filtered = forward_filter(&pmf, &probs, &data).expect("filter runs");
    let analytic = nb_posterior(4.0, 0.02, &probs, &data);
    table.row(
        "nb(4,0.02) filter",
        &[
            filtered.mean(),
            filtered.variance().sqrt(),
            filtered.quantile(0.5) as f64,
            filtered.log_marginal,
        ],
    );
    table.row(
        "nb(4,0.02) Prop.2",
        &[
            analytic.mean(),
            analytic.sd(),
            analytic.median() as f64,
            f64::NAN,
        ],
    );

    // 3. Something neither Proposition covers: an expert's two-point
    // prior — "either the usual ~150 bugs, or (if the new subsystem
    // is broken) ~600".
    let mut expert = vec![0.0; 1_001];
    expert[120..=180].fill(0.7 / 61.0);
    expert[550..=650].fill(0.3 / 101.0);
    let filtered = forward_filter(&expert, &probs, &data).expect("filter runs");
    table.row(
        "expert two-regime",
        &[
            filtered.mean(),
            filtered.variance().sqrt(),
            filtered.quantile(0.5) as f64,
            filtered.log_marginal,
        ],
    );

    println!("{}", table.render());
    println!("The filter rows reproduce the analytic Propositions exactly, and the");
    println!("expert-prior row shows the machinery handles priors the closed forms");
    println!("cannot — after 42 detected bugs the data already discount the");
    println!("600-bug regime.");
}
