//! Ablation-a, mixing side: effective sample size per 2 000 sweeps of
//! the collapsed versus naive Gibbs sweeps (and slice versus adaptive
//! random-walk ζ kernels) — the numbers behind DESIGN.md's choice of
//! the collapsed sweep as the default.
//!
//! ```text
//! cargo run --release --example ess_ablation
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::mcmc::diagnostics::effective_sample_size;
use srm::mcmc::gibbs::{SweepKind, ZetaKernel};
use srm::prelude::*;
use srm::rand::Xoshiro256StarStar;
use srm::report::Table;

fn ess_of(prior: PriorSpec, sweep: SweepKind, kernel: ZetaKernel, seed: u64) -> (f64, f64) {
    let data = datasets::musa_cc96();
    let sampler = GibbsSampler::new(
        prior,
        DetectionModel::Constant,
        ZetaBounds::default(),
        &data,
    )
    .with_sweep_kind(sweep)
    .with_zeta_kernel(kernel);
    let mut rng = Xoshiro256StarStar::seed_from(seed);
    let chain = sampler.run_chain(&mut rng, 500, 2_000, 1, &mut |_| {});
    let residual = effective_sample_size(chain.draws("residual").unwrap());
    let hyper = match prior {
        PriorSpec::Poisson { .. } => effective_sample_size(chain.draws("lambda0").unwrap()),
        PriorSpec::NegBinomial { .. } => effective_sample_size(chain.draws("alpha0").unwrap()),
    };
    (residual, hyper)
}

fn main() {
    let mut table = Table::new(
        "ESS out of 2 000 kept sweeps — model0 on the full dataset",
        &["ESS(residual)", "ESS(hyper)"],
    );
    let cases: [(&str, PriorSpec, SweepKind, ZetaKernel); 6] = [
        (
            "poisson collapsed+slice",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            SweepKind::Collapsed,
            ZetaKernel::Slice,
        ),
        (
            "poisson naive+slice",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            SweepKind::Naive,
            ZetaKernel::Slice,
        ),
        (
            "poisson collapsed+rw",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            SweepKind::Collapsed,
            ZetaKernel::AdaptiveRw,
        ),
        (
            "negbinom collapsed+slice",
            PriorSpec::NegBinomial { alpha_max: 100.0 },
            SweepKind::Collapsed,
            ZetaKernel::Slice,
        ),
        (
            "negbinom naive+slice",
            PriorSpec::NegBinomial { alpha_max: 100.0 },
            SweepKind::Naive,
            ZetaKernel::Slice,
        ),
        (
            "negbinom collapsed+rw",
            PriorSpec::NegBinomial { alpha_max: 100.0 },
            SweepKind::Collapsed,
            ZetaKernel::AdaptiveRw,
        ),
    ];
    for (label, prior, sweep, kernel) in cases {
        let (residual, hyper) = ess_of(prior, sweep, kernel, 4_242);
        table.row(label, &[residual, hyper]);
    }
    println!("{}", table.render());
    println!("Per-sweep cost is nearly identical (see `cargo bench` gibbs group), so");
    println!("ESS per sweep is the deciding metric: the collapsed sweep should");
    println!("dominate the naive sweep on the hyper-parameter, which is the");
    println!("bottleneck in the weakly identified models.");
}
