//! MLE baseline: the classical (non-Bayesian) discrete NHPP fits with
//! AIC/BIC, next to the Bayesian WAIC ranking — reproducing the
//! paper's motivation for WAIC (AIC/BIC need a maximum-likelihood
//! estimate, which the hierarchical Bayesian model does not have).
//!
//! ```text
//! cargo run --release --example mle_baseline
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::model::mle::fit_nhpp;
use srm::prelude::*;
use srm::report::Table;

fn main() {
    let data = datasets::musa_cc96();
    let mcmc = McmcConfig {
        chains: 2,
        burn_in: 500,
        samples: 1_500,
        thin: 1,
        seed: 19,
    };

    let mut table = Table::new(
        "MLE baseline vs Bayesian fit (full 96-day data)",
        &["lambda0_hat", "logLik", "AIC", "BIC", "WAIC(poisson)"],
    );
    for model in DetectionModel::ALL {
        let mle = fit_nhpp(&data, model, &ZetaBounds::default()).expect("fit succeeds");
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            model,
            ZetaBounds::default(),
            &data,
        );
        let waic = waic_for(&sampler, &mcmc);
        table.row(
            model.name(),
            &[
                mle.lambda0,
                mle.log_likelihood,
                mle.aic,
                mle.bic,
                waic.total(),
            ],
        );
    }
    println!("{}", table.render());
    println!("The MLE of the homogeneous/Pareto/Weibull models drifts to the");
    println!("identifiability ridge (λ̂0 → huge); the Bayesian hierarchy bounds it");
    println!("through the uniform hyper-prior, and WAIC ranks models 1–2 on top,");
    println!("mirroring the AIC ranking where the MLE exists.");
}
