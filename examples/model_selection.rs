//! Model selection: WAIC comparison of all 2 × 5 prior/model
//! combinations at one observation point (a one-row slice of the
//! paper's Table I).
//!
//! ```text
//! cargo run --release --example model_selection
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::prelude::*;
use srm::report::Table;

fn main() {
    let data = datasets::musa_cc96().truncated(48).expect("valid day");
    let mcmc = McmcConfig {
        chains: 2,
        burn_in: 500,
        samples: 1_500,
        thin: 1,
        seed: 7,
    };

    let mut table = Table::new(
        "WAIC at the 50% observation point (48 days)",
        &DetectionModel::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>(),
    );

    for (label, prior) in [
        (
            "poisson",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
        ),
        ("negbinom", PriorSpec::NegBinomial { alpha_max: 100.0 }),
    ] {
        let mut row = Vec::new();
        for model in DetectionModel::ALL {
            let sampler = GibbsSampler::new(prior, model, ZetaBounds::default(), &data);
            let waic = waic_for(&sampler, &mcmc);
            row.push(waic.total());
        }
        table.row(label, &row);
    }

    println!("{}", table.render());
    println!("Smaller is better. The paper's finding: model1 (Padgett–Spurrier)");
    println!("gives the smallest WAIC at every observation point, under both priors.");
}
