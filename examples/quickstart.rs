//! Quickstart: fit one Bayesian SRM and read off the posterior of the
//! residual number of software bugs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::prelude::*;

fn main() {
    // The paper's dataset: 136 bugs over 96 testing days (synthetic
    // stand-in with the paper's invariants; see DESIGN.md).
    let data = datasets::musa_cc96();
    println!("{data}");

    // Observe the first 48 days (the 50% observation point).
    let window = data.truncated(48).expect("48 <= 96");
    let truth = ObservationPoint::new(48).true_residual(&data);

    // Fit model1 (Padgett–Spurrier) with the Poisson prior — the
    // combination the paper ends up recommending.
    let config = srm::core::FitConfig {
        mcmc: McmcConfig {
            chains: 4,
            burn_in: 500,
            samples: 2_000,
            thin: 1,
            seed: 42,
        },
        ..srm::core::FitConfig::default()
    };
    let fit = srm::core::Fit::run(
        PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        DetectionModel::PadgettSpurrier,
        &window,
        &config,
    );

    println!("\nPosterior of the residual bug count after day 48:");
    println!(
        "  mean   : {:8.2}   (true residual: {truth})",
        fit.residual.mean
    );
    println!("  median : {:8.2}", fit.residual.median);
    println!("  mode   : {:8.2}", fit.residual.mode);
    println!("  sd     : {:8.2}", fit.residual.sd);
    let (lo, hi) = PosteriorSummary::credible_interval(&fit.residual_draws, 0.05);
    println!("  95% CI : [{lo:.0}, {hi:.0}]");
    println!("  WAIC   : {:8.3}", fit.waic.total());
    println!(
        "  converged: {} ({} parameters checked)",
        fit.converged(),
        fit.diagnostics.len()
    );
}
