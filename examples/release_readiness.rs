//! Release readiness: combine the fitted posterior with the
//! reliability function `R(h) = E[(Π q)^R]` to answer the operational
//! question — *if we ship today, what is the probability that no bug
//! surfaces in the next h days?*
//!
//! ```text
//! cargo run --release --example release_readiness
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::model::reliability::{days_until_reliability_below, reliability_curve};
use srm::prelude::*;
use srm::report::Table;

fn main() {
    let base = datasets::musa_cc96();
    let mcmc = McmcConfig {
        chains: 2,
        burn_in: 500,
        samples: 2_000,
        thin: 1,
        seed: 23,
    };

    let mut table = Table::new(
        "Reliability of release — model1 plug-in posterior at each observation point",
        &["R(10 days)", "R(30 days)", "R(50 days)", "days to R<0.9"],
    );

    for observe_at in [96usize, 116, 146] {
        let window = ObservationPoint::new(observe_at)
            .window(&base)
            .expect("valid observation point");
        for (label, prior) in [
            (
                "poisson",
                PriorSpec::Poisson {
                    lambda_max: 2_000.0,
                },
            ),
            ("negbinom", PriorSpec::NegBinomial { alpha_max: 100.0 }),
        ] {
            let fit = srm::core::Fit::run(
                prior,
                DetectionModel::PadgettSpurrier,
                &window,
                &srm::core::FitConfig {
                    mcmc,
                    ..srm::core::FitConfig::default()
                },
            );

            // Plug-in analytic posterior at the posterior-mean
            // hyper-parameters (the draws give the full mixture; the
            // plug-in is the usual reporting device).
            let mean_of = |name: &str| {
                let d = fit.output.pooled(name);
                d.iter().sum::<f64>() / d.len() as f64
            };
            let zeta = [mean_of("mu"), mean_of("theta")];
            let horizon = 50;
            let k = window.len();
            let future: Vec<f64> = ((k + 1) as u64..=(k + horizon) as u64)
                .map(|i| {
                    DetectionModel::PadgettSpurrier
                        .prob(&zeta, i)
                        .expect("valid")
                })
                .collect();
            let schedule = DetectionModel::PadgettSpurrier
                .probs(&zeta, k)
                .expect("valid");
            let posterior = match prior {
                PriorSpec::Poisson { .. } => {
                    srm::model::poisson_posterior(mean_of("lambda0"), &schedule, &window)
                }
                PriorSpec::NegBinomial { .. } => srm::model::nb_posterior(
                    mean_of("alpha0"),
                    mean_of("beta0").clamp(1e-9, 1.0 - 1e-9),
                    &schedule,
                    &window,
                ),
            };

            let curve = reliability_curve(&posterior, &future, horizon);
            let crossing =
                days_until_reliability_below(&posterior, &future, 0.9).map_or(-1.0, |d| d as f64);
            table.row(
                &format!("{observe_at}d {label}"),
                &[curve[9], curve[29], curve[49], crossing],
            );
        }
    }
    println!("{}", table.render());
    println!("(-1 in the last column: reliability never drops below 0.9 within 50 days.)");
    println!("At day 96 dozens of bugs plausibly remain, so any release horizon is");
    println!("risky (R ≈ 0); each block of quiet virtual-testing days collapses the");
    println!("posterior and pushes the reliability of shipping toward 1.");
}
