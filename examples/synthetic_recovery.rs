//! Synthetic recovery: simulate the exact detection process with a
//! known initial bug content, then check that the Bayesian posterior
//! recovers it. This validates the whole pipeline end-to-end on data
//! where the ground truth is known by construction.
//!
//! ```text
//! cargo run --release --example synthetic_recovery
//! ```

use srm::prelude::*;

fn main() {
    let true_n = 250u64;
    let horizon = 60;
    let p = 0.05;
    println!("Simulating: N = {true_n}, {horizon} days, constant p = {p}\n");

    let sim = DetectionSimulator::new(true_n, vec![p; horizon]);
    let mcmc = McmcConfig {
        chains: 2,
        burn_in: 500,
        samples: 2_000,
        thin: 1,
        seed: 13,
    };

    let mut covered = 0usize;
    let replications = 10;
    for rep in 0..replications {
        let project = sim.run(1_000 + rep);
        let fit = srm::core::Fit::run(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Constant,
            &project.data,
            &srm::core::FitConfig {
                mcmc: McmcConfig {
                    seed: mcmc.seed + rep,
                    ..mcmc
                },
                ..srm::core::FitConfig::default()
            },
        );
        // Posterior over N = detected + residual.
        let n_draws: Vec<f64> = fit
            .residual_draws
            .iter()
            .map(|r| r + project.data.total() as f64)
            .collect();
        let (lo, hi) = PosteriorSummary::credible_interval(&n_draws, 0.05);
        let hit = (lo..=hi).contains(&(true_n as f64));
        covered += usize::from(hit);
        println!(
            "rep {rep}: detected {:3}, residual truth {:3}, N 95% CI [{lo:6.1}, {hi:6.1}] {}",
            project.data.total(),
            project.true_residual,
            if hit { "covers" } else { "MISSES" }
        );
    }
    println!("\ncoverage: {covered}/{replications} 95% intervals contain the true N");
}
