//! Trend analysis: run the Laplace trend test on every embedded
//! dataset and show the running-trend chart for the primary one —
//! the pre-modelling step that motivates heterogeneous detection
//! probabilities (models 1–4) over the homogeneous model 0.
//!
//! ```text
//! cargo run --release --example trend_analysis
//! ```

use srm::data::analysis::{laplace_trend, running_laplace_trend, summarize, TrendVerdict};
use srm::data::datasets;
use srm::report::ascii::line_chart;

fn main() {
    println!("Laplace trend test across datasets (u < -1.96: growth, u > 1.96: decay)\n");
    for (name, data) in datasets::all_named() {
        let s = summarize(&data);
        match laplace_trend(&data) {
            Some(t) => {
                let verdict = match t.verdict() {
                    TrendVerdict::Growth => "reliability GROWTH",
                    TrendVerdict::Stable => "stable",
                    TrendVerdict::Decay => "reliability DECAY",
                };
                println!(
                    "{name:20} days={:3} bugs={:3} dispersion={:4.2}  u={:7.2}  p={:6.4}  {verdict}",
                    s.days, s.total, s.dispersion, t.statistic, t.p_value
                );
            }
            None => println!("{name:20} (too little data for the trend test)"),
        }
    }

    println!("\nRunning Laplace statistic on the primary dataset (one point per prefix):");
    let running = running_laplace_trend(&datasets::musa_cc96());
    print!("{}", line_chart(&running, 12));
    println!("\nThe statistic climbs while detection activity intensifies mid-campaign and");
    println!("only turns after the quiet tail — a clearly non-homogeneous environment,");
    println!("which is why the time-aware models (model1/model2) dominate the WAIC table.");
}
