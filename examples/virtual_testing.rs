//! Virtual testing: track the posterior of the residual bug count as
//! zero-count days accumulate after release (the mechanism behind the
//! collapse visible in the paper's Figs. 2–3).
//!
//! ```text
//! cargo run --release --example virtual_testing
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::prelude::*;
use srm::report::Table;

fn main() {
    let data = datasets::musa_cc96();
    let plan = ObservationPlan::paper_default(&data);
    let mcmc = McmcConfig {
        chains: 2,
        burn_in: 500,
        samples: 1_500,
        thin: 1,
        seed: 11,
    };

    let mut table = Table::new(
        "Posterior residual bugs by observation point — model1",
        &[
            "poisson mean",
            "poisson sd",
            "negbinom mean",
            "negbinom sd",
            "true",
        ],
    );

    for point in plan.points() {
        let window = point.window(&data).expect("valid plan");
        let mut row = Vec::new();
        for prior in [
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            PriorSpec::NegBinomial { alpha_max: 100.0 },
        ] {
            let fit = srm::core::Fit::run(
                prior,
                DetectionModel::PadgettSpurrier,
                &window,
                &srm::core::FitConfig {
                    mcmc,
                    ..srm::core::FitConfig::default()
                },
            );
            row.push(fit.residual.mean);
            row.push(fit.residual.sd);
        }
        row.push(point.true_residual(&data) as f64);
        table.row(&point.to_string(), &row);
    }

    println!("{}", table.render());
    println!("After the 96th day only zero counts are (virtually) observed, so the");
    println!("posterior mass of the residual count collapses toward zero — faster and");
    println!("with less spread under the Poisson prior (the paper's headline result).");
}
