//! WAIC with its standard error: is the model ranking statistically
//! meaningful? A WAIC gap smaller than ~2 SE of the difference is
//! noise — this is the calibration the paper's Table I implicitly
//! relies on when calling model1 the winner.
//!
//! ```text
//! cargo run --release --example waic_uncertainty
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example code

use srm::prelude::*;
use srm::report::Table;

fn main() {
    let data = datasets::musa_cc96().truncated(48).expect("valid day");
    let mcmc = McmcConfig {
        chains: 2,
        burn_in: 500,
        samples: 2_000,
        thin: 1,
        seed: 29,
    };

    let mut table = Table::new(
        "WAIC ± SE at 48 days — Poisson prior",
        &["WAIC", "SE", "gap to best", "distinguishable"],
    );
    let mut rows = Vec::new();
    for model in DetectionModel::ALL {
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            model,
            ZetaBounds::default(),
            &data,
        );
        let waic = waic_for(&sampler, &mcmc);
        rows.push((model, waic));
    }
    let best = rows
        .iter()
        .map(|(_, w)| w.total())
        .fold(f64::INFINITY, f64::min);
    for (model, waic) in &rows {
        let gap = waic.total() - best;
        table.row(
            model.name(),
            &[
                waic.total(),
                waic.se(),
                gap,
                if gap > 2.0 * waic.se() { 1.0 } else { 0.0 },
            ],
        );
    }
    println!("{}", table.render());
    println!("'distinguishable' = the gap to the best model exceeds 2 SE. Expect");
    println!("model3 to be clearly distinguishable (bad), while model0/2/4 sit");
    println!("within noise of each other — the paper's ranking of the middle pack");
    println!("is not statistically sharp, but model1-vs-model3 is.");
}
