#!/usr/bin/env bash
# Smoke test for batch estimation: fans one fit spec over four
# registry datasets through POST /v1/batches, checks every item's
# posterior against an individual `srm fit` run with the item's
# derived seed, re-submits the batch (must be fully cache-served),
# and runs the same fleet through `srm fit --batch`.
#
# Requires: a release build of the `srm` binary, curl, jq.
set -euo pipefail

SRM=${SRM:-target/release/srm}
WORK=$(mktemp -d)
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "batch-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$WORK/server.log" >&2 || true
    exit 1
}

[ -x "$SRM" ] || fail "srm binary not found at $SRM (cargo build --release first)"

MODEL=model0 CHAINS=2 SAMPLES=400 BURN_IN=150 SEED=11
DATASETS="short_campaign_25 ntds_26 tandem_20w ohba_sshape_22w"

echo "batch-smoke: starting server"
"$SRM" serve --addr 127.0.0.1:0 --port-file "$WORK/srm.port" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/srm.port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done
[ -s "$WORK/srm.port" ] || fail "port file never appeared"
BASE="http://127.0.0.1:$(cat "$WORK/srm.port")"
echo "batch-smoke: listening on $BASE"

ITEMS=""
for DS in $DATASETS; do
    ITEMS="$ITEMS{\"label\":\"$DS\",\"dataset\":\"$DS\"},"
done
BODY=$(printf '{"model":"%s","chains":%d,"samples":%d,"burn_in":%d,"seed":%d,"items":[%s]}' \
    "$MODEL" "$CHAINS" "$SAMPLES" "$BURN_IN" "$SEED" "${ITEMS%,}")

echo "batch-smoke: submitting a 4-dataset batch"
SUBMIT=$(curl -sf -X POST "$BASE/v1/batches" -d "$BODY")
BATCH=$(echo "$SUBMIT" | jq -r .id)
[ "$(echo "$SUBMIT" | jq -r '.progress.total')" = "4" ] || fail "batch did not admit 4 items"

for _ in $(seq 1 600); do
    ROLLUP=$(curl -sf "$BASE/v1/batches/$BATCH")
    STATUS=$(echo "$ROLLUP" | jq -r .status)
    [ "$STATUS" = "done" ] && break
    sleep 0.2
done
[ "$STATUS" = "done" ] || fail "batch $BATCH still $STATUS after timeout"
[ "$(echo "$ROLLUP" | jq -r '.progress.done')" = "4" ] || fail "not all items done: $ROLLUP"
echo "$ROLLUP" >"$WORK/rollup.json"

# Every item must match an individual `srm fit` run with the seed the
# batch derived for it. The CLI prints summaries at 3 decimals; round
# the HTTP doubles the same way and diff (the serve integration tests
# already pin bit-identity of the underlying doubles).
for DS in $DATASETS; do
    ITEM=$(jq -c ".items[] | select(.label == \"$DS\")" "$WORK/rollup.json")
    ITEM_SEED=$(echo "$ITEM" | jq -r .seed)
    JOB=$(echo "$ITEM" | jq -r .job)
    [ "$(echo "$ITEM" | jq -r .status)" = "done" ] || fail "item $DS not done: $ITEM"
    curl -sf "$BASE/v1/results/$JOB" >"$WORK/http_$DS.json"
    "$SRM" fit --dataset "$DS" --model "$MODEL" --chains "$CHAINS" \
        --samples "$SAMPLES" --burn-in "$BURN_IN" --seed "$ITEM_SEED" \
        >"$WORK/cli_$DS.txt"
    for FIELD in mean median sd; do
        CLI=$(awk -v f="$FIELD" '$1 == f && $2 == ":" { print $3 }' "$WORK/cli_$DS.txt")
        HTTP=$(jq -r ".residual.$FIELD" "$WORK/http_$DS.json" | xargs printf '%.3f')
        [ -n "$CLI" ] || fail "CLI output for $DS missing residual $FIELD"
        [ "$CLI" = "$HTTP" ] || fail "$DS residual $FIELD differs: CLI=$CLI HTTP=$HTTP"
    done
    echo "batch-smoke: $DS matches a lone fit with seed $ITEM_SEED"
done

echo "batch-smoke: re-submitting (must be fully cache-served)"
RESUBMIT=$(curl -sf -X POST "$BASE/v1/batches" -d "$BODY")
[ "$(echo "$RESUBMIT" | jq -r .status)" = "done" ] || fail "cached resubmission not done at submit"
[ "$(echo "$RESUBMIT" | jq -r .cache_hits)" = "4" ] || fail "expected 4 cache hits: $RESUBMIT"

curl -sf "$BASE/metrics" >"$WORK/metrics.txt" || fail "/metrics fetch failed"
grep -q '^srm_serve_batches_submitted_total 2$' "$WORK/metrics.txt" \
    || fail "/metrics missing batches_submitted_total 2"
grep -q '^srm_serve_batch_items_total 8$' "$WORK/metrics.txt" \
    || fail "/metrics missing batch_items_total 8"
grep -q '^srm_serve_batch_cache_hits_total 4$' "$WORK/metrics.txt" \
    || fail "/metrics missing batch_cache_hits_total 4"
grep -q '^srm_serve_batches_active 0$' "$WORK/metrics.txt" \
    || fail "/metrics missing batches_active 0"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""

echo "batch-smoke: running the same fleet through srm fit --batch"
mkdir -p "$WORK/fleet"
printf '1,5\n2,3\n3,4\n4,1\n5,2\n' >"$WORK/fleet/alpha.csv"
printf '1,4\n2,4\n3,2\n4,2\n5,1\n6,1\n' >"$WORK/fleet/beta.csv"
printf '1,4\n2,4\n3,2\n4,2\n5,1\n6,1\n' >"$WORK/fleet/beta_twin.csv"
"$SRM" fit --batch "$WORK/fleet" --model "$MODEL" --chains "$CHAINS" \
    --samples "$SAMPLES" --burn-in "$BURN_IN" --seed "$SEED" >"$WORK/batch_cli.txt"
grep -q 'batch     : 3 dataset(s)' "$WORK/batch_cli.txt" \
    || fail "--batch did not report 3 datasets"
grep -q 'failed 0' "$WORK/batch_cli.txt" || fail "--batch reported failures"
grep -q 'cache hits 1' "$WORK/batch_cli.txt" \
    || fail "--batch did not coalesce the duplicate dataset"

echo "batch-smoke: PASS"
