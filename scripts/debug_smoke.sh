#!/usr/bin/env bash
# Smoke test for end-to-end request correlation (DESIGN.md §17):
# boots `srm serve` with the structured access log and flight
# recorder, submits a fit with a pinned `x-srm-trace-id`, and checks
# that the one id is retrievable verbatim from the access log, the
# per-job JSONL trace, the progress endpoint, and `srm trace grep`.
# Also walks all four read-only /v1/debug/* endpoints, dumps the
# flight recorder on demand, and strict-lints both the job trace and
# the access log against the event schema.
#
# Requires: a release build of the `srm` binary, curl, jq.
set -euo pipefail

SRM=${SRM:-target/release/srm}
WORK=$(mktemp -d)
SERVER_PID=""
TRACE_ID="00112233445566778899aabbccddeeff"

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "debug-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$WORK/server.log" >&2 || true
    exit 1
}

[ -x "$SRM" ] || fail "srm binary not found at $SRM (cargo build --release first)"

echo "debug-smoke: starting server (access log + flight recorder)"
"$SRM" serve --addr 127.0.0.1:0 --port-file "$WORK/srm.port" \
    --trace-dir "$WORK/runs" --state-dir "$WORK/state" \
    --access-log "$WORK/access.jsonl" --flight-recorder \
    >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/srm.port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done
[ -s "$WORK/srm.port" ] || fail "port file never appeared"
BASE="http://127.0.0.1:$(cat "$WORK/srm.port")"
echo "debug-smoke: listening on $BASE"

BODY='{"kind":"fit","dataset":"musa_cc96","model":"model1","prior":"poisson","chains":2,"samples":400,"burn_in":150,"seed":11}'

echo "debug-smoke: submitting fit with pinned trace id"
curl -sf -X POST "$BASE/v1/jobs" -H "x-srm-trace-id: $TRACE_ID" -d "$BODY" \
    >"$WORK/submit.json"
JOB=$(jq -r .id "$WORK/submit.json")
[ "$(jq -r .trace_id "$WORK/submit.json")" = "$TRACE_ID" ] \
    || fail "submit body does not carry the pinned trace id"

# The response header must echo the id verbatim.
curl -sfD "$WORK/head.txt" -o /dev/null "$BASE/v1/jobs/$JOB" -H "x-srm-trace-id: $TRACE_ID"
grep -qi "^x-srm-trace-id: $TRACE_ID" "$WORK/head.txt" \
    || fail "response header does not echo the trace id"

for _ in $(seq 1 600); do
    STATUS=$(curl -sf "$BASE/v1/jobs/$JOB" | jq -r .status)
    case "$STATUS" in
        done) break ;;
        failed | cancelled) fail "job $JOB ended $STATUS" ;;
    esac
    sleep 0.2
done
[ "$STATUS" = "done" ] || fail "job $JOB still $STATUS after timeout"

echo "debug-smoke: checking the progress endpoint"
curl -sf "$BASE/v1/jobs/$JOB/progress" >"$WORK/progress.json"
[ "$(jq -r .trace_id "$WORK/progress.json")" = "$TRACE_ID" ] \
    || fail "progress endpoint lost the trace id"

echo "debug-smoke: walking /v1/debug/*"
curl -sf "$BASE/v1/debug/profile" >"$WORK/debug_profile.json"
jq -e '.phases | length > 0' "$WORK/debug_profile.json" >/dev/null \
    || fail "/v1/debug/profile has no phases"
curl -sf "$BASE/v1/debug/events" >"$WORK/debug_events.json"
jq -e '.enabled == true' "$WORK/debug_events.json" >/dev/null \
    || fail "/v1/debug/events says the recorder is off"
grep -q "$TRACE_ID" "$WORK/debug_events.json" \
    || fail "flight-recorder ring does not carry the trace id"
curl -sf "$BASE/v1/debug/queue" >"$WORK/debug_queue.json"
jq -e 'has("queue_depth") and has("conn_backlog")' "$WORK/debug_queue.json" >/dev/null \
    || fail "/v1/debug/queue missing queue depth"
curl -sf "$BASE/v1/debug/store" >"$WORK/debug_store.json"
jq -e '.jobs.done >= 1' "$WORK/debug_store.json" >/dev/null \
    || fail "/v1/debug/store does not count the finished job"
jq -e '.access_log.lines >= 1' "$WORK/debug_store.json" >/dev/null \
    || fail "/v1/debug/store missing access-log stats"

echo "debug-smoke: on-demand flight-recorder dump"
curl -sf -X POST "$BASE/v1/debug/flightrec" >"$WORK/dump.json"
DUMP=$(jq -r .dumped "$WORK/dump.json")
[ -s "$DUMP" ] || fail "flight-recorder dump file $DUMP missing or empty"
grep -q "$TRACE_ID" "$DUMP" || fail "dump does not carry the trace id"

echo "debug-smoke: SIGTERM drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""

TRACE_FILE="$WORK/runs/$JOB.trace.jsonl"
[ -s "$TRACE_FILE" ] || fail "per-job trace missing"
# Every job-trace line carries the pinned id.
MISSING=$(jq -r 'select(.trace_id != "'"$TRACE_ID"'") | .type' "$TRACE_FILE" | wc -l)
[ "$MISSING" = "0" ] || fail "$MISSING job-trace line(s) lost the trace id"
grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORK/access.jsonl" \
    || fail "access log does not carry the trace id"

echo "debug-smoke: strict-linting job trace and access log"
"$SRM" trace lint --file "$TRACE_FILE" --strict >/dev/null \
    || fail "job trace failed strict lint"
"$SRM" trace lint --file "$WORK/access.jsonl" --strict >/dev/null \
    || fail "access log failed strict lint"

echo "debug-smoke: stitching the timeline with srm trace grep"
"$SRM" trace grep --trace-id "$TRACE_ID" \
    --access-log "$WORK/access.jsonl" --trace-dir "$WORK/runs" \
    >"$WORK/grep.txt" || fail "srm trace grep failed"
grep -q "trace grep — id $TRACE_ID" "$WORK/grep.txt" || fail "grep lost the id header"
grep -q "access.jsonl" "$WORK/grep.txt" || fail "grep missed the access log"
grep -q "$JOB.trace.jsonl" "$WORK/grep.txt" || fail "grep missed the job trace"
grep -q "path=/v1/jobs" "$WORK/grep.txt" || fail "grep timeline missing the submit line"
TOTAL=$(grep -o 'total: [0-9]*' "$WORK/grep.txt" | awk '{print $2}')
[ "$TOTAL" -ge 3 ] || fail "grep stitched only $TOTAL line(s)"

echo "debug-smoke: PASS"
