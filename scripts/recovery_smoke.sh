#!/usr/bin/env bash
# Recovery smoke test for `srm serve --state-dir`: boots a durable
# server, completes one job, SIGKILLs the process while a second job
# is still sampling, restarts on the same state directory, and checks
# that (a) the finished result is byte-identical after recovery,
# (b) the interrupted job is re-queued and re-fit to a byte-identical
# result, and (c) the recovered fit cache answers a repeat submission
# with a 201 cache hit. Finishes with the /metrics WAL series and a
# graceful drain.
#
# Requires: a release build of the `srm` binary, curl, jq.
set -euo pipefail

SRM=${SRM:-target/release/srm}
WORK=$(mktemp -d)
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "recovery-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$WORK/server.log" >&2 || true
    exit 1
}

[ -x "$SRM" ] || fail "srm binary not found at $SRM (cargo build --release first)"

STATE="$WORK/state"

start_server() {
    rm -f "$WORK/srm.port"
    "$SRM" serve --addr 127.0.0.1:0 --port-file "$WORK/srm.port" \
        --state-dir "$STATE" --workers 1 >>"$WORK/server.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$WORK/srm.port" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
        sleep 0.1
    done
    [ -s "$WORK/srm.port" ] || fail "port file never appeared"
    BASE="http://127.0.0.1:$(cat "$WORK/srm.port")"
}

wait_for_result() { # job-id out-file
    local job="$1" out="$2" status
    for _ in $(seq 1 600); do
        status=$(curl -sf "$BASE/v1/jobs/$job" | jq -r .status)
        case "$status" in
            done) curl -sf "$BASE/v1/results/$job" >"$out"; return 0 ;;
            failed | cancelled) fail "job $job ended $status" ;;
        esac
        sleep 0.2
    done
    fail "job $job still $status after timeout"
}

QUICK='{"kind":"fit","dataset":"short_campaign_25","model":"model0","chains":1,"samples":300,"burn_in":100,"seed":7}'
SLOW='{"kind":"fit","dataset":"musa_cc96","model":"model1","chains":2,"samples":4000,"burn_in":800,"seed":42}'

echo "recovery-smoke: starting durable server (state dir: $STATE)"
start_server
echo "recovery-smoke: listening on $BASE"

echo "recovery-smoke: completing the first job"
JOB_A=$(curl -sf -X POST "$BASE/v1/jobs" -d "$QUICK" | jq -r .id)
wait_for_result "$JOB_A" "$WORK/result_a.json"

echo "recovery-smoke: submitting a slow job, then kill -9 mid-fit"
JOB_B=$(curl -sf -X POST "$BASE/v1/jobs" -d "$SLOW" | jq -r .id)
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "recovery-smoke: restarting on the same state dir"
start_server
echo "recovery-smoke: recovered server on $BASE"

curl -sf "$BASE/v1/results/$JOB_A" >"$WORK/result_a_recovered.json" \
    || fail "finished job $JOB_A lost after restart"
cmp -s "$WORK/result_a.json" "$WORK/result_a_recovered.json" \
    || fail "recovered result for $JOB_A is not byte-identical"
echo "recovery-smoke: $JOB_A recovered byte-identical"

echo "recovery-smoke: waiting for the interrupted job to re-fit"
wait_for_result "$JOB_B" "$WORK/result_b.json"

echo "recovery-smoke: crash-free reference fit for the same spec"
REF_STATE="$WORK/ref_state" REF_PORT="$WORK/ref.port"
"$SRM" serve --addr 127.0.0.1:0 --port-file "$REF_PORT" \
    --state-dir "$REF_STATE" --workers 1 >"$WORK/ref.log" 2>&1 &
REF_PID=$!
for _ in $(seq 1 100); do
    [ -s "$REF_PORT" ] && break
    sleep 0.1
done
[ -s "$REF_PORT" ] || fail "reference server never came up"
REF_BASE="http://127.0.0.1:$(cat "$REF_PORT")"
REF_JOB=$(curl -sf -X POST "$REF_BASE/v1/jobs" -d "$SLOW" | jq -r .id)
for _ in $(seq 1 600); do
    [ "$(curl -sf "$REF_BASE/v1/jobs/$REF_JOB" | jq -r .status)" = "done" ] && break
    sleep 0.2
done
curl -sf "$REF_BASE/v1/results/$REF_JOB" >"$WORK/result_b_ref.json"
kill -9 "$REF_PID" 2>/dev/null || true
wait "$REF_PID" 2>/dev/null || true
cmp -s "$WORK/result_b.json" "$WORK/result_b_ref.json" \
    || fail "re-fit after crash differs from the crash-free reference"
echo "recovery-smoke: $JOB_B re-fit byte-identical to the reference"

echo "recovery-smoke: repeat submission must hit the recovered cache"
CODE=$(curl -s -o "$WORK/resubmit.json" -w '%{http_code}' -X POST "$BASE/v1/jobs" -d "$QUICK")
[ "$CODE" = "201" ] || fail "repeat submission returned $CODE, expected 201 cache hit"
[ "$(jq -r .cached "$WORK/resubmit.json")" = "true" ] || fail "repeat not served from cache"

curl -sf "$BASE/metrics" >"$WORK/metrics.txt"
grep -q '^srm_wal_records_total ' "$WORK/metrics.txt" || fail "/metrics missing srm_wal_records_total"
grep -q '^srm_wal_bytes ' "$WORK/metrics.txt" || fail "/metrics missing srm_wal_bytes"
grep -q '^srm_store_snapshots_total ' "$WORK/metrics.txt" || fail "/metrics missing srm_store_snapshots_total"

echo "recovery-smoke: SIGTERM drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""
grep -q "drained and stopped" "$WORK/server.log" || fail "no drain summary in server log"

echo "recovery-smoke: PASS"
