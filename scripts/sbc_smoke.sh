#!/usr/bin/env bash
# Smoke test for `srm sbc`: runs the reduced CI calibration grid
# (2 curves x 2 priors) with --check, lints the emitted trace against
# the event schema, and proves same-seed reruns are byte-identical.
#
# Requires: a release build of the `srm` binary.
set -euo pipefail

SRM=${SRM:-target/release/srm}
WORK=$(mktemp -d)

cleanup() {
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "sbc-smoke: FAIL: $*" >&2
    exit 1
}

[ -x "$SRM" ] || fail "srm binary not found at $SRM (cargo build --release first)"

# Reduced grid: one homogeneous and one heterogeneous curve under
# both priors, 4 rank bins so 32 reps give 8 expected per bin.
cat > "$WORK/grid.json" <<'EOF'
{
  "models": ["model0", "model3"],
  "priors": ["poisson", "negbinom"],
  "days": 30,
  "lambda_max": 80,
  "alpha_max": 8,
  "bins": 4,
  "alpha": 0.001
}
EOF

REPS=32 CHAINS=2 SAMPLES=400 BURN_IN=200 SEED=20240

echo "sbc-smoke: running the reduced battery with --check"
"$SRM" sbc --grid "$WORK/grid.json" --reps "$REPS" \
    --chains "$CHAINS" --samples "$SAMPLES" --burn-in "$BURN_IN" \
    --seed "$SEED" --out "$WORK/sbc.json" \
    --trace-out "$WORK/sbc.jsonl" --check \
    | tee "$WORK/summary.txt" \
    || fail "calibration gate rejected the reduced grid"

grep -q "overall: pass" "$WORK/summary.txt" \
    || fail "summary does not report an overall pass"
grep -q '"all_passed": true' "$WORK/sbc.json" \
    || fail "report does not record all_passed"

echo "sbc-smoke: linting the trace (strict)"
"$SRM" trace lint --file "$WORK/sbc.jsonl" --strict \
    || fail "trace lint rejected the sbc event stream"
for kind in sbc-cell-start sbc-rep-done sbc-cell-done; do
    grep -q "\"$kind\"" "$WORK/sbc.jsonl" || fail "trace is missing $kind events"
done

echo "sbc-smoke: rerun must be byte-identical"
"$SRM" sbc --grid "$WORK/grid.json" --reps "$REPS" \
    --chains "$CHAINS" --samples "$SAMPLES" --burn-in "$BURN_IN" \
    --seed "$SEED" --out "$WORK/sbc2.json" --check >/dev/null \
    || fail "rerun failed"
cmp "$WORK/sbc.json" "$WORK/sbc2.json" \
    || fail "same-seed reruns differ byte-for-byte"

echo "sbc-smoke: a biased sampler must exit non-zero"
if "$SRM" sbc --grid "$WORK/grid.json" --reps "$REPS" \
    --chains "$CHAINS" --samples "$SAMPLES" --burn-in "$BURN_IN" \
    --seed "$SEED" --inject-bias 1e6 --check >/dev/null 2>&1; then
    fail "--check accepted an injected bias"
fi

echo "sbc-smoke: PASS"
