#!/usr/bin/env bash
# Smoke test for `srm serve`: boots the server on an ephemeral port,
# submits a fit job over HTTP, and checks the result against the same
# fit run through the `srm fit` CLI. Also exercises the fit cache
# (second submission must be a 201 cache hit with an identical body)
# and graceful SIGTERM drain.
#
# Requires: a release build of the `srm` binary, curl, jq.
set -euo pipefail

SRM=${SRM:-target/release/srm}
WORK=$(mktemp -d)
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$WORK/server.log" >&2 || true
    exit 1
}

[ -x "$SRM" ] || fail "srm binary not found at $SRM (cargo build --release first)"

# A small but non-trivial MCMC shape so the smoke stays fast.
MODEL=model1 PRIOR=poisson CHAINS=2 SAMPLES=400 BURN_IN=150 SEED=11

echo "serve-smoke: starting server"
"$SRM" serve --addr 127.0.0.1:0 --port-file "$WORK/srm.port" \
    --trace-dir "$WORK/runs" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/srm.port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done
[ -s "$WORK/srm.port" ] || fail "port file never appeared"
BASE="http://127.0.0.1:$(cat "$WORK/srm.port")"
echo "serve-smoke: listening on $BASE"

curl -sf "$BASE/healthz" | jq -e '.status == "ok" and (.build.crate_version | length > 0)' \
    >/dev/null || fail "/healthz not healthy"

BODY=$(printf '{"kind":"fit","dataset":"musa_cc96","model":"%s","prior":"%s","chains":%d,"samples":%d,"burn_in":%d,"seed":%d}' \
    "$MODEL" "$PRIOR" "$CHAINS" "$SAMPLES" "$BURN_IN" "$SEED")

echo "serve-smoke: submitting fit job"
SUBMIT=$(curl -sf -X POST "$BASE/v1/jobs" -d "$BODY")
JOB=$(echo "$SUBMIT" | jq -r .id)
[ "$(echo "$SUBMIT" | jq -r .cached)" = "false" ] || fail "first submission claimed a cache hit"

for _ in $(seq 1 600); do
    STATUS=$(curl -sf "$BASE/v1/jobs/$JOB" | jq -r .status)
    case "$STATUS" in
        done) break ;;
        failed | cancelled) fail "job $JOB ended $STATUS" ;;
    esac
    sleep 0.2
done
[ "$STATUS" = "done" ] || fail "job $JOB still $STATUS after timeout"

curl -sf "$BASE/v1/results/$JOB" >"$WORK/http_result.json"

echo "serve-smoke: running the same fit through the CLI"
"$SRM" fit --dataset musa_cc96 --model "$MODEL" --prior "$PRIOR" \
    --chains "$CHAINS" --samples "$SAMPLES" --burn-in "$BURN_IN" --seed "$SEED" \
    >"$WORK/cli_fit.txt"

# The CLI prints summaries at 3 decimals; round the HTTP doubles the
# same way and diff. The underlying doubles are bit-identical (the
# integration tests assert that); this guards the two front-ends.
for FIELD in mean median sd; do
    CLI=$(awk -v f="$FIELD" '$1 == f && $2 == ":" { print $3 }' "$WORK/cli_fit.txt")
    HTTP=$(jq -r ".residual.$FIELD" "$WORK/http_result.json" | xargs printf '%.3f')
    [ -n "$CLI" ] || fail "CLI output missing residual $FIELD"
    [ "$CLI" = "$HTTP" ] || fail "residual $FIELD differs: CLI=$CLI HTTP=$HTTP"
    echo "serve-smoke: residual $FIELD matches ($CLI)"
done

echo "serve-smoke: re-submitting (must be a cache hit)"
RESUBMIT=$(curl -s -o "$WORK/resubmit.json" -w '%{http_code}' -X POST "$BASE/v1/jobs" -d "$BODY")
[ "$RESUBMIT" = "201" ] || fail "cache hit returned $RESUBMIT, expected 201"
[ "$(jq -r .cached "$WORK/resubmit.json")" = "true" ] || fail "resubmission not served from cache"
JOB2=$(jq -r .id "$WORK/resubmit.json")
curl -sf "$BASE/v1/results/$JOB2" >"$WORK/http_result2.json"
cmp -s "$WORK/http_result.json" "$WORK/http_result2.json" \
    || fail "cached result is not byte-identical to the original"

# Fetch to a file first: `curl | grep -q` under pipefail flakes when
# grep matches early, closes the pipe, and curl dies with EPIPE.
curl -sf "$BASE/metrics" >"$WORK/metrics.txt" || fail "/metrics fetch failed"
grep -q '^srm_serve_cache_hits_total 1$' "$WORK/metrics.txt" \
    || fail "/metrics does not report the cache hit"
grep -q '^srm_build_info{' "$WORK/metrics.txt" \
    || fail "/metrics missing srm_build_info"
grep -q '^srm_serve_phase_seconds_total{phase="fit"}' "$WORK/metrics.txt" \
    || fail "/metrics missing the fit phase series"

echo "serve-smoke: SIGTERM drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""
grep -q "drained and stopped" "$WORK/server.log" || fail "no drain summary in server log"

echo "serve-smoke: PASS"
