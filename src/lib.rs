//! # srm — Bayesian estimation of the residual number of software bugs
//!
//! A from-scratch Rust reproduction of *"Performance Comparison of
//! Bayesian Estimations on the Residual Number of Software Bugs"*
//! (Hagihara, Dohi, Okamura; DSN 2024): discrete-time software
//! reliability models with Poisson and negative-binomial priors on
//! the initial bug content, five detection-probability curves, Gibbs
//! sampling, WAIC model selection, and the full evaluation protocol
//! (observation points + virtual testing).
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`math`] | `srm-math` | special functions, optimisers |
//! | [`rand`] | `srm-rand` | PRNGs and distribution samplers |
//! | [`data`] | `srm-data` | datasets, observation plans, simulator |
//! | [`model`] | `srm-model` | detection models, likelihood, priors, posteriors, MLE |
//! | [`mcmc`] | `srm-mcmc` | Gibbs sampler, diagnostics, summaries |
//! | [`select`] | `srm-select` | WAIC / DIC / grid search |
//! | [`sbc`] | `srm-sbc` | simulation-based calibration battery |
//! | [`core`] | `srm-core` | fit & experiment pipeline |
//! | [`batch`] | `srm-batch` | columnar multi-dataset batch executor |
//! | [`report`] | `srm-report` | tables, box plots, ASCII charts |
//! | [`obs`] | `srm-obs` | tracing events, metric sinks, run manifests |
//! | [`serve`] | `srm-serve` | HTTP estimation service: job queue, fit cache |
//!
//! # Quickstart
//!
//! ```
//! use srm::core::{Fit, FitConfig};
//! use srm::data::datasets;
//! use srm::mcmc::gibbs::PriorSpec;
//! use srm::mcmc::runner::McmcConfig;
//! use srm::model::DetectionModel;
//!
//! // Fit the Padgett–Spurrier model with the Poisson prior at the
//! // 50% observation point of the 136-bug dataset.
//! let data = datasets::musa_cc96().truncated(48).unwrap();
//! let config = FitConfig { mcmc: McmcConfig::smoke(42), ..FitConfig::default() };
//! let fit = Fit::run(
//!     PriorSpec::Poisson { lambda_max: 2000.0 },
//!     DetectionModel::PadgettSpurrier,
//!     &data,
//!     &config,
//! );
//! println!("posterior residual mean: {:.1}", fit.residual.mean);
//! assert!(fit.residual.mean >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use srm_batch as batch;
pub use srm_core as core;
pub use srm_data as data;
pub use srm_math as math;
pub use srm_mcmc as mcmc;
pub use srm_model as model;
pub use srm_obs as obs;
pub use srm_rand as rand;
pub use srm_report as report;
pub use srm_sbc as sbc;
pub use srm_select as select;
pub use srm_serve as serve;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use srm_core::{Experiment, ExperimentConfig, Fit, FitConfig};
    pub use srm_data::{
        datasets, BugCountData, DetectionSimulator, ObservationPlan, ObservationPoint,
    };
    pub use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
    pub use srm_mcmc::runner::{run_chains, McmcConfig};
    pub use srm_mcmc::PosteriorSummary;
    pub use srm_model::{nb_posterior, poisson_posterior, BugPrior, DetectionModel, ZetaBounds};
    pub use srm_select::waic::{waic_for, Waic};
}
