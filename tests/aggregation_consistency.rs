//! Time-scale invariance: the detection process composes across
//! periods (a week with daily probability `p` is one period with
//! probability `1 − (1−p)^7`), so fitting the daily data and the
//! weekly-aggregated data must tell the same story about `N`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use srm::core::{Fit, FitConfig};
use srm::mcmc::runner::McmcConfig;
use srm::prelude::*;

#[test]
fn analytic_posterior_identical_across_aggregation() {
    // With the schedule transformed exactly, Prop. 1 gives the SAME
    // residual posterior from daily and weekly views.
    let sim = DetectionSimulator::new(300, vec![0.03; 70]);
    let project = sim.run(61_001);
    let daily = &project.data;
    let weekly = daily.aggregated(7);

    let p_day = 0.03f64;
    let p_week = 1.0 - (1.0 - p_day).powi(7);
    let daily_probs = vec![p_day; daily.len()];
    let weekly_probs = vec![p_week; weekly.len()];

    let post_daily = srm::model::poisson_posterior(300.0, &daily_probs, daily);
    let post_weekly = srm::model::poisson_posterior(300.0, &weekly_probs, &weekly);
    assert!(
        (post_daily.mean() - post_weekly.mean()).abs() < 1e-9,
        "{} vs {}",
        post_daily.mean(),
        post_weekly.mean()
    );
    assert!((post_daily.sd() - post_weekly.sd()).abs() < 1e-9);
}

#[test]
fn fitted_posterior_consistent_across_aggregation() {
    // With μ *estimated*, the two views are different datasets, but
    // the posterior of N must land in the same place.
    let sim = DetectionSimulator::new(400, vec![0.025; 84]);
    let project = sim.run(61_002);
    let daily = project.data.clone();
    let weekly = daily.aggregated(7);
    assert_eq!(weekly.len(), 12);

    let fit_view = |data: &BugCountData, seed: u64| {
        let fit = Fit::run(
            PriorSpec::Poisson {
                lambda_max: 4_000.0,
            },
            DetectionModel::Constant,
            data,
            &FitConfig {
                mcmc: McmcConfig {
                    chains: 2,
                    burn_in: 600,
                    samples: 2_500,
                    thin: 1,
                    seed,
                },
                ..FitConfig::default()
            },
        );
        fit.residual.mean + data.total() as f64 // posterior mean of N
    };
    let n_daily = fit_view(&daily, 61_003);
    let n_weekly = fit_view(&weekly, 61_004);
    assert!(
        (n_daily - n_weekly).abs() < 0.35 * n_daily.max(50.0),
        "daily N {n_daily} vs weekly N {n_weekly}"
    );
    // And both should be in the neighbourhood of the truth.
    assert!(
        (n_daily - 400.0).abs() < 200.0,
        "daily posterior N mean {n_daily}"
    );
}
