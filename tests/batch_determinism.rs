//! Batch determinism battery: a batch of N datasets must be
//! bit-identical to N individual fits, invariant under item
//! permutation and worker-thread count, and must coalesce duplicate
//! datasets onto a single sampled fit.
//!
//! The crash-recovery half of the battery (kill -9 mid-batch via
//! `SRM_CRASH_POINT`, restart, byte-identical completed items) lives
//! in `crates/srm-cli/tests/batch_kill.rs` where the binary and the
//! service are available.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use srm::batch::{item_seed, run_batch, BatchSpec, ItemStatus};
use srm::core::{Fit, FitConfig};
use srm::data::{datasets, BugCountData};
use srm::mcmc::{McmcConfig, PriorSpec, RunOptions};
use srm::model::DetectionModel;

fn spec(master: u64) -> BatchSpec {
    BatchSpec {
        prior: PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        model: DetectionModel::PadgettSpurrier,
        config: FitConfig {
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 100,
                samples: 200,
                thin: 1,
                seed: master,
            },
            ..FitConfig::default()
        },
        options: RunOptions::none(),
    }
}

/// Three observation windows of the paper's primary dataset plus one
/// synthetic series — realistic shapes, mixed lengths.
fn fleet() -> Vec<(String, BugCountData)> {
    let musa = datasets::musa_cc96();
    vec![
        ("musa48".to_string(), musa.truncated(48).unwrap()),
        ("musa72".to_string(), musa.truncated(72).unwrap()),
        ("musa96".to_string(), musa.clone()),
        (
            "synth".to_string(),
            BugCountData::new(vec![5, 3, 4, 1, 2, 0, 1, 0, 0, 1]).unwrap(),
        ),
    ]
}

#[test]
fn batch_of_n_is_bit_identical_to_n_single_fits() {
    let spec = spec(2_024);
    let items = fleet();
    let report = run_batch(&spec, &items, "battery").unwrap();
    assert_eq!(report.items.len(), items.len());
    assert_eq!(report.cache_hits, 0);
    for (item, (label, data)) in report.items.iter().zip(&items) {
        assert_eq!(&item.label, label);
        assert_eq!(item.status, ItemStatus::Done);
        // The derived seed is the reproduction handle: a lone fit
        // with it must match the batch item bit-for-bit.
        assert_eq!(item.seed, item_seed(spec.master_seed(), data));
        let mut config = spec.config;
        config.mcmc.seed = item.seed;
        let lone = Fit::try_run(spec.prior, spec.model, data, &config, &spec.options).unwrap();
        let batched = item.fit.as_ref().unwrap();
        assert_eq!(batched.fit.output, lone.fit.output, "{label}");
        assert_eq!(
            batched.fit.residual_draws, lone.fit.residual_draws,
            "{label}"
        );
        assert_eq!(
            batched.fit.residual.mean.to_bits(),
            lone.fit.residual.mean.to_bits(),
            "{label}"
        );
        assert_eq!(
            batched.fit.waic.total().to_bits(),
            lone.fit.waic.total().to_bits(),
            "{label}"
        );
        for ((na, da), (nb, db)) in batched.fit.diagnostics.iter().zip(&lone.fit.diagnostics) {
            assert_eq!(na, nb, "{label}");
            assert_eq!(da.psrf.to_bits(), db.psrf.to_bits(), "{label}");
        }
    }
}

#[test]
fn batch_results_survive_permutation_and_any_thread_count() {
    let base_spec = spec(7);
    let items = fleet();
    let baseline = run_batch(&base_spec, &items, "battery").unwrap();

    let mut permuted = items.clone();
    permuted.reverse();
    for threads in [1_usize, 2, 4] {
        let mut spec_t = base_spec.clone();
        spec_t.options = RunOptions::with_threads(threads);
        let report = run_batch(&spec_t, &permuted, "battery").unwrap();
        for item in &report.items {
            let reference = baseline
                .items
                .iter()
                .find(|r| r.label == item.label)
                .unwrap();
            assert_eq!(item.seed, reference.seed, "threads={threads}");
            assert_eq!(item.dataset_hash, reference.dataset_hash);
            let (a, b) = (item.fit.as_ref().unwrap(), reference.fit.as_ref().unwrap());
            assert_eq!(
                a.fit.output, b.fit.output,
                "{} threads={threads}",
                item.label
            );
            assert_eq!(
                a.fit.residual_draws, b.fit.residual_draws,
                "{} threads={threads}",
                item.label
            );
        }
    }
}

#[test]
fn duplicate_datasets_coalesce_onto_one_fit() {
    let spec = spec(11);
    let musa48 = datasets::musa_cc96().truncated(48).unwrap();
    let items = vec![
        ("a".to_string(), musa48.clone()),
        ("b".to_string(), musa48.clone()),
        ("c".to_string(), musa48),
    ];
    let report = run_batch(&spec, &items, "battery").unwrap();
    assert_eq!(report.cache_hits, 2);
    assert!(!report.items[0].cached);
    assert!(report.items[1].cached && report.items[2].cached);
    let first = report.items[0].fit.as_ref().unwrap();
    for twin in &report.items[1..] {
        assert_eq!(twin.seed, report.items[0].seed);
        assert_eq!(
            twin.fit.as_ref().unwrap().fit.residual_draws,
            first.fit.residual_draws
        );
    }
}
