//! End-to-end request-correlation tests (DESIGN.md §17).
//!
//! Two contracts:
//!
//! 1. **One id, every surface** — a trace id pinned via the
//!    `x-srm-trace-id` header is retrievable verbatim from the
//!    response header, the submit body, the job status document, the
//!    progress endpoint, every line of the per-job JSONL trace, and
//!    the structured access log — while the result document stays
//!    free of correlation fields (results are byte-compared by smoke
//!    scripts and cache tests).
//! 2. **Correlation never perturbs the run** — posterior draws and
//!    result documents are bit-identical with the flight recorder and
//!    access log enabled vs disabled, across a small grid of models,
//!    priors, and seeds (the recorder and log sit strictly on the
//!    observation path; they have no RNG access).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use srm::data::datasets;
use srm::mcmc::gibbs::PriorSpec;
use srm::mcmc::runner::McmcConfig;
use srm::model::DetectionModel;
use srm::obs::json::{parse, Value};
use srm::obs::{flightrec, FlightRecorder, JsonlSink, Recorder, Tee, TraceId, NOOP};
use srm::serve::{run_job, JobKind, JobSpec, Server, ServerConfig};

const PINNED: &str = "00112233445566778899aabbccddeeff";

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("srm_corr_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One HTTP/1.1 exchange over a fresh connection; returns
/// `(status, headers, body)`.
fn http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: srm\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap();
    let (head, payload) = response.split_once("\r\n\r\n").unwrap();
    (status, head.to_owned(), payload.to_owned())
}

fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name)
            .then(|| value.trim().to_owned())
    })
}

fn fit_body(seed: u64) -> String {
    format!(
        "{{\"kind\":\"fit\",\"dataset\":\"musa_cc96\",\"model\":\"model1\",\
         \"prior\":\"poisson\",\"chains\":2,\"samples\":150,\"burn_in\":60,\"seed\":{seed}}}"
    )
}

fn poll_done(addr: std::net::SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _, payload) = http(addr, "GET", &format!("/v1/jobs/{id}"), &[], "");
        assert_eq!(status, 200);
        let doc = parse(&payload).unwrap();
        match doc.get("status").and_then(Value::as_str) {
            Some("done") => return,
            Some("failed") | Some("cancelled") => panic!("job ended badly: {payload}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn pinned_trace_id_correlates_every_surface() {
    let dir = temp_dir("surface");
    let access_path = dir.join("access.jsonl");
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        trace_dir: Some(dir.join("runs").to_string_lossy().into_owned()),
        access_log: Some(access_path.to_string_lossy().into_owned()),
        flight_recorder: true,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (status, head, payload) = http(
        addr,
        "POST",
        "/v1/jobs",
        &[("x-srm-trace-id", PINNED)],
        &fit_body(41),
    );
    assert_eq!(status, 202, "{payload}");
    // Surface 1: the response header echoes the id verbatim.
    assert_eq!(
        header_value(&head, "x-srm-trace-id").as_deref(),
        Some(PINNED)
    );
    // Surface 2: the submit body carries it.
    let submit = parse(&payload).unwrap();
    assert_eq!(submit.get("trace_id").and_then(Value::as_str), Some(PINNED));
    let id = submit.get("id").and_then(Value::as_str).unwrap().to_owned();

    poll_done(addr, &id);

    // Surface 3: the status document.
    let (_, _, payload) = http(addr, "GET", &format!("/v1/jobs/{id}"), &[], "");
    let doc = parse(&payload).unwrap();
    assert_eq!(doc.get("trace_id").and_then(Value::as_str), Some(PINNED));

    // Surface 4: the progress endpoint.
    let (status, _, payload) = http(addr, "GET", &format!("/v1/jobs/{id}/progress"), &[], "");
    assert_eq!(status, 200);
    let progress = parse(&payload).unwrap();
    assert_eq!(
        progress.get("trace_id").and_then(Value::as_str),
        Some(PINNED)
    );

    // The result document itself stays correlation-free.
    let (status, _, payload) = http(addr, "GET", &format!("/v1/results/{id}"), &[], "");
    assert_eq!(status, 200);
    assert!(!payload.contains("trace_id"), "{payload}");

    // Surface 5: the flight recorder's ring saw the job's events.
    let (_, _, payload) = http(addr, "GET", "/v1/debug/events", &[], "");
    assert!(payload.contains(PINNED), "{payload}");

    server.request_shutdown();
    let _ = server.join();

    // Surface 6: every line of the per-job JSONL trace.
    let trace_path = dir.join("runs").join(format!("{id}.trace.jsonl"));
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(!trace.is_empty());
    for line in trace.lines() {
        let event = parse(line).unwrap();
        assert_eq!(
            event.get("trace_id").and_then(Value::as_str),
            Some(PINNED),
            "{line}"
        );
    }

    // Surface 7: the structured access log, written after the
    // response (read post-join so the submit line is flushed).
    let access = std::fs::read_to_string(&access_path).unwrap();
    let submit_line = access
        .lines()
        .map(|l| parse(l).unwrap())
        .find(|v| {
            v.get("method").and_then(Value::as_str) == Some("POST")
                && v.get("path").and_then(Value::as_str) == Some("/v1/jobs")
        })
        .unwrap();
    assert_eq!(
        submit_line.get("trace_id").and_then(Value::as_str),
        Some(PINNED)
    );
    assert_eq!(
        submit_line.get("status").and_then(Value::as_f64),
        Some(202.0)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

fn spec(model: DetectionModel, prior: PriorSpec, seed: u64) -> JobSpec {
    JobSpec {
        kind: JobKind::Fit,
        dataset_label: "musa_cc96".into(),
        data: datasets::musa_cc96().truncated(40).unwrap(),
        model,
        prior,
        mcmc: McmcConfig {
            chains: 2,
            burn_in: 50,
            samples: 120,
            thin: 1,
            seed,
        },
        threads: 1,
        horizon: 0,
        theta_max: 0.0,
        timeout_ms: None,
        trace_id: String::new(),
    }
}

#[test]
fn draws_bit_identical_with_correlation_machinery_on_and_off() {
    let dir = temp_dir("bitident");
    let grid = [
        (
            DetectionModel::Constant,
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            7u64,
        ),
        (
            DetectionModel::PadgettSpurrier,
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            19,
        ),
        (
            DetectionModel::Constant,
            PriorSpec::NegBinomial { alpha_max: 200.0 },
            23,
        ),
    ];
    for (i, (model, prior, seed)) in grid.into_iter().enumerate() {
        // Off: the zero-cost no-op path.
        let off = run_job(&spec(model, prior, seed), None, &NOOP).unwrap();

        // On: flight recorder ring + JSONL sink + per-job recorder,
        // i.e. strictly more observation than any production config.
        flightrec::enable(srm::obs::DEFAULT_FLIGHTREC_CAPACITY);
        let trace = dir.join(format!("run_{i}.trace.jsonl"));
        let sink = JsonlSink::create(trace.to_str().unwrap())
            .unwrap()
            .with_trace_id(PINNED);
        let tee = Tee::new(vec![
            std::sync::Arc::new(sink) as std::sync::Arc<dyn Recorder>,
            std::sync::Arc::new(FlightRecorder::new(TraceId::parse(PINNED).unwrap())),
        ]);
        let mut traced_spec = spec(model, prior, seed);
        traced_spec.trace_id = PINNED.to_owned();
        let on = run_job(&traced_spec, None, &tee).unwrap();
        flightrec::disable();

        assert_eq!(
            off.result.to_json(),
            on.result.to_json(),
            "result drifted for grid point {i}"
        );
        assert_eq!(off.kept_draws, on.kept_draws);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_results_identical_with_and_without_correlation_sinks() {
    let dir = temp_dir("serve_onoff");
    let plain = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let instrumented = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        trace_dir: Some(dir.join("runs").to_string_lossy().into_owned()),
        access_log: Some(dir.join("access.jsonl").to_string_lossy().into_owned()),
        flight_recorder: true,
        ..ServerConfig::default()
    })
    .unwrap();

    let mut results = Vec::new();
    for server in [&plain, &instrumented] {
        let addr = server.addr();
        let (status, _, payload) = http(
            addr,
            "POST",
            "/v1/jobs",
            &[("x-srm-trace-id", PINNED)],
            &fit_body(59),
        );
        assert_eq!(status, 202, "{payload}");
        let id = parse(&payload)
            .unwrap()
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_owned();
        poll_done(addr, &id);
        let (status, _, payload) = http(addr, "GET", &format!("/v1/results/{id}"), &[], "");
        assert_eq!(status, 200);
        results.push(payload);
    }
    assert_eq!(results[0], results[1], "correlation sinks perturbed a fit");

    plain.request_shutdown();
    instrumented.request_shutdown();
    let _ = plain.join();
    let _ = instrumented.join();
    let _ = std::fs::remove_dir_all(&dir);
}
