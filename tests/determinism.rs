//! Reproducibility: identical seeds must give bit-identical results
//! through every layer of the stack, and the parallel runner must
//! match the serial runner.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use srm::core::{Experiment, ExperimentConfig};
use srm::data::{datasets, ObservationPlan};
use srm::mcmc::runner::{run_chains, run_chains_observed, McmcConfig};
use srm::prelude::*;

fn small_config(seed: u64) -> McmcConfig {
    McmcConfig {
        chains: 3,
        burn_in: 200,
        samples: 300,
        thin: 2,
        seed,
    }
}

#[test]
fn sampler_is_bit_reproducible() {
    let data = datasets::musa_cc96().truncated(40).unwrap();
    let sampler = GibbsSampler::new(
        PriorSpec::NegBinomial { alpha_max: 80.0 },
        DetectionModel::Weibull,
        ZetaBounds::default(),
        &data,
    );
    let a = run_chains(&sampler, &small_config(555));
    let b = run_chains(&sampler, &small_config(555));
    assert_eq!(a, b);
    let c = run_chains(&sampler, &small_config(556));
    assert_ne!(a, c);
}

#[test]
fn parallel_equals_serial() {
    let data = datasets::musa_cc96().truncated(40).unwrap();
    let sampler = GibbsSampler::new(
        PriorSpec::Poisson {
            lambda_max: 1_500.0,
        },
        DetectionModel::LogLogistic,
        ZetaBounds::default(),
        &data,
    );
    let par = run_chains(&sampler, &small_config(777));
    let ser = run_chains_observed(&sampler, &small_config(777), &mut |_| {});
    assert_eq!(par, ser);
}

#[test]
fn experiment_reproducible_end_to_end() {
    let mut config = ExperimentConfig::smoke(888);
    config.models = vec![DetectionModel::Constant, DetectionModel::PadgettSpurrier];
    config.mcmc = McmcConfig {
        chains: 1,
        burn_in: 100,
        samples: 200,
        thin: 1,
        seed: 888,
    };
    let build = || {
        Experiment::new(datasets::musa_cc96(), config.clone())
            .with_plan(ObservationPlan::from_days(&[48, 96]))
            .run()
    };
    let a = build();
    let b = build();
    assert_eq!(a.cells().len(), b.cells().len());
    for (ca, cb) in a.cells().iter().zip(b.cells()) {
        assert_eq!(ca.fit.residual, cb.fit.residual, "{:?}", ca.key);
        assert_eq!(ca.fit.waic, cb.fit.waic, "{:?}", ca.key);
    }
}

#[test]
fn waic_deterministic_via_observer() {
    let data = datasets::musa_cc96().truncated(48).unwrap();
    let sampler = GibbsSampler::new(
        PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        DetectionModel::Constant,
        ZetaBounds::default(),
        &data,
    );
    let w1 = waic_for(&sampler, &small_config(999));
    let w2 = waic_for(&sampler, &small_config(999));
    assert_eq!(w1, w2);
}
