//! Recovery and degradation tests for the fault-tolerant MCMC engine.
//!
//! These exercise the deterministic fault-injection harness: injected
//! faults must be recovered (or reported) identically run-to-run, and
//! fault-free runs must match the panicking entry points bit-for-bit —
//! the failure-path counterpart of `tests/determinism.rs`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use srm::data::datasets;
use srm::mcmc::runner::{
    run_chains, run_chains_fault_tolerant, McmcConfig, McmcOutput, RunOptions,
};
use srm::mcmc::{FaultKind, FaultPlan, FaultPoint, RetryPolicy, SrmError};
use srm::prelude::*;

fn small_config(chains: usize, seed: u64) -> McmcConfig {
    McmcConfig {
        chains,
        burn_in: 150,
        samples: 200,
        thin: 1,
        seed,
    }
}

fn make_sampler(data: &BugCountData) -> GibbsSampler {
    GibbsSampler::new(
        PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        DetectionModel::Constant,
        ZetaBounds::default(),
        data,
    )
}

/// Bitwise chain equality through the public accessors.
fn assert_chains_bit_identical(a: &McmcOutput, b: &McmcOutput) {
    assert_eq!(a.chains.len(), b.chains.len());
    for (ca, cb) in a.chains.iter().zip(&b.chains) {
        assert_eq!(ca.names(), cb.names());
        for name in ca.names() {
            let da = ca.draws(name).unwrap();
            let db = cb.draws(name).unwrap();
            assert_eq!(da.len(), db.len(), "{name}");
            for (x, y) in da.iter().zip(db) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name}");
            }
        }
    }
}

#[test]
fn fault_free_tolerant_run_is_bit_identical_to_strict() {
    let data = datasets::musa_cc96().truncated(40).unwrap();
    let sampler = make_sampler(&data);
    let config = small_config(3, 900);
    let strict = run_chains(&sampler, &config);
    // Retries enabled but nothing to recover from: the snapshot path
    // must not perturb the RNG stream.
    let options = RunOptions {
        retry: RetryPolicy::default(),
        fault_plan: FaultPlan::none(),
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };
    let tolerant = run_chains_fault_tolerant(&sampler, &config, &options).unwrap();
    assert!(tolerant
        .reports
        .iter()
        .all(|r| r.recovered && r.retries == 0));
    assert_chains_bit_identical(&strict, &tolerant.output);
}

#[test]
fn single_panicked_chain_yields_partial_output_naming_it() {
    let data = datasets::musa_cc96().truncated(40).unwrap();
    let sampler = make_sampler(&data);
    let config = small_config(4, 901);
    let options = RunOptions {
        retry: RetryPolicy::none(),
        fault_plan: FaultPlan::new(vec![FaultPoint {
            chain: 2,
            sweep: 10,
            kind: FaultKind::Panic,
        }]),
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };
    let run = run_chains_fault_tolerant(&sampler, &config, &options).unwrap();

    // 3 of 4 chains survive and the report names the lost one.
    assert_eq!(run.output.chains.len(), 3);
    assert_eq!(run.reports.len(), 4);
    let lost: Vec<usize> = run
        .reports
        .iter()
        .filter(|r| !r.recovered)
        .map(|r| r.chain)
        .collect();
    assert_eq!(lost, vec![2]);
    let fault = run.reports[2].fault.as_ref().unwrap();
    assert_eq!(fault.kind(), "chain-panicked");
    assert!(fault.to_string().contains("injected fault"));

    // Posterior summaries still assemble from the survivors.
    let draws = run.output.pooled("residual");
    assert_eq!(draws.len(), 3 * 200);
    let summary = PosteriorSummary::from_draws(&draws);
    assert!(summary.mean.is_finite());
    assert_eq!(summary.nan_draws, 0);

    // The surviving chains match the corresponding streams of a
    // fault-free run (chain RNGs are independent splits).
    let strict = run_chains(&sampler, &config);
    for (survivor, stream) in run.output.chains.iter().zip([0usize, 1, 3]) {
        let expect = &strict.chains[stream];
        for name in survivor.names() {
            let a = survivor.draws(name).unwrap();
            let b = expect.draws(name).unwrap();
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}

#[test]
fn same_seed_and_plan_reproduce_bit_identical_recovered_chains() {
    // Property over seeds: the whole degraded run — surviving chains,
    // retry counts, fault kinds — is a pure function of (seed, plan).
    let data = datasets::musa_cc96().truncated(30).unwrap();
    let sampler = make_sampler(&data);
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
        let config = small_config(3, seed);
        let total_sweeps = config.burn_in + config.samples * config.thin;
        let options = RunOptions {
            retry: RetryPolicy { max_retries: 4 },
            fault_plan: FaultPlan::from_seed(seed, config.chains, total_sweeps, 2),
            threads: 0,
            checkpoint_every: 0,
            profiler: None,
        };
        let a = run_chains_fault_tolerant(&sampler, &config, &options).unwrap();
        let b = run_chains_fault_tolerant(&sampler, &config, &options).unwrap();
        assert_chains_bit_identical(&a.output, &b.output);
        assert_eq!(a.reports.len(), b.reports.len(), "seed {seed}");
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.chain, rb.chain);
            assert_eq!(ra.recovered, rb.recovered, "seed {seed}");
            assert_eq!(ra.retries, rb.retries, "seed {seed}");
            assert_eq!(
                ra.fault.as_ref().map(SrmError::kind),
                rb.fault.as_ref().map(SrmError::kind),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn forced_slice_exhaustion_retry_replays_the_unfaulted_sweep() {
    // The injected exhaustion fires before the sweep consumes any
    // randomness, so one retry replays the sweep exactly: the
    // recovered run is bit-identical to a run with no fault at all.
    let data = datasets::musa_cc96().truncated(40).unwrap();
    let sampler = make_sampler(&data);
    let config = small_config(2, 902);
    let options = RunOptions {
        retry: RetryPolicy { max_retries: 1 },
        fault_plan: FaultPlan::new(vec![FaultPoint {
            chain: 0,
            sweep: 7,
            kind: FaultKind::SliceExhausted,
        }]),
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };
    let recovered = run_chains_fault_tolerant(&sampler, &config, &options).unwrap();
    assert!(recovered.reports[0].recovered);
    assert_eq!(recovered.reports[0].retries, 1);
    assert_eq!(
        recovered.reports[0].fault.as_ref().map(SrmError::kind),
        Some("slice-exhausted")
    );
    let strict = run_chains(&sampler, &config);
    assert_chains_bit_identical(&strict, &recovered.output);
}

#[test]
fn nan_rate_fault_recovers_with_retries_and_is_lost_without() {
    let data = datasets::musa_cc96().truncated(40).unwrap();
    let sampler = make_sampler(&data);
    let config = small_config(2, 903);
    let plan = FaultPlan::new(vec![FaultPoint {
        chain: 1,
        sweep: 5,
        kind: FaultKind::NanRate,
    }]);

    let with_retry = RunOptions {
        retry: RetryPolicy { max_retries: 3 },
        fault_plan: plan.clone(),
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };
    let run = run_chains_fault_tolerant(&sampler, &config, &with_retry).unwrap();
    assert_eq!(run.output.chains.len(), 2);
    assert!(run.reports[1].recovered);
    assert_eq!(run.reports[1].retries, 1);
    assert_eq!(
        run.reports[1].fault.as_ref().map(SrmError::kind),
        Some("non-finite-likelihood")
    );

    let without_retry = RunOptions {
        retry: RetryPolicy::none(),
        fault_plan: plan,
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };
    let degraded = run_chains_fault_tolerant(&sampler, &config, &without_retry).unwrap();
    assert_eq!(degraded.output.chains.len(), 1);
    assert!(!degraded.reports[1].recovered);
    assert_eq!(
        degraded.reports[1].fault.as_ref().map(SrmError::kind),
        Some("non-finite-likelihood")
    );
}

#[test]
fn zero_chains_is_a_typed_invalid_config() {
    let data = datasets::musa_cc96().truncated(20).unwrap();
    let sampler = make_sampler(&data);
    let config = small_config(0, 904);
    let err = run_chains_fault_tolerant(&sampler, &config, &RunOptions::none()).unwrap_err();
    assert!(matches!(err, SrmError::InvalidConfig { .. }));
}

#[test]
fn losing_every_chain_is_an_error_not_a_panic() {
    let data = datasets::musa_cc96().truncated(20).unwrap();
    let sampler = make_sampler(&data);
    let config = small_config(2, 905);
    let options = RunOptions {
        retry: RetryPolicy::none(),
        fault_plan: FaultPlan::new(vec![
            FaultPoint {
                chain: 0,
                sweep: 1,
                kind: FaultKind::Panic,
            },
            FaultPoint {
                chain: 1,
                sweep: 1,
                kind: FaultKind::Panic,
            },
        ]),
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };
    let err = run_chains_fault_tolerant(&sampler, &config, &options).unwrap_err();
    assert!(matches!(err, SrmError::ChainPanicked { .. }));
}

#[test]
fn seeded_fault_plans_are_reproducible_and_in_range() {
    let plan_a = FaultPlan::from_seed(77, 4, 350, 6);
    let plan_b = FaultPlan::from_seed(77, 4, 350, 6);
    assert_eq!(plan_a, plan_b);
    assert_eq!(plan_a.points().len(), 6);
    for point in plan_a.points() {
        assert!(point.chain < 4);
        assert!(point.sweep < 350);
    }
    let plan_c = FaultPlan::from_seed(78, 4, 350, 6);
    assert_ne!(plan_a, plan_c, "plans must vary with the seed");
}

#[test]
fn injected_faults_report_identically_across_thread_counts() {
    // Satellite regression for the parallel runner: a seed-derived
    // fault plan must produce the same surviving chains, the same
    // ChainReports (kind, retries, recovery, acceptance) and the same
    // fault counters whether the chains run on 1 worker or 4.
    let data = datasets::musa_cc96().truncated(30).unwrap();
    let sampler = make_sampler(&data);
    let config = small_config(4, 906);
    let total_sweeps = config.burn_in + config.samples * config.thin;
    let plan = FaultPlan::from_seed(906, config.chains, total_sweeps, 3);

    let run_with = |threads: usize| {
        let options = RunOptions {
            retry: RetryPolicy { max_retries: 2 },
            fault_plan: plan.clone(),
            threads,
            checkpoint_every: 0,
            profiler: None,
        };
        run_chains_fault_tolerant(&sampler, &config, &options).unwrap()
    };

    let serial = run_with(1);
    for threads in [2usize, 4] {
        let parallel = run_with(threads);
        assert_chains_bit_identical(&serial.output, &parallel.output);
        // Full structural equality of the reports: chain index, fault
        // payload, retry count, recovery flag, acceptance statistics.
        // Compared via Debug because an injected NonFiniteLikelihood
        // carries a NaN, and NaN != NaN under PartialEq.
        assert_eq!(
            format!("{:?}", serial.reports),
            format!("{:?}", parallel.reports),
            "threads {threads}"
        );
    }

    // The plan injects three faults, so the run is visibly degraded
    // or retried — the regression must exercise a non-trivial path.
    let touched = serial
        .reports
        .iter()
        .any(|r| r.fault.is_some() || r.retries > 0);
    assert!(touched, "fault plan did not touch any chain");
}
