//! Integration tests for the observability layer (PR 2).
//!
//! Three contracts from the design:
//!
//! 1. **Never perturbs the run** — a fit traced through live JSONL +
//!    progress sinks is bit-identical to the untraced fit on the same
//!    seed (the recorder has no RNG access).
//! 2. **Typed, schema-valid traces** — under deterministic fault
//!    injection every JSONL line parses, carries a known `type`, has
//!    that type's required fields, and every injected fault / retry /
//!    contained panic appears as its typed event.
//! 3. **Manifest counters match the engine** — the
//!    [`srm::obs::StatsCollector`] aggregates (which fill the
//!    `--metrics-out` manifest) must equal
//!    `ExperimentResults::fault_counters` / `total_retries` exactly.
//!
//! PR 5 adds two streaming-checkpoint contracts:
//!
//! 4. **Checkpoints never perturb the run** — any
//!    `checkpoint_every` cadence yields draws bit-identical to a
//!    checkpoint-free run on the same seed.
//! 5. **The final checkpoint agrees with post-hoc diagnostics** —
//!    aggregating each chain's last `diagnostic-checkpoint` must
//!    reproduce `diagnostics::report`: R̂ to round-off, ESS within 2%
//!    (exact when Geyer truncation falls inside the lag window).
//!
//! PR 7 adds the profiling contracts:
//!
//! 6. **Profiling never perturbs the run** — across a pseudo-random
//!    grid of models, priors, and seeds, draws with the span profiler
//!    installed are bit-identical to the unprofiled run (the profiler
//!    only reads clocks).
//! 7. **`ess_per_sec` is consistent** — each checkpoint's rate equals
//!    its ESS over its chain wall time exactly, and the aggregate rate
//!    agrees with post-hoc ESS over the same wall clock within 2%.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write;
use std::sync::{Arc, Mutex};

use srm::core::{Experiment, ExperimentConfig, Fit, FitConfig};
use srm::data::{datasets, ObservationPlan};
use srm::mcmc::runner::{McmcConfig, RunOptions};
use srm::mcmc::{FaultKind, FaultPlan, FaultPoint, RetryPolicy};
use srm::model::DetectionModel;
use srm::obs::json::{parse, Value};
use srm::obs::{
    aggregate, required_fields, ChainCheckpoint, Event, JsonlSink, Profiler, ProgressSink,
    Recorder, StatsCollector, Tee, EVENT_KINDS, NOOP,
};
use srm::prelude::PriorSpec;

/// A `Write` handle into a shared buffer, for capturing sink output.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn fit_config(chains: usize, seed: u64) -> FitConfig {
    FitConfig {
        mcmc: McmcConfig {
            chains,
            burn_in: 150,
            samples: 200,
            thin: 1,
            seed,
        },
        ..FitConfig::default()
    }
}

const PRIOR: PriorSpec = PriorSpec::Poisson {
    lambda_max: 2_000.0,
};

#[test]
fn traced_fit_is_bit_identical_to_untraced() {
    let data = datasets::musa_cc96().truncated(48).unwrap();
    let config = fit_config(2, 4_242);

    let plain = Fit::try_run(
        PRIOR,
        DetectionModel::Constant,
        &data,
        &config,
        &RunOptions::default(),
    )
    .unwrap();

    // Live sinks: JSONL at stride 1 (every sweep) plus a progress
    // sink, the most invasive configuration a user can request.
    let trace = SharedBuf::default();
    let progress = SharedBuf::default();
    let tee = Tee::new(vec![
        Arc::new(JsonlSink::from_writer(Box::new(trace.clone())).with_sweep_stride(1)),
        Arc::new(ProgressSink::to_writer(Box::new(progress.clone()), 2)),
    ]);
    let traced = Fit::try_run_traced(
        PRIOR,
        DetectionModel::Constant,
        &data,
        &config,
        &RunOptions::default(),
        &tee,
    )
    .unwrap();

    // And the explicit no-op recorder, for completeness.
    let noop = Fit::try_run_traced(
        PRIOR,
        DetectionModel::Constant,
        &data,
        &config,
        &RunOptions::default(),
        &NOOP,
    )
    .unwrap();

    for other in [&traced, &noop] {
        assert_eq!(
            plain.fit.residual_draws.len(),
            other.fit.residual_draws.len()
        );
        for (a, b) in plain
            .fit
            .residual_draws
            .iter()
            .zip(&other.fit.residual_draws)
        {
            assert_eq!(a.to_bits(), b.to_bits(), "draws diverged under tracing");
        }
        assert_eq!(
            plain.fit.waic.total().to_bits(),
            other.fit.waic.total().to_bits()
        );
        assert_eq!(
            plain.fit.residual.mean.to_bits(),
            other.fit.residual.mean.to_bits()
        );
    }

    // The trace actually captured the run.
    assert!(!trace.contents().is_empty());
    assert!(!progress.contents().is_empty());
}

#[test]
fn jsonl_trace_is_schema_valid_under_fault_injection() {
    let data = datasets::musa_cc96().truncated(48).unwrap();
    let config = fit_config(2, 77);
    let options = RunOptions {
        retry: RetryPolicy { max_retries: 3 },
        fault_plan: FaultPlan::new(vec![
            FaultPoint {
                chain: 0,
                sweep: 5,
                kind: FaultKind::NanRate,
            },
            FaultPoint {
                chain: 0,
                sweep: 9,
                kind: FaultKind::SliceExhausted,
            },
            FaultPoint {
                chain: 1,
                sweep: 3,
                kind: FaultKind::Panic,
            },
        ]),
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };

    let trace = SharedBuf::default();
    let sink = JsonlSink::from_writer(Box::new(trace.clone()));
    let tolerant = Fit::try_run_traced(
        PRIOR,
        DetectionModel::Constant,
        &data,
        &config,
        &options,
        &sink,
    )
    .unwrap();
    drop(sink); // flush

    let text = trace.contents();
    let mut kinds_seen = std::collections::BTreeMap::<String, usize>::new();
    for line in text.lines() {
        let doc = parse(line).unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e:?}"));
        let kind = doc
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("line without type: {line}"))
            .to_owned();
        assert!(
            EVENT_KINDS.contains(&kind.as_str()),
            "unknown event type `{kind}`"
        );
        for field in required_fields(&kind).unwrap() {
            assert!(
                doc.get(field).is_some(),
                "event `{kind}` missing required field `{field}`: {line}"
            );
        }
        // Every event carries the wall-clock stamp the sink adds.
        assert!(doc.get("ms").is_some(), "event without ms stamp: {line}");
        *kinds_seen.entry(kind).or_insert(0) += 1;
    }

    // All three injected faults surfaced as typed events.
    assert_eq!(kinds_seen.get("fault-injected").copied(), Some(3));
    // The two recoverable faults on chain 0 produced sweep-fault +
    // retry pairs; the panic on chain 1 was contained and reported.
    assert!(kinds_seen.get("sweep-fault").copied() >= Some(2));
    assert!(kinds_seen.get("retry").copied() >= Some(2));
    assert_eq!(kinds_seen.get("chain-panicked").copied(), Some(1));
    // Post-assembly reports: one per configured chain.
    assert_eq!(kinds_seen.get("chain-report").copied(), Some(2));
    // Phase spans from the orchestration layer.
    assert!(kinds_seen.contains_key("phase-start"));
    assert!(kinds_seen.contains_key("phase-end"));
    assert!(kinds_seen.contains_key("waic"));

    // The trace agrees with the engine's own report.
    assert!(tolerant.is_degraded());
    assert_eq!(tolerant.total_retries(), 2);
}

#[test]
fn stats_collector_matches_experiment_fault_counters() {
    let mut config = ExperimentConfig::smoke(9_119);
    config.models = vec![DetectionModel::Constant];
    config.mcmc = McmcConfig {
        chains: 2,
        burn_in: 100,
        samples: 150,
        thin: 1,
        seed: 9_119,
    };
    let exp = Experiment::new(datasets::musa_cc96(), config)
        .with_plan(ObservationPlan::from_days(&[48, 96]));
    let options = RunOptions {
        retry: RetryPolicy::none(),
        fault_plan: FaultPlan::new(vec![FaultPoint {
            chain: 1,
            sweep: 3,
            kind: FaultKind::Panic,
        }]),
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };

    let stats = StatsCollector::new();
    let results = exp.try_run_traced(&options, &stats).unwrap();

    // The collector's counters — the numbers the manifest reports —
    // must equal the engine's own aggregation exactly.
    let engine: Vec<(String, u64)> = results
        .fault_counters()
        .into_iter()
        .map(|(kind, n)| (kind, n as u64))
        .collect();
    assert_eq!(stats.fault_counters(), engine);
    assert!(!engine.is_empty(), "injection produced no counters");
    assert_eq!(stats.retries_total(), results.total_retries() as u64);

    // Live-event counters line up with the design: one injected fault
    // per cell (2 priors × 1 model × 2 days = 4 cells), each panicking
    // chain contained.
    assert_eq!(stats.faults_injected(), 4);
    assert_eq!(stats.panics_contained(), 4);
    // One cell-end per successful cell feeding the wall-time histogram.
    assert_eq!(stats.cell_wall_ms().count(), results.cells().len() as u64);
    // Per-chain reports collected for every configured chain.
    assert_eq!(
        stats.chain_reports().len(),
        results
            .cells()
            .iter()
            .map(|c| c.chain_reports.len())
            .sum::<usize>()
    );
}

#[test]
fn stats_collector_counts_whole_cell_failures_once() {
    // Single-chain cells whose only chain panics: the engine folds
    // each lost cell into `failures()`; the collector must count the
    // cell-failure event, not the per-chain panic, so totals still
    // match (no double counting).
    let mut config = ExperimentConfig::smoke(31);
    config.models = vec![DetectionModel::Constant];
    config.mcmc = McmcConfig {
        chains: 1,
        burn_in: 80,
        samples: 120,
        thin: 1,
        seed: 31,
    };
    let exp =
        Experiment::new(datasets::musa_cc96(), config).with_plan(ObservationPlan::from_days(&[48]));
    let options = RunOptions {
        retry: RetryPolicy::none(),
        fault_plan: FaultPlan::new(vec![FaultPoint {
            chain: 0,
            sweep: 2,
            kind: FaultKind::Panic,
        }]),
        threads: 0,
        checkpoint_every: 0,
        profiler: None,
    };

    let stats = StatsCollector::new();
    let results = exp.try_run_traced(&options, &stats).unwrap();
    assert!(results.cells().is_empty());
    assert_eq!(results.failures().len(), 2); // 2 priors × 1 model × 1 day

    let engine: Vec<(String, u64)> = results
        .fault_counters()
        .into_iter()
        .map(|(kind, n)| (kind, n as u64))
        .collect();
    assert_eq!(stats.fault_counters(), engine);
    assert_eq!(engine, vec![("chain-panicked".to_owned(), 2)]);
}

#[test]
fn tee_fans_out_and_noop_stays_disabled() {
    let trace = SharedBuf::default();
    let stats = Arc::new(StatsCollector::new());
    let tee = Tee::new(vec![
        Arc::new(JsonlSink::from_writer(Box::new(trace.clone()))),
        Arc::clone(&stats) as Arc<dyn Recorder>,
    ]);
    assert!(tee.enabled());
    tee.record(&Event::PhaseEnd {
        phase: "sampling",
        wall_ms: 5.0,
    });
    assert_eq!(stats.phase_total_ms("sampling"), 5.0);
    assert!(!NOOP.enabled());

    // An empty tee is disabled: the zero-cost path with no sinks.
    assert!(!Tee::new(Vec::new()).enabled());
}

#[test]
fn checkpointed_fit_is_bit_identical_to_uncheckpointed() {
    let data = datasets::musa_cc96().truncated(48).unwrap();
    let config = fit_config(2, 9_099);

    let plain = Fit::try_run(
        PRIOR,
        DetectionModel::Constant,
        &data,
        &config,
        &RunOptions::none(),
    )
    .unwrap();

    // Checkpoints at several cadences, streamed through a live JSONL
    // sink — including a cadence that never divides the sweep count
    // (only the forced final checkpoint fires) and stride 1 (a
    // checkpoint every kept sweep, the most invasive setting).
    for every in [1usize, 25, 10_000] {
        let trace = SharedBuf::default();
        let tee = Tee::new(vec![Arc::new(
            JsonlSink::from_writer(Box::new(trace.clone())).with_sweep_stride(1),
        ) as Arc<dyn Recorder>]);
        let options = RunOptions {
            checkpoint_every: every,
            ..RunOptions::none()
        };
        let checkpointed = Fit::try_run_traced(
            PRIOR,
            DetectionModel::Constant,
            &data,
            &config,
            &options,
            &tee,
        )
        .unwrap();

        assert_eq!(
            plain.fit.residual_draws.len(),
            checkpointed.fit.residual_draws.len()
        );
        for (a, b) in plain
            .fit
            .residual_draws
            .iter()
            .zip(&checkpointed.fit.residual_draws)
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "draws diverged under checkpoint_every = {every}"
            );
        }
        assert_eq!(
            plain.fit.waic.total().to_bits(),
            checkpointed.fit.waic.total().to_bits()
        );
        assert!(
            trace.contents().contains("diagnostic-checkpoint"),
            "cadence {every} emitted no checkpoint"
        );
    }
}

#[test]
fn final_streaming_checkpoint_agrees_with_post_hoc_diagnostics() {
    let data = datasets::musa_cc96().truncated(48).unwrap();
    let chains = 2;
    let config = fit_config(chains, 7_131);
    let stats = Arc::new(StatsCollector::new());
    let tee = Tee::new(vec![Arc::clone(&stats) as Arc<dyn Recorder>]);
    let options = RunOptions {
        checkpoint_every: 50,
        ..RunOptions::none()
    };
    let fitted = Fit::try_run_traced(
        PRIOR,
        DetectionModel::Constant,
        &data,
        &config,
        &options,
        &tee,
    )
    .unwrap();

    // Every chain delivered checkpoints, ending on the final sweep
    // with the full planned draw count.
    assert!(stats.checkpoints_seen() >= chains as u64);
    let total_sweeps = config.mcmc.burn_in + config.mcmc.samples;
    assert_eq!(stats.sweeps_completed(), (chains * total_sweeps) as u64);
    let latest = stats.latest_checkpoints();
    assert_eq!(latest.len(), chains);
    for cp in &latest {
        assert_eq!(cp.sweep, total_sweeps - 1);
        assert_eq!(cp.kept, config.mcmc.samples);
    }

    // Cross-chain aggregation of the final checkpoints must agree
    // with the post-hoc diagnostics the fit itself computed via
    // `diagnostics::report` over the stored draws.
    let refs: Vec<&ChainCheckpoint> = latest.iter().collect();
    let aggregated = aggregate(&refs);
    assert!(!aggregated.is_empty());
    assert!(!fitted.fit.diagnostics.is_empty());
    for agg in &aggregated {
        let (_, post) = fitted
            .fit
            .diagnostics
            .iter()
            .find(|(name, _)| *name == agg.parameter)
            .unwrap_or_else(|| panic!("no post-hoc report for {}", agg.parameter));

        // R-hat from streamed whole-chain moments is the same
        // rank-reduced formula as `diagnostics::psrf`: round-off only.
        assert!(
            (agg.rhat - post.psrf).abs() < 1e-9 * post.psrf.max(1.0),
            "{}: streamed R-hat {} vs post-hoc {}",
            agg.parameter,
            agg.rhat,
            post.psrf
        );

        // ESS is a per-chain sum on both sides. The streaming value
        // is exact when Geyer truncation lands inside the lag window
        // and an upper bound otherwise — never lower, and documented
        // to stay within 2% on this reference dataset.
        assert!(
            agg.ess >= post.ess - 1e-6 * post.ess,
            "{}: streaming ESS under-reports: {} < {}",
            agg.parameter,
            agg.ess,
            post.ess
        );
        assert!(
            (agg.ess - post.ess).abs() <= 0.02 * post.ess,
            "{}: streamed ESS {} vs post-hoc {} (> 2%)",
            agg.parameter,
            agg.ess,
            post.ess
        );

        // MCSE conventions differ (pooled-variance/ESS-sum vs the
        // pooled-concatenation of `report`) but must land in the same
        // ballpark for a stationary chain.
        assert!(agg.mcse.is_finite() && agg.mcse > 0.0);
        assert!(
            agg.mcse / post.mcse < 3.0 && post.mcse / agg.mcse < 3.0,
            "{}: streamed MCSE {} vs post-hoc {}",
            agg.parameter,
            agg.mcse,
            post.mcse
        );
    }
}

#[test]
fn profiled_fit_is_bit_identical_to_unprofiled() {
    let data = datasets::musa_cc96().truncated(48).unwrap();
    // Pseudo-random grid of (model, prior, seed) cases from an LCG:
    // deterministic for CI, varied enough to sweep the likelihood and
    // proposal code paths the spans instrument.
    let mut state = 0x5_DEEC_E66Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 16
    };
    for case in 0..6 {
        let r = next();
        let model = DetectionModel::ALL[(r % 5) as usize];
        let prior = if (r >> 8) % 2 == 0 {
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            }
        } else {
            PriorSpec::NegBinomial { alpha_max: 100.0 }
        };
        let config = FitConfig {
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 80,
                samples: 120,
                thin: 1,
                seed: 1_000 + (r >> 16) % 9_000,
            },
            ..FitConfig::default()
        };

        let plain = Fit::try_run(prior, model, &data, &config, &RunOptions::none()).unwrap();

        let profiler = Arc::new(Profiler::new());
        let options = RunOptions {
            profiler: Some(Arc::clone(&profiler)),
            ..RunOptions::none()
        };
        let profiled = Fit::try_run_traced(prior, model, &data, &config, &options, &NOOP).unwrap();

        assert_eq!(
            plain.fit.residual_draws.len(),
            profiled.fit.residual_draws.len(),
            "case {case}: draw counts diverged under profiling"
        );
        for (a, b) in plain
            .fit
            .residual_draws
            .iter()
            .zip(&profiled.fit.residual_draws)
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "case {case} ({model:?}): draws diverged under profiling"
            );
        }
        assert_eq!(
            plain.fit.waic.total().to_bits(),
            profiled.fit.waic.total().to_bits(),
            "case {case}: WAIC diverged under profiling"
        );

        // The profiler was not a spectator: the span taxonomy from
        // the chain workers landed in the merged profile.
        let paths: Vec<String> = profiler.snapshot().iter().map(|p| p.path.clone()).collect();
        for expected in ["chain", "chain/sweep"] {
            assert!(
                paths.iter().any(|p| p == expected),
                "case {case}: no `{expected}` span in {paths:?}"
            );
        }
        assert!(
            paths.iter().any(|p| p.contains("likelihood")),
            "case {case}: no likelihood span in {paths:?}"
        );
    }
}

#[test]
fn checkpoint_ess_per_sec_is_consistent_with_post_hoc_rate() {
    let data = datasets::musa_cc96().truncated(48).unwrap();
    let chains = 2;
    let config = fit_config(chains, 5_225);
    let stats = Arc::new(StatsCollector::new());
    let tee = Tee::new(vec![Arc::clone(&stats) as Arc<dyn Recorder>]);
    let options = RunOptions {
        checkpoint_every: 50,
        ..RunOptions::none()
    };
    let fitted = Fit::try_run_traced(
        PRIOR,
        DetectionModel::Constant,
        &data,
        &config,
        &options,
        &tee,
    )
    .unwrap();

    let latest = stats.latest_checkpoints();
    assert_eq!(latest.len(), chains);

    // Per chain, the checkpoint's rate is definitionally its ESS over
    // its own wall clock — round-off only.
    for cp in &latest {
        assert!(cp.wall_ms > 0.0, "chain {} has no wall clock", cp.chain);
        for param in &cp.params {
            if !param.ess.is_finite() {
                continue;
            }
            let expected = param.ess / (cp.wall_ms / 1e3);
            assert!(
                (param.ess_per_sec - expected).abs() <= 1e-9 * expected.max(1.0),
                "chain {} {}: rate {} vs ess/wall {}",
                cp.chain,
                param.parameter,
                param.ess_per_sec,
                expected
            );
        }
    }

    // The aggregate rate (total ESS per CPU-second of sampling) must
    // agree with the post-hoc diagnostics' ESS over the same wall
    // clock within the streaming layer's documented 2% ESS tolerance.
    let total_wall_secs: f64 = latest.iter().map(|c| c.wall_ms / 1e3).sum();
    let refs: Vec<&ChainCheckpoint> = latest.iter().collect();
    for agg in aggregate(&refs) {
        let (_, post) = fitted
            .fit
            .diagnostics
            .iter()
            .find(|(name, _)| *name == agg.parameter)
            .unwrap_or_else(|| panic!("no post-hoc report for {}", agg.parameter));
        let post_rate = post.ess / total_wall_secs;
        assert!(
            agg.ess_per_sec > 0.0,
            "{}: aggregate rate not positive",
            agg.parameter
        );
        assert!(
            (agg.ess_per_sec - post_rate).abs() <= 0.02 * post_rate,
            "{}: checkpoint rate {} vs post-hoc rate {} (> 2%)",
            agg.parameter,
            agg.ess_per_sec,
            post_rate
        );
    }
}
