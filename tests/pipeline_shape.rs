//! Paper-shape assertions on the full pipeline: the qualitative
//! claims of §5 must hold on the reproduction dataset. (Absolute
//! numbers differ — synthetic data, different sampler — but who wins,
//! by what order, and where mass collapses must match.)

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use srm::core::{Experiment, ExperimentConfig};
use srm::data::{datasets, ObservationPlan};
use srm::mcmc::runner::McmcConfig;
use srm::model::DetectionModel;

fn run_reduced_experiment(seed: u64) -> srm::core::ExperimentResults {
    let mut config = ExperimentConfig::paper_design(McmcConfig {
        chains: 3,
        burn_in: 600,
        samples: 1_500,
        thin: 1,
        seed,
    });
    // All five models, both priors, at four key observation points.
    config.models = DetectionModel::ALL.to_vec();
    Experiment::new(datasets::musa_cc96(), config)
        .with_plan(ObservationPlan::from_days(&[48, 96, 116, 146]))
        .run()
}

#[test]
fn paper_shape_claims_hold() {
    let results = run_reduced_experiment(12_021);

    // --- Table I shape: model1 attains the smallest WAIC at every
    // observation point, under both priors; model3 is the worst.
    for prior in ["poisson", "negbinom"] {
        for day in results.days() {
            let waic = |m| results.get(prior, m, day).unwrap().fit.waic.total();
            let w1 = waic(DetectionModel::PadgettSpurrier);
            let w3 = waic(DetectionModel::Pareto);
            for m in DetectionModel::ALL {
                let wm = waic(m);
                // MC slack: model2's bimodal μ can transiently deflate
                // its WAIC on short chains, so it gets a wider band.
                let slack = if m == DetectionModel::LogLogistic {
                    8.0
                } else {
                    2.0
                };
                assert!(
                    w1 <= wm + slack,
                    "{prior} {day}d: model1 ({w1:.1}) beaten by {m} ({wm:.1})"
                );
                assert!(
                    w3 >= wm - 2.0,
                    "{prior} {day}d: model3 ({w3:.1}) better than {m} ({wm:.1})"
                );
            }
        }
    }

    // --- Figs. 2–3 shape: under virtual testing the model1 posterior
    // collapses toward zero.
    for prior in ["poisson", "negbinom"] {
        let mean_at = |day| {
            results
                .get(prior, DetectionModel::PadgettSpurrier, day)
                .unwrap()
                .fit
                .residual
                .mean
        };
        assert!(
            mean_at(146) < mean_at(96),
            "{prior}: no collapse ({} -> {})",
            mean_at(96),
            mean_at(146)
        );
        assert!(
            mean_at(146) < 10.0,
            "{prior}: residual should be nearly exhausted at 146d, got {}",
            mean_at(146)
        );
    }

    // --- Table V shape: model1's posterior sd is far smaller than
    // model3's everywhere.
    for prior in ["poisson", "negbinom"] {
        for day in results.days() {
            let sd = |m| results.get(prior, m, day).unwrap().fit.residual.sd;
            assert!(
                sd(DetectionModel::PadgettSpurrier) < sd(DetectionModel::Pareto),
                "{prior} {day}d: sd ordering violated"
            );
        }
    }

    // --- Headline (Table V): the Poisson prior predicts with less
    // variability than the NB prior. In the paper this shows up two
    // ways: (a) per-model sd margins, which for the well-fitting
    // model1 are tiny (90.3 vs 97.8 at 48d, 1.42 vs 1.44 at 136d) and
    // therefore within MC noise here, and (b) the NB column blowing
    // up by an order of magnitude for the diffuse models (10019.2 for
    // model3 at 86d). We assert the robust forms: the geometric-mean
    // sd ratio across all cells favours Poisson, and the worst-case
    // NB sd dwarfs the worst-case Poisson sd at the full-data point.
    let mut log_ratio_sum = 0.0;
    let mut cells = 0usize;
    for day in results.days() {
        for m in DetectionModel::ALL {
            let sd_p = results.get("poisson", m, day).unwrap().fit.residual.sd;
            let sd_nb = results.get("negbinom", m, day).unwrap().fit.residual.sd;
            cells += 1;
            log_ratio_sum += (sd_nb.max(1e-9) / sd_p.max(1e-9)).ln();
        }
    }
    assert!(
        log_ratio_sum / cells as f64 > 0.0,
        "geometric-mean sd ratio favours NB: {:.3}",
        (log_ratio_sum / cells as f64).exp()
    );
    let max_sd = |prior: &str, day: usize| {
        DetectionModel::ALL
            .iter()
            .map(|&m| results.get(prior, m, day).unwrap().fit.residual.sd)
            .fold(0.0f64, f64::max)
    };
    assert!(
        max_sd("negbinom", 96) > 2.0 * max_sd("poisson", 96),
        "NB worst-case sd ({}) should dwarf Poisson's ({}) at 96d",
        max_sd("negbinom", 96),
        max_sd("poisson", 96)
    );
}

#[test]
fn observation_plan_matches_paper_protocol() {
    let data = datasets::musa_cc96();
    let plan = ObservationPlan::paper_default(&data);
    let days: Vec<usize> = plan.points().iter().map(|p| p.day()).collect();
    assert_eq!(days, vec![48, 67, 86, 96, 106, 116, 126, 136, 146]);
}
