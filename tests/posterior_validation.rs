//! End-to-end validation of the Gibbs sampler against brute-force
//! numerical posteriors.
//!
//! For the Poisson prior with the constant detection model, the
//! marginal posterior of the residual count has a semi-analytic form:
//! integrating `λ0` out of `Uniform(0, λ_max) × Poisson(N; λ0)` gives
//! `P(N+1, λ_max)` (regularised incomplete gamma), so
//!
//! ```text
//! p(R = r | x) ∝ P(s_k + r + 1, λ_max) · ∫_0^1 L(x | s_k + r, μ) dμ
//! ```
//!
//! which one-dimensional quadrature evaluates to machine precision.
//! The MCMC estimate must agree within Monte-Carlo error.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use srm::math::incgamma::inc_gamma_p;
use srm::math::quadrature::integrate;
use srm::model::GroupedLikelihood;
use srm::prelude::*;
use srm::rand::Xoshiro256StarStar;

/// Simulated project with a clearly identified posterior.
fn test_data() -> BugCountData {
    DetectionSimulator::new(200, vec![0.05; 60]).run(4242).data
}

/// Brute-force residual posterior by quadrature; returns unnormalised
/// log-masses for r = 0..len.
fn quadrature_posterior(data: &BugCountData, lambda_max: f64, max_r: u64) -> Vec<f64> {
    let lik = GroupedLikelihood::new(data);
    let k = data.len();
    let s_k = data.total();
    (0..=max_r)
        .map(|r| {
            let n = s_k + r;
            // Scan for the peak and the effective support of the
            // log-integrand over μ (the peak is narrow: seeding the
            // adaptive quadrature at {0, 0.5, 1} would miss it).
            let grid = 2_000;
            let ll = |mu: f64| lik.ln_likelihood(n, &vec![mu; k]);
            let mut shift = f64::NEG_INFINITY;
            for i in 1..grid {
                shift = shift.max(ll(i as f64 / grid as f64));
            }
            if shift == f64::NEG_INFINITY {
                return f64::NEG_INFINITY;
            }
            let mut lo = 1.0f64;
            let mut hi = 0.0f64;
            for i in 1..grid {
                let mu = i as f64 / grid as f64;
                if ll(mu) > shift - 45.0 {
                    lo = lo.min(mu);
                    hi = hi.max(mu);
                }
            }
            lo = (lo - 1.0 / grid as f64).max(1e-12);
            hi = (hi + 1.0 / grid as f64).min(1.0 - 1e-12);
            let integral = integrate(|mu| (ll(mu) - shift).exp(), lo, hi, 1e-12);
            shift + integral.ln() + inc_gamma_p(n as f64 + 1.0, lambda_max).ln()
        })
        .collect()
}

fn moments_from_log_masses(log_masses: &[f64]) -> (f64, f64) {
    let z = srm::math::log_sum_exp(log_masses);
    let mut mean = 0.0;
    let mut second = 0.0;
    for (r, &lm) in log_masses.iter().enumerate() {
        let p = (lm - z).exp();
        mean += r as f64 * p;
        second += (r as f64) * (r as f64) * p;
    }
    (mean, (second - mean * mean).sqrt())
}

fn gibbs_residual_moments(
    data: &BugCountData,
    kind: srm::mcmc::gibbs::SweepKind,
    seed: u64,
) -> (f64, f64) {
    let sampler = GibbsSampler::new(
        PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        DetectionModel::Constant,
        ZetaBounds::default(),
        data,
    )
    .with_sweep_kind(kind);
    let mut rng = Xoshiro256StarStar::seed_from(seed);
    let chain = sampler.run_chain(&mut rng, 1_000, 6_000, 1, &mut |_| {});
    let draws = chain.draws("residual").expect("column exists");
    let mean = draws.iter().sum::<f64>() / draws.len() as f64;
    let sd = (draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / draws.len() as f64).sqrt();
    (mean, sd)
}

#[test]
fn collapsed_gibbs_matches_quadrature_posterior() {
    let data = test_data();
    let exact = quadrature_posterior(&data, 2_000.0, 700);
    let (exact_mean, exact_sd) = moments_from_log_masses(&exact);
    let (mcmc_mean, mcmc_sd) =
        gibbs_residual_moments(&data, srm::mcmc::gibbs::SweepKind::Collapsed, 101);
    assert!(
        (mcmc_mean - exact_mean).abs() < 0.12 * exact_mean.max(10.0),
        "mean: mcmc {mcmc_mean} vs exact {exact_mean}"
    );
    assert!(
        (mcmc_sd - exact_sd).abs() < 0.25 * exact_sd.max(5.0),
        "sd: mcmc {mcmc_sd} vs exact {exact_sd}"
    );
}

#[test]
fn naive_gibbs_targets_the_same_posterior() {
    let data = test_data();
    let exact = quadrature_posterior(&data, 2_000.0, 700);
    let (exact_mean, _) = moments_from_log_masses(&exact);
    let (naive_mean, _) = gibbs_residual_moments(&data, srm::mcmc::gibbs::SweepKind::Naive, 102);
    // The naive sweep mixes far more slowly, so allow a wider band —
    // but it must still be in the neighbourhood of the true mean.
    assert!(
        (naive_mean - exact_mean).abs() < 0.35 * exact_mean.max(10.0),
        "mean: naive {naive_mean} vs exact {exact_mean}"
    );
}

#[test]
fn collapsed_and_naive_agree_for_nb_prior() {
    // No quadrature reference here (3 hyper-parameters); instead the
    // two sweeps — which share only the exact-N conditional — must
    // agree on the posterior they sample.
    let data = test_data();
    let run = |kind, seed| {
        let sampler = GibbsSampler::new(
            PriorSpec::NegBinomial { alpha_max: 60.0 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        )
        .with_sweep_kind(kind);
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let chain = sampler.run_chain(&mut rng, 1_500, 8_000, 1, &mut |_| {});
        let draws = chain.draws("residual").unwrap();
        draws.iter().sum::<f64>() / draws.len() as f64
    };
    let collapsed = run(srm::mcmc::gibbs::SweepKind::Collapsed, 103);
    let naive = run(srm::mcmc::gibbs::SweepKind::Naive, 104);
    assert!(
        (collapsed - naive).abs() < 0.3 * collapsed.max(10.0),
        "collapsed {collapsed} vs naive {naive}"
    );
}

#[test]
fn analytic_posterior_consistent_with_known_parameter_slice() {
    // Conditioning the Gibbs state on fixed (λ0, μ) is Prop. 1
    // exactly; verify the sampler's exact-N step through the public
    // analytic posterior on the same data.
    let data = test_data();
    let probs = vec![0.05; data.len()];
    let post = poisson_posterior(200.0, &probs, &data);
    // 200 · 0.95^60 ≈ 9.2 expected residual bugs.
    let expected = 200.0 * 0.95f64.powi(60);
    assert!((post.mean() - expected).abs() < 1e-9);
    // The p.m.f. must normalise.
    let total: f64 = (0..200).map(|r| post.ln_pmf(r).exp()).sum();
    assert!((total - 1.0).abs() < 1e-9);
}
