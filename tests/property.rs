//! Property-based tests of cross-crate invariants (proptest).

use proptest::prelude::*;
use srm::data::BugCountData;
use srm::model::{nb_posterior, poisson_posterior, DetectionModel, GroupedLikelihood};

fn detection_model_strategy() -> impl Strategy<Value = (DetectionModel, Vec<f64>)> {
    prop_oneof![
        (0.01..0.99f64).prop_map(|mu| (DetectionModel::Constant, vec![mu])),
        ((0.01..0.99f64), (0.01..20.0f64))
            .prop_map(|(mu, th)| (DetectionModel::PadgettSpurrier, vec![mu, th])),
        ((0.01..0.99f64), (-5.0..5.0f64))
            .prop_map(|(mu, g)| (DetectionModel::LogLogistic, vec![mu, g])),
        (0.01..0.99f64).prop_map(|mu| (DetectionModel::Pareto, vec![mu])),
        ((0.01..0.99f64), (0.01..0.99f64))
            .prop_map(|(mu, om)| (DetectionModel::Weibull, vec![mu, om])),
    ]
}

fn counts_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..6, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every detection model yields probabilities strictly inside
    /// (0, 1) on any day.
    #[test]
    fn detection_probabilities_in_open_unit_interval(
        (model, zeta) in detection_model_strategy(),
        day in 1u64..10_000,
    ) {
        let p = model.prob(&zeta, day).unwrap();
        prop_assert!(p > 0.0 && p < 1.0, "{model} day {day}: {p}");
    }

    /// The joint likelihood factorises into the pointwise binomial
    /// terms (Eq. (2) == product of Eq. (1)).
    #[test]
    fn likelihood_factorisation(
        counts in counts_strategy(),
        (model, zeta) in detection_model_strategy(),
        extra in 0u64..200,
    ) {
        let data = BugCountData::new(counts).unwrap();
        let lik = GroupedLikelihood::new(&data);
        let n = data.total() + extra;
        let probs = model.probs(&zeta, data.len()).unwrap();
        let joint = lik.ln_likelihood(n, &probs);
        let pointwise: f64 = lik.ln_pointwise_all(n, &probs).iter().sum();
        prop_assert!(
            (joint - pointwise).abs() < 1e-7 * joint.abs().max(1.0),
            "joint {joint} vs pointwise {pointwise}"
        );
    }

    /// Proposition 1 against brute-force Bayes on random data and
    /// random schedules.
    #[test]
    fn poisson_posterior_proposition(
        counts in prop::collection::vec(0u64..4, 1..15),
        lambda0 in 5.0..80.0f64,
        (model, zeta) in detection_model_strategy(),
    ) {
        let data = BugCountData::new(counts).unwrap();
        let probs = model.probs(&zeta, data.len()).unwrap();
        let lik = GroupedLikelihood::new(&data);
        let s_k = data.total();
        let post = poisson_posterior(lambda0, &probs, &data);
        // Brute-force over residual r.
        let logs: Vec<f64> = (0..400u64).map(|r| {
            let n = s_k + r;
            let prior = n as f64 * lambda0.ln() - lambda0 - srm::math::ln_factorial(n);
            prior + lik.ln_likelihood(n, &probs)
        }).collect();
        let z = srm::math::log_sum_exp(&logs);
        for r in [0u64, 1, 3, 10, 30] {
            let brute = (logs[r as usize] - z).exp();
            let analytic = post.ln_pmf(r).exp();
            prop_assert!(
                (brute - analytic).abs() < 1e-6,
                "r = {r}: brute {brute} vs analytic {analytic}"
            );
        }
    }

    /// Corrected Proposition 2 against brute-force Bayes.
    #[test]
    fn nb_posterior_proposition(
        counts in prop::collection::vec(0u64..4, 1..12),
        alpha0 in 0.5..20.0f64,
        beta0 in 0.05..0.95f64,
        (model, zeta) in detection_model_strategy(),
    ) {
        let data = BugCountData::new(counts).unwrap();
        let probs = model.probs(&zeta, data.len()).unwrap();
        let lik = GroupedLikelihood::new(&data);
        let s_k = data.total();
        let post = nb_posterior(alpha0, beta0, &probs, &data);
        let logs: Vec<f64> = (0..3_000u64).map(|r| {
            let n = s_k + r;
            let prior = srm::math::special::ln_nb_coeff(alpha0, n)
                + alpha0 * beta0.ln() + n as f64 * (1.0 - beta0).ln();
            prior + lik.ln_likelihood(n, &probs)
        }).collect();
        let z = srm::math::log_sum_exp(&logs);
        for r in [0u64, 1, 5, 20] {
            let brute = (logs[r as usize] - z).exp();
            let analytic = post.ln_pmf(r).exp();
            prop_assert!(
                (brute - analytic).abs() < 1e-5,
                "r = {r}: brute {brute} vs analytic {analytic}"
            );
        }
    }

    /// Posterior summaries are order-consistent for any draw set.
    #[test]
    fn summary_orderings(draws in prop::collection::vec(-1e6..1e6f64, 1..400)) {
        let s = srm::mcmc::PosteriorSummary::from_draws(&draws);
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.sd >= 0.0);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
    }

    /// Virtual testing (zero-count extension) never increases the
    /// analytic posterior mean, for any model and prior parameters.
    #[test]
    fn virtual_testing_monotone(
        counts in prop::collection::vec(0u64..5, 3..20),
        lambda0 in 10.0..200.0f64,
        (model, zeta) in detection_model_strategy(),
        extra in 1usize..40,
    ) {
        let data = BugCountData::new(counts).unwrap();
        let extended = data.extended_with_zeros(extra);
        let probs_short = model.probs(&zeta, data.len()).unwrap();
        let probs_long = model.probs(&zeta, extended.len()).unwrap();
        let short = poisson_posterior(lambda0, &probs_short, &data).mean();
        let long = poisson_posterior(lambda0, &probs_long, &extended).mean();
        prop_assert!(long <= short + 1e-9, "extension raised mean: {short} -> {long}");
    }

    /// CSV round-trips arbitrary datasets.
    #[test]
    fn csv_round_trip(counts in counts_strategy()) {
        let data = BugCountData::new(counts).unwrap();
        let mut buf = Vec::new();
        srm::data::csv::write_counts(&data, &mut buf).unwrap();
        let back = srm::data::csv::read_counts(buf.as_slice()).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Poisson CDF/quantile are mutually inverse for any mean.
    #[test]
    fn poisson_quantile_inverts_cdf(
        mean in 0.1..500.0f64,
        p in 0.001..0.999f64,
    ) {
        let d = srm::rand::Poisson::new(mean).unwrap();
        let k = d.quantile(p);
        prop_assert!(d.cdf(k) >= p);
        if k > 0 {
            prop_assert!(d.cdf(k - 1) < p);
        }
    }

    /// NB CDF/quantile are mutually inverse for any parameters.
    #[test]
    fn nb_quantile_inverts_cdf(
        r in 0.2..60.0f64,
        beta in 0.05..0.95f64,
        p in 0.001..0.999f64,
    ) {
        let d = srm::rand::NegativeBinomial::new(r, beta).unwrap();
        let k = d.quantile(p);
        prop_assert!(d.cdf(k) >= p - 1e-12);
        if k > 0 {
            prop_assert!(d.cdf(k - 1) < p + 1e-12);
        }
    }

    /// The reliability PGF is monotone in z and respects the
    /// endpoint identities for both posterior families.
    #[test]
    fn pgf_monotone_and_bounded(
        lambda in 0.01..200.0f64,
        alpha in 0.2..50.0f64,
        beta in 0.05..0.95f64,
        z1 in 0.0..1.0f64,
        z2 in 0.0..1.0f64,
    ) {
        use srm::model::posterior::ResidualPosterior;
        use srm::model::reliability::pgf;
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        for post in [
            ResidualPosterior::Poisson { lambda_k: lambda },
            ResidualPosterior::NegBinomial { alpha_k: alpha, beta_k: beta },
        ] {
            let a = pgf(&post, lo);
            let b = pgf(&post, hi);
            prop_assert!(a <= b + 1e-12);
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!((pgf(&post, 1.0) - 1.0).abs() < 1e-9);
        }
    }

    /// The forward filter agrees with Proposition 1 for arbitrary
    /// data, schedules and Poisson priors.
    #[test]
    fn forward_filter_matches_proposition_one(
        counts in prop::collection::vec(0u64..3, 1..8),
        lambda0 in 2.0..40.0f64,
        mu in 0.05..0.6f64,
    ) {
        use srm::model::markov::{forward_filter, truncated_prior_pmf};
        let data = BugCountData::new(counts).unwrap();
        let probs = vec![mu; data.len()];
        let prior = srm::model::BugPrior::poisson(lambda0).unwrap();
        let pmf = truncated_prior_pmf(&prior, 400);
        let filtered = forward_filter(&pmf, &probs, &data).unwrap();
        let analytic = poisson_posterior(lambda0, &probs, &data);
        prop_assert!((filtered.mean() - analytic.mean()).abs() < 1e-6);
        for r in [0usize, 1, 5] {
            prop_assert!(
                (filtered.residual_pmf[r] - analytic.ln_pmf(r as u64).exp()).abs() < 1e-8
            );
        }
    }

    /// Weekly aggregation preserves totals and shrinks length.
    #[test]
    fn aggregation_invariants(
        counts in prop::collection::vec(0u64..9, 1..120),
        width in 1usize..15,
    ) {
        let d = BugCountData::new(counts).unwrap();
        let agg = d.aggregated(width);
        prop_assert_eq!(agg.total(), d.total());
        prop_assert_eq!(agg.len(), d.len().div_ceil(width));
    }

    /// The detection simulator conserves bugs for any schedule.
    #[test]
    fn simulator_conserves_bugs(
        n0 in 0u64..500,
        (model, zeta) in detection_model_strategy(),
        horizon in 1usize..50,
        seed in 0u64..1_000,
    ) {
        let probs = model.probs(&zeta, horizon).unwrap();
        let project = srm::data::DetectionSimulator::new(n0, probs).run(seed);
        prop_assert_eq!(project.data.total() + project.true_residual, n0);
        prop_assert_eq!(project.data.len(), horizon);
    }
}
