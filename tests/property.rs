//! Property-based tests of cross-crate invariants.
//!
//! The original suite used `proptest`; this build environment has no
//! crates.io access, so the same properties run under a hand-rolled
//! harness: every `#[test]` draws `CASES` random inputs from a seeded
//! [`SplitMix64`] stream, making each property deterministic and
//! shrink-free but otherwise equivalent in coverage.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use srm::data::BugCountData;
use srm::model::{nb_posterior, poisson_posterior, DetectionModel, GroupedLikelihood};
use srm::rand::{Rng, SplitMix64};

const CASES: usize = 128;

/// Uniform draw in `[lo, hi)`.
fn f64_in(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Uniform integer draw in `[lo, hi)`.
fn usize_in(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    lo + rng.next_below((hi - lo) as u64) as usize
}

/// Random count vector with entries in `[0, max_count)` and a length
/// in `[min_len, max_len)`.
fn counts(rng: &mut SplitMix64, min_len: usize, max_len: usize, max_count: u64) -> Vec<u64> {
    let len = usize_in(rng, min_len, max_len);
    (0..len).map(|_| rng.next_below(max_count)).collect()
}

/// One random detection model with parameters drawn from the same
/// boxes the proptest strategies used.
fn detection_model(rng: &mut SplitMix64) -> (DetectionModel, Vec<f64>) {
    match rng.next_below(5) {
        0 => (DetectionModel::Constant, vec![f64_in(rng, 0.01, 0.99)]),
        1 => (
            DetectionModel::PadgettSpurrier,
            vec![f64_in(rng, 0.01, 0.99), f64_in(rng, 0.01, 20.0)],
        ),
        2 => (
            DetectionModel::LogLogistic,
            vec![f64_in(rng, 0.01, 0.99), f64_in(rng, -5.0, 5.0)],
        ),
        3 => (DetectionModel::Pareto, vec![f64_in(rng, 0.01, 0.99)]),
        _ => (
            DetectionModel::Weibull,
            vec![f64_in(rng, 0.01, 0.99), f64_in(rng, 0.01, 0.99)],
        ),
    }
}

/// Every detection model yields probabilities strictly inside (0, 1)
/// on any day.
#[test]
fn detection_probabilities_in_open_unit_interval() {
    let mut rng = SplitMix64::seed_from(0x5EED_0001);
    for _ in 0..CASES {
        let (model, zeta) = detection_model(&mut rng);
        let day = 1 + rng.next_below(9_999);
        let p = model.prob(&zeta, day).unwrap();
        assert!(p > 0.0 && p < 1.0, "{model} day {day}: {p}");
    }
}

/// The joint likelihood factorises into the pointwise binomial terms
/// (Eq. (2) == product of Eq. (1)).
#[test]
fn likelihood_factorisation() {
    let mut rng = SplitMix64::seed_from(0x5EED_0002);
    for _ in 0..CASES {
        let data = BugCountData::new(counts(&mut rng, 1, 40, 6)).unwrap();
        let (model, zeta) = detection_model(&mut rng);
        let extra = rng.next_below(200);
        let lik = GroupedLikelihood::new(&data);
        let n = data.total() + extra;
        let probs = model.probs(&zeta, data.len()).unwrap();
        let joint = lik.ln_likelihood(n, &probs);
        let pointwise: f64 = lik.ln_pointwise_all(n, &probs).iter().sum();
        assert!(
            (joint - pointwise).abs() < 1e-7 * joint.abs().max(1.0),
            "joint {joint} vs pointwise {pointwise}"
        );
    }
}

/// Proposition 1 against brute-force Bayes on random data and random
/// schedules.
#[test]
fn poisson_posterior_proposition() {
    let mut rng = SplitMix64::seed_from(0x5EED_0003);
    for _ in 0..CASES {
        let data = BugCountData::new(counts(&mut rng, 1, 15, 4)).unwrap();
        let lambda0 = f64_in(&mut rng, 5.0, 80.0);
        let (model, zeta) = detection_model(&mut rng);
        let probs = model.probs(&zeta, data.len()).unwrap();
        let lik = GroupedLikelihood::new(&data);
        let s_k = data.total();
        let post = poisson_posterior(lambda0, &probs, &data);
        // Brute-force over residual r.
        let logs: Vec<f64> = (0..400u64)
            .map(|r| {
                let n = s_k + r;
                let prior = n as f64 * lambda0.ln() - lambda0 - srm::math::ln_factorial(n);
                prior + lik.ln_likelihood(n, &probs)
            })
            .collect();
        let z = srm::math::log_sum_exp(&logs);
        for r in [0u64, 1, 3, 10, 30] {
            let brute = (logs[r as usize] - z).exp();
            let analytic = post.ln_pmf(r).exp();
            assert!(
                (brute - analytic).abs() < 1e-6,
                "r = {r}: brute {brute} vs analytic {analytic}"
            );
        }
    }
}

/// Corrected Proposition 2 against brute-force Bayes.
#[test]
fn nb_posterior_proposition() {
    let mut rng = SplitMix64::seed_from(0x5EED_0004);
    for _ in 0..CASES {
        let data = BugCountData::new(counts(&mut rng, 1, 12, 4)).unwrap();
        let alpha0 = f64_in(&mut rng, 0.5, 20.0);
        let beta0 = f64_in(&mut rng, 0.05, 0.95);
        let (model, zeta) = detection_model(&mut rng);
        let probs = model.probs(&zeta, data.len()).unwrap();
        let lik = GroupedLikelihood::new(&data);
        let s_k = data.total();
        let post = nb_posterior(alpha0, beta0, &probs, &data);
        let logs: Vec<f64> = (0..3_000u64)
            .map(|r| {
                let n = s_k + r;
                let prior = srm::math::special::ln_nb_coeff(alpha0, n)
                    + alpha0 * beta0.ln()
                    + n as f64 * (1.0 - beta0).ln();
                prior + lik.ln_likelihood(n, &probs)
            })
            .collect();
        let z = srm::math::log_sum_exp(&logs);
        for r in [0u64, 1, 5, 20] {
            let brute = (logs[r as usize] - z).exp();
            let analytic = post.ln_pmf(r).exp();
            assert!(
                (brute - analytic).abs() < 1e-5,
                "r = {r}: brute {brute} vs analytic {analytic}"
            );
        }
    }
}

/// Posterior summaries are order-consistent for any draw set.
#[test]
fn summary_orderings() {
    let mut rng = SplitMix64::seed_from(0x5EED_0005);
    for _ in 0..CASES {
        let len = usize_in(&mut rng, 1, 400);
        let draws: Vec<f64> = (0..len).map(|_| f64_in(&mut rng, -1e6, 1e6)).collect();
        let s = srm::mcmc::PosteriorSummary::from_draws(&draws);
        assert!(s.min <= s.q1 + 1e-9);
        assert!(s.q1 <= s.median + 1e-9);
        assert!(s.median <= s.q3 + 1e-9);
        assert!(s.q3 <= s.max + 1e-9);
        assert!(s.sd >= 0.0);
        assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        assert_eq!(s.nan_draws, 0);
    }
}

/// Virtual testing (zero-count extension) never increases the
/// analytic posterior mean, for any model and prior parameters.
#[test]
fn virtual_testing_monotone() {
    let mut rng = SplitMix64::seed_from(0x5EED_0006);
    for _ in 0..CASES {
        let data = BugCountData::new(counts(&mut rng, 3, 20, 5)).unwrap();
        let lambda0 = f64_in(&mut rng, 10.0, 200.0);
        let (model, zeta) = detection_model(&mut rng);
        let extra = usize_in(&mut rng, 1, 40);
        let extended = data.extended_with_zeros(extra);
        let probs_short = model.probs(&zeta, data.len()).unwrap();
        let probs_long = model.probs(&zeta, extended.len()).unwrap();
        let short = poisson_posterior(lambda0, &probs_short, &data).mean();
        let long = poisson_posterior(lambda0, &probs_long, &extended).mean();
        assert!(
            long <= short + 1e-9,
            "extension raised mean: {short} -> {long}"
        );
    }
}

/// CSV round-trips arbitrary datasets.
#[test]
fn csv_round_trip() {
    let mut rng = SplitMix64::seed_from(0x5EED_0007);
    for _ in 0..CASES {
        let data = BugCountData::new(counts(&mut rng, 1, 40, 6)).unwrap();
        let mut buf = Vec::new();
        srm::data::csv::write_counts(&data, &mut buf).unwrap();
        let back = srm::data::csv::read_counts(buf.as_slice()).unwrap();
        assert_eq!(back, data);
    }
}

/// Poisson CDF/quantile are mutually inverse for any mean.
#[test]
fn poisson_quantile_inverts_cdf() {
    let mut rng = SplitMix64::seed_from(0x5EED_0008);
    for _ in 0..CASES {
        let mean = f64_in(&mut rng, 0.1, 500.0);
        let p = f64_in(&mut rng, 0.001, 0.999);
        let d = srm::rand::Poisson::new(mean).unwrap();
        let k = d.quantile(p);
        assert!(d.cdf(k) >= p);
        if k > 0 {
            assert!(d.cdf(k - 1) < p);
        }
    }
}

/// NB CDF/quantile are mutually inverse for any parameters.
#[test]
fn nb_quantile_inverts_cdf() {
    let mut rng = SplitMix64::seed_from(0x5EED_0009);
    for _ in 0..CASES {
        let r = f64_in(&mut rng, 0.2, 60.0);
        let beta = f64_in(&mut rng, 0.05, 0.95);
        let p = f64_in(&mut rng, 0.001, 0.999);
        let d = srm::rand::NegativeBinomial::new(r, beta).unwrap();
        let k = d.quantile(p);
        assert!(d.cdf(k) >= p - 1e-12);
        if k > 0 {
            assert!(d.cdf(k - 1) < p + 1e-12);
        }
    }
}

/// The reliability PGF is monotone in z and respects the endpoint
/// identities for both posterior families.
#[test]
fn pgf_monotone_and_bounded() {
    use srm::model::posterior::ResidualPosterior;
    use srm::model::reliability::pgf;
    let mut rng = SplitMix64::seed_from(0x5EED_000A);
    for _ in 0..CASES {
        let lambda = f64_in(&mut rng, 0.01, 200.0);
        let alpha = f64_in(&mut rng, 0.2, 50.0);
        let beta = f64_in(&mut rng, 0.05, 0.95);
        let z1 = rng.next_f64();
        let z2 = rng.next_f64();
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        for post in [
            ResidualPosterior::Poisson { lambda_k: lambda },
            ResidualPosterior::NegBinomial {
                alpha_k: alpha,
                beta_k: beta,
            },
        ] {
            let a = pgf(&post, lo);
            let b = pgf(&post, hi);
            assert!(a <= b + 1e-12);
            assert!((0.0..=1.0).contains(&a));
            assert!((pgf(&post, 1.0) - 1.0).abs() < 1e-9);
        }
    }
}

/// The forward filter agrees with Proposition 1 for arbitrary data,
/// schedules and Poisson priors.
#[test]
fn forward_filter_matches_proposition_one() {
    use srm::model::markov::{forward_filter, truncated_prior_pmf};
    let mut rng = SplitMix64::seed_from(0x5EED_000B);
    for _ in 0..CASES {
        let data = BugCountData::new(counts(&mut rng, 1, 8, 3)).unwrap();
        let lambda0 = f64_in(&mut rng, 2.0, 40.0);
        let mu = f64_in(&mut rng, 0.05, 0.6);
        let probs = vec![mu; data.len()];
        let prior = srm::model::BugPrior::poisson(lambda0).unwrap();
        let pmf = truncated_prior_pmf(&prior, 400);
        let filtered = forward_filter(&pmf, &probs, &data).unwrap();
        let analytic = poisson_posterior(lambda0, &probs, &data);
        assert!((filtered.mean() - analytic.mean()).abs() < 1e-6);
        for r in [0usize, 1, 5] {
            assert!((filtered.residual_pmf[r] - analytic.ln_pmf(r as u64).exp()).abs() < 1e-8);
        }
    }
}

/// Weekly aggregation preserves totals and shrinks length.
#[test]
fn aggregation_invariants() {
    let mut rng = SplitMix64::seed_from(0x5EED_000C);
    for _ in 0..CASES {
        let d = BugCountData::new(counts(&mut rng, 1, 120, 9)).unwrap();
        let width = usize_in(&mut rng, 1, 15);
        let agg = d.aggregated(width);
        assert_eq!(agg.total(), d.total());
        assert_eq!(agg.len(), d.len().div_ceil(width));
    }
}

/// The detection simulator conserves bugs for any schedule.
#[test]
fn simulator_conserves_bugs() {
    let mut rng = SplitMix64::seed_from(0x5EED_000D);
    for _ in 0..CASES {
        let n0 = rng.next_below(500);
        let (model, zeta) = detection_model(&mut rng);
        let horizon = usize_in(&mut rng, 1, 50);
        let seed = rng.next_below(1_000);
        let probs = model.probs(&zeta, horizon).unwrap();
        let project = srm::data::DetectionSimulator::new(n0, probs).run(seed);
        assert_eq!(project.data.total() + project.true_residual, n0);
        assert_eq!(project.data.len(), horizon);
    }
}

/// One random (prior, model) sampler pairing for the MCMC properties.
fn random_sampler(rng: &mut SplitMix64, data: &BugCountData) -> srm::mcmc::GibbsSampler {
    let prior = if rng.next_below(2) == 0 {
        srm::mcmc::PriorSpec::Poisson {
            lambda_max: f64_in(rng, 500.0, 4_000.0),
        }
    } else {
        srm::mcmc::PriorSpec::NegBinomial {
            alpha_max: f64_in(rng, 20.0, 200.0),
        }
    };
    let model = DetectionModel::ALL[rng.next_below(5) as usize];
    srm::mcmc::GibbsSampler::new(prior, model, srm::model::ZetaBounds::default(), data)
}

/// Parallel execution is bit-identical to the serial path for any
/// seed, prior/model pairing and worker count: chain `i` is a pure
/// function of `(seed, i)` regardless of scheduling.
#[test]
fn parallel_chains_bit_identical_to_serial() {
    use srm::mcmc::runner::{run_chains, run_chains_fault_tolerant, McmcConfig, RunOptions};
    let mut rng = SplitMix64::seed_from(0x5EED_000E);
    // MCMC is orders of magnitude costlier than the closed-form
    // properties above, so this property draws fewer cases.
    for _ in 0..6 {
        let data = BugCountData::new(counts(&mut rng, 10, 30, 6)).unwrap();
        if data.total() == 0 {
            continue;
        }
        let sampler = random_sampler(&mut rng, &data);
        let config = McmcConfig {
            chains: 3,
            burn_in: 60,
            samples: 80,
            thin: 1,
            seed: rng.next_below(1 << 40),
        };
        let serial = run_chains(&sampler, &config);
        for threads in [1usize, 4] {
            let run =
                run_chains_fault_tolerant(&sampler, &config, &RunOptions::with_threads(threads))
                    .unwrap();
            assert_eq!(run.output.chains.len(), serial.chains.len());
            for (ca, cb) in serial.chains.iter().zip(&run.output.chains) {
                for name in ca.names() {
                    let da = ca.draws(name).unwrap();
                    let db = cb.draws(name).unwrap();
                    assert!(
                        da.iter().zip(db).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "threads {threads}, param {name}"
                    );
                }
            }
        }
    }
}

/// The sufficient-statistics cache is exact: cached and uncached
/// sweeps agree to the bit (0 ULP) on random datasets, because the
/// memoised quantities are recomputed in the identical sequential
/// accumulation order.
#[test]
fn cached_sweeps_bit_identical_to_uncached() {
    use srm::mcmc::runner::{run_chains, McmcConfig};
    let mut rng = SplitMix64::seed_from(0x5EED_000F);
    for _ in 0..6 {
        let data = BugCountData::new(counts(&mut rng, 10, 30, 6)).unwrap();
        if data.total() == 0 {
            continue;
        }
        let cached = random_sampler(&mut rng, &data);
        let uncached = cached.clone().with_cached_stats(false);
        let config = McmcConfig {
            chains: 2,
            burn_in: 60,
            samples: 80,
            thin: 1,
            seed: rng.next_below(1 << 40),
        };
        let a = run_chains(&cached, &config);
        let b = run_chains(&uncached, &config);
        for (ca, cb) in a.chains.iter().zip(&b.chains) {
            for name in ca.names() {
                let da = ca.draws(name).unwrap();
                let db = cb.draws(name).unwrap();
                assert!(
                    da.iter().zip(db).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "param {name}"
                );
            }
        }
    }
}
