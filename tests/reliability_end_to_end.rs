//! End-to-end reliability pipeline: simulate a project, fit the
//! model, and check the reliability function against what actually
//! happens in a simulated continuation of testing.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use srm::core::{Fit, FitConfig};
use srm::mcmc::runner::McmcConfig;
use srm::model::reliability::{pgf, reliability, reliability_curve};
use srm::prelude::*;
use srm::rand::{Binomial, Distribution, Rng, SplitMix64};

#[test]
fn fitted_reliability_predicts_continuation() {
    // Phase 1: 40 observed days with constant p.
    let true_n = 300u64;
    let p = 0.04;
    let sim = DetectionSimulator::new(true_n, vec![p; 40]);
    let project = sim.run(33_001);

    // Fit with the Poisson prior + constant model.
    let fit = Fit::run(
        PriorSpec::Poisson {
            lambda_max: 3_000.0,
        },
        DetectionModel::Constant,
        &project.data,
        &FitConfig {
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 600,
                samples: 3_000,
                thin: 1,
                seed: 33_002,
            },
            ..FitConfig::default()
        },
    );

    // Posterior-mixture reliability over 20 more days at the true p:
    // average the per-draw analytic PGF over the posterior draws.
    let horizon = 20usize;
    let z = (1.0 - p).powi(horizon as i32);
    let mut mixture_rel = 0.0;
    for &r in &fit.residual_draws {
        mixture_rel += z.powf(r);
    }
    mixture_rel /= fit.residual_draws.len() as f64;

    // Phase 2 ground truth: simulate many continuations of the SAME
    // project (true residual known) and count silent ones.
    let mut rng = SplitMix64::seed_from(33_003);
    let trials = 40_000;
    let mut silent = 0usize;
    for _ in 0..trials {
        let mut undetected = true;
        for _ in 0..project.true_residual {
            // Each remaining bug survives all 20 days w.p. (1-p)^20.
            if rng.next_f64() >= z {
                undetected = false;
                break;
            }
        }
        if undetected {
            silent += 1;
        }
    }
    let truth_rel = silent as f64 / trials as f64;

    // The Bayesian prediction must be in the same regime as the truth
    // (it differs by posterior spread around the true residual).
    assert!(
        (mixture_rel - truth_rel).abs() < 0.25,
        "predicted {mixture_rel:.3} vs simulated {truth_rel:.3} \
         (true residual {})",
        project.true_residual
    );
}

#[test]
fn pgf_mixture_equals_thinned_sampling() {
    // E over posterior draws of z^R must equal the empirical fraction
    // of thinned-silent draws.
    let post = srm::model::posterior::ResidualPosterior::NegBinomial {
        alpha_k: 5.0,
        beta_k: 0.45,
    };
    let p_day = 0.12f64;
    let days = 7usize;
    let z = (1.0 - p_day).powi(days as i32);
    let analytic = pgf(&post, z);
    let mut rng = SplitMix64::seed_from(33_004);
    let trials = 100_000;
    let mut silent = 0usize;
    for _ in 0..trials {
        let r = post.sample(&mut rng);
        let detected = if r == 0 {
            0
        } else {
            Binomial::new(r, 1.0 - z).unwrap().sample(&mut rng)
        };
        if detected == 0 {
            silent += 1;
        }
    }
    let empirical = silent as f64 / trials as f64;
    assert!(
        (empirical - analytic).abs() < 0.006,
        "empirical {empirical} vs analytic {analytic}"
    );
}

#[test]
fn reliability_grows_with_virtual_testing() {
    // The operational story of the paper's Figs. 2–3: each block of
    // quiet days raises the reliability of an immediate release.
    // A slow constant schedule keeps the posterior from collapsing
    // immediately, so the growth in reliability is visible.
    let data = datasets::musa_cc96();
    let zeta = [0.05];
    let model = DetectionModel::Constant;
    let rel_at = |day: usize| {
        let window = ObservationPoint::new(day).window(&data).unwrap();
        let schedule = model.probs(&zeta, window.len()).unwrap();
        let post = srm::model::poisson_posterior(200.0, &schedule, &window);
        let future: Vec<f64> = ((window.len() + 1) as u64..=(window.len() + 30) as u64)
            .map(|i| model.prob(&zeta, i).unwrap())
            .collect();
        reliability(&post, &future, 30)
    };
    let r96 = rel_at(96);
    let r116 = rel_at(116);
    let r146 = rel_at(146);
    assert!(
        r96 < r116 && r116 < r146,
        "{r96} < {r116} < {r146} violated"
    );
    assert!(r146 > 0.8, "r146 = {r146}");
}

#[test]
fn reliability_curve_consistent_with_scalar_calls() {
    let post = srm::model::posterior::ResidualPosterior::Poisson { lambda_k: 3.0 };
    let probs = vec![0.07; 25];
    let curve = reliability_curve(&post, &probs, 25);
    for h in [1usize, 10, 25] {
        assert!((curve[h - 1] - reliability(&post, &probs, h)).abs() < 1e-12);
    }
}
