//! Sampler-correctness battery: conjugate golden tests and a Geweke
//! joint-distribution test.
//!
//! The conjugate tests pin every non-conjugate parameter with
//! [`FixedParams`], which reduces the Gibbs sweep to its exact
//! conjugate N-step — the kept draws are then *iid* from the
//! closed-form posteriors of Propositions 1–2, so their moments must
//! match the analytic values within plain Monte-Carlo error.
//!
//! The Geweke test checks the full (non-conjugate) transition kernel:
//! the marginal-conditional simulator draws `(θ, x)` by composing the
//! prior with the data model, while the successive-conditional
//! simulator alternates the sampler's sweep with the same data model.
//! If the sweep leaves `p(θ | x)` invariant, both chains share the
//! joint `p(θ, x)` and every test statistic agrees to sampling error
//! (Geweke 2004, "Getting it right").

#![allow(clippy::unwrap_used, clippy::expect_used)]

use srm::data::{datasets, BugCountData, DetectionSimulator};
use srm::mcmc::runner::{run_chains, McmcConfig};
use srm::mcmc::{FixedParams, GibbsSampler, PriorSpec};
use srm::model::{nb_posterior, poisson_posterior, DetectionModel, ZetaBounds};
use srm::rand::{Rng, SplitMix64};

/// Sample mean of a draw vector.
fn mean(draws: &[f64]) -> f64 {
    draws.iter().sum::<f64>() / draws.len() as f64
}

/// Unbiased sample variance.
fn variance(draws: &[f64]) -> f64 {
    let m = mean(draws);
    draws.iter().map(|d| (d - m).powi(2)).sum::<f64>() / (draws.len() - 1) as f64
}

/// Builds a `model0` sampler with everything except the N-step pinned.
fn pinned_sampler(prior: PriorSpec, data: &BugCountData, fixed: FixedParams) -> GibbsSampler {
    GibbsSampler::new(prior, DetectionModel::Constant, ZetaBounds::default(), data)
        .with_fixed(fixed)
}

/// Pools the named parameter across every chain of a run.
fn pooled_draws(sampler: &GibbsSampler, config: &McmcConfig, name: &str) -> Vec<f64> {
    let out = run_chains(sampler, config);
    let mut draws = Vec::new();
    for chain in &out.chains {
        draws.extend_from_slice(chain.draws(name).unwrap());
    }
    draws
}

#[test]
fn pinned_poisson_gibbs_matches_proposition_one() {
    // Fixed p and λ0: the residual draws are iid Poisson(λ_k) with
    // λ_k = λ0 (1 − p)^k — Proposition 1 with a constant schedule.
    let data = datasets::musa_cc96().truncated(20).unwrap();
    let p = 0.05;
    let lambda0 = 150.0;
    let sampler = pinned_sampler(
        PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        &data,
        FixedParams {
            zeta: Some(vec![p]),
            lambda0: Some(lambda0),
            ..FixedParams::default()
        },
    );
    let config = McmcConfig {
        chains: 2,
        burn_in: 50,
        samples: 3_000,
        thin: 1,
        seed: 20_240,
    };
    let draws = pooled_draws(&sampler, &config, "residual");
    let m = draws.len() as f64;

    let probs = vec![p; data.len()];
    let analytic = poisson_posterior(lambda0, &probs, &data);

    // iid draws: SE(mean) = sd/√M; SE(s²) ≈ √((μ4 − σ⁴)/M) with the
    // Poisson fourth central moment μ4 = λ(1 + 3λ).
    let se_mean = analytic.sd() / m.sqrt();
    assert!(
        (mean(&draws) - analytic.mean()).abs() < 5.0 * se_mean,
        "mean {} vs analytic {} (se {se_mean})",
        mean(&draws),
        analytic.mean()
    );
    let lambda_k = analytic.mean();
    let mu4 = lambda_k * (1.0 + 3.0 * lambda_k);
    let se_var = ((mu4 - analytic.variance().powi(2)) / m).sqrt();
    assert!(
        (variance(&draws) - analytic.variance()).abs() < 5.0 * se_var,
        "variance {} vs analytic {} (se {se_var})",
        variance(&draws),
        analytic.variance()
    );

    // The pinned hyper-parameter is recorded verbatim in every draw.
    let lambda_draws = pooled_draws(&sampler, &config, "lambda0");
    assert!(lambda_draws
        .iter()
        .all(|l| l.to_bits() == lambda0.to_bits()));
}

#[test]
fn pinned_nb_gibbs_matches_proposition_two() {
    // Fixed p, α0 and β0: residual draws are iid NB(α0 + s_k, β_k)
    // with 1 − β_k = (1 − β0)(1 − p)^k — corrected Proposition 2.
    let data = datasets::musa_cc96().truncated(20).unwrap();
    let p = 0.04;
    let alpha0 = 12.0;
    let beta0 = 0.35;
    let sampler = pinned_sampler(
        PriorSpec::NegBinomial { alpha_max: 100.0 },
        &data,
        FixedParams {
            zeta: Some(vec![p]),
            alpha0: Some(alpha0),
            beta0: Some(beta0),
            ..FixedParams::default()
        },
    );
    let config = McmcConfig {
        chains: 2,
        burn_in: 50,
        samples: 3_000,
        thin: 1,
        seed: 20_241,
    };
    let draws = pooled_draws(&sampler, &config, "residual");
    let m = draws.len() as f64;

    let probs = vec![p; data.len()];
    let analytic = nb_posterior(alpha0, beta0, &probs, &data);

    let se_mean = analytic.sd() / m.sqrt();
    assert!(
        (mean(&draws) - analytic.mean()).abs() < 5.0 * se_mean,
        "mean {} vs analytic {} (se {se_mean})",
        mean(&draws),
        analytic.mean()
    );
    // The NB fourth moment is unwieldy; the sample variance of ~6k
    // iid draws concentrates within a few percent, so a 10 % band is
    // already a ≳4σ test.
    let rel = (variance(&draws) - analytic.variance()).abs() / analytic.variance();
    assert!(
        rel < 0.10,
        "variance {} vs analytic {} (rel {rel})",
        variance(&draws),
        analytic.variance()
    );
}

// ---------------------------------------------------------------------------
// Geweke joint-distribution test
// ---------------------------------------------------------------------------

/// Days of simulated testing per Geweke iteration.
const HORIZON: usize = 10;
/// Upper bound of the uniform λ0 hyper-prior.
const LAMBDA_MAX: f64 = 30.0;
/// Marginal-conditional (iid prior) draws.
const M_MARGINAL: usize = 40_000;
/// Successive-conditional sweeps kept after warm-up.
const M_SUCCESSIVE: usize = 4_000;
/// Successive-conditional warm-up sweeps.
const WARM_UP: usize = 200;
/// Batches for the batch-means standard error.
const BATCHES: usize = 40;

/// One parameter point of the Constant-model Poisson hierarchy.
#[derive(Clone, Copy)]
struct Theta {
    lambda0: f64,
    p: f64,
    n: u64,
}

/// The test statistics `g(θ)` compared between the two simulators.
fn statistics(theta: Theta) -> [f64; 5] {
    let n = theta.n as f64;
    [theta.lambda0, theta.p, n, n * n, theta.lambda0 * theta.p]
}

/// Draws `θ = (λ0, p, N)` from the prior the sampler assumes:
/// `λ0 ~ U(0, λ_max)`, `p ~ U(bounds)`, `N | λ0 ~ Poisson(λ0)`.
fn prior_draw(rng: &mut SplitMix64, p_bounds: (f64, f64)) -> Theta {
    let lambda0 = (rng.next_f64() * LAMBDA_MAX).max(1e-9);
    let p = p_bounds.0 + (p_bounds.1 - p_bounds.0) * rng.next_f64();
    let n = srm::rand::Poisson::new(lambda0)
        .unwrap()
        .quantile(rng.next_f64().clamp(1e-12, 1.0 - 1e-12));
    Theta { lambda0, p, n }
}

/// Simulates `x | θ` through the exact binomial-thinning data model.
fn simulate_data(rng: &mut SplitMix64, theta: Theta) -> BugCountData {
    DetectionSimulator::new(theta.n, vec![theta.p; HORIZON])
        .run_with(rng)
        .data
}

/// Batch-means standard error of a (possibly autocorrelated) series.
fn batch_means_se(series: &[f64]) -> f64 {
    let batch_len = series.len() / BATCHES;
    let means: Vec<f64> = (0..BATCHES)
        .map(|b| mean(&series[b * batch_len..(b + 1) * batch_len]))
        .collect();
    (variance(&means) / BATCHES as f64).sqrt()
}

#[test]
fn geweke_joint_distribution_test() {
    let prior = PriorSpec::Poisson {
        lambda_max: LAMBDA_MAX,
    };
    // The ζ support is a property of the model, not the data; read it
    // off a throwaway sampler.
    let p_bounds = {
        let data = BugCountData::new(vec![1; HORIZON]).unwrap();
        GibbsSampler::new(
            prior,
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        )
        .zeta_bounds()[0]
    };

    // --- Marginal-conditional: iid draws from the prior ----------------
    let mut rng = SplitMix64::seed_from(0x6E3E_4E01);
    let mut marginal: Vec<Vec<f64>> = (0..5).map(|_| Vec::with_capacity(M_MARGINAL)).collect();
    for _ in 0..M_MARGINAL {
        let g = statistics(prior_draw(&mut rng, p_bounds));
        for (col, &v) in marginal.iter_mut().zip(&g) {
            col.push(v);
        }
    }

    // --- Successive-conditional: sweep ∘ simulate ----------------------
    let mut rng = SplitMix64::seed_from(0x6E3E_4E02);
    let mut theta = prior_draw(&mut rng, p_bounds);
    let mut data = simulate_data(&mut rng, theta);
    let mut successive: Vec<Vec<f64>> = (0..5).map(|_| Vec::with_capacity(M_SUCCESSIVE)).collect();
    for sweep in 0..WARM_UP + M_SUCCESSIVE {
        let sampler = GibbsSampler::new(
            prior,
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        let mut state = sampler.init_state().unwrap();
        state.set_zeta(&[theta.p]);
        state.set_lambda0(theta.lambda0);
        state.set_n(theta.n);
        sampler.sweep_state(&mut state, &mut rng).unwrap();
        theta = Theta {
            lambda0: state.lambda0(),
            p: state.zeta()[0],
            n: state.n(),
        };
        data = simulate_data(&mut rng, theta);
        if sweep >= WARM_UP {
            let g = statistics(theta);
            for (col, &v) in successive.iter_mut().zip(&g) {
                col.push(v);
            }
        }
    }

    // Guard against a vacuous pass: a stuck or degenerate chain would
    // collapse N far away from its prior mean λ_max/2.
    let n_mean = mean(&successive[2]);
    assert!(
        (LAMBDA_MAX * 0.3..LAMBDA_MAX * 0.7).contains(&n_mean),
        "successive chain looks degenerate: E[N] = {n_mean}"
    );

    // --- Z-scores ------------------------------------------------------
    let names = ["lambda0", "p", "N", "N^2", "lambda0*p"];
    for ((name, mc), sc) in names.iter().zip(&marginal).zip(&successive) {
        let se_mc = (variance(mc) / mc.len() as f64).sqrt();
        let se_sc = batch_means_se(sc);
        let z = (mean(mc) - mean(sc)) / se_mc.hypot(se_sc);
        assert!(
            z.abs() < 4.5,
            "{name}: marginal {} vs successive {} (z = {z})",
            mean(mc),
            mean(sc)
        );
    }
}
